//! Deterministic fault injection + crash recovery, end to end.
//!
//! Opens an instance whose storage stack crashes after the Nth I/O
//! operation, runs transactions until the crash bites, then reopens the
//! data directory fault-free and shows which transactions survived.
//! The same `(seed, crash point)` pair replays the identical failure
//! schedule — run it twice and compare.
//!
//! ```sh
//! cargo run --release --example fault_injection            # seed 7, crash after 5 I/Os
//! cargo run --release --example fault_injection -- 7 5     # explicit seed + crash point
//! ```

use asterix_core::{Instance, InstanceConfig};
use asterix_storage::faults::FaultInjector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(7);
    let crash_after: u64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(5);

    let dir = std::env::temp_dir().join(format!("asterix-fault-demo-{seed}-{crash_after}"));
    let _ = std::fs::remove_dir_all(&dir);

    let injector = FaultInjector::crash_after(seed, crash_after);
    let db = Instance::open(InstanceConfig {
        data_dir: Some(dir.clone()),
        nodes: 1,
        faults: Some(injector.clone()),
        ..Default::default()
    })?;
    db.execute_sqlpp(
        "CREATE TYPE KVType AS { k: int, v: string };
         CREATE DATASET kv(KVType) PRIMARY KEY k;",
    )?;

    println!("injecting: crash after I/O op {crash_after} (seed {seed})");
    for t in 1..=6i64 {
        let mut txn = db.begin();
        let mut ok = true;
        for i in 0..3i64 {
            let rec = asterix_adm::parse::parse_value(&format!(
                "{{\"k\": {}, \"v\": \"txn{t}\"}}",
                t * 10 + i
            ))?;
            if txn.write("kv", &rec, true).is_err() {
                ok = false;
                break;
            }
        }
        if !ok {
            println!("txn {t}: crashed mid-body (rolled back)");
            continue;
        }
        match txn.commit() {
            Ok(()) => println!("txn {t}: committed"),
            Err(e) => println!("txn {t}: commit failed mid-force ({e})"),
        }
    }
    println!("\nfault schedule (replays byte-for-byte for this seed):");
    for ev in injector.events() {
        println!("  {ev:?}");
    }
    drop(db); // crash: memory components are lost, the WAL survives

    let db = Instance::open(InstanceConfig {
        data_dir: Some(dir.clone()),
        nodes: 1,
        ..Default::default()
    })?;
    let mut rows = db.query("SELECT VALUE d.k FROM kv d")?;
    rows.sort_by_key(|v| v.as_i64());
    println!("\nrecovered keys: {rows:?}");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
