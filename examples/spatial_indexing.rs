//! The §V-B spatial study in miniature: who's right about spatial indexing?
//!
//! ```sh
//! cargo run --release --example spatial_indexing
//! ```
//!
//! Three "respected senior database researchers" each swore by a different
//! structure (paper §V-B): LSM R-trees, linearized (Hilbert/Z-order) LSM
//! B-trees, and grids. This example indexes the same points all four ways,
//! runs the same range queries, and prints index-only vs end-to-end times —
//! reproducing the study's punchline: end-to-end, the differences wash out,
//! so "the 'right' LSM-based spatial index to provide was simply the R-tree".

use asterix_rs::adm::binary::{compare_keys, decode, decode_key, encode, encode_key};
use asterix_rs::adm::{Point, Rectangle, Value};
use asterix_rs::core::datagen::DataGen;
use asterix_rs::storage::cache::BufferCache;
use asterix_rs::storage::io::FileManager;
use asterix_rs::storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_rs::storage::lsm_rtree::{LsmRTree, LsmRTreeConfig};
use asterix_rs::storage::spatial_keys::{curve_ranges, hilbert_d, z_curve, GridScheme, World};
use asterix_rs::storage::stats::IoStats;
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

const N: usize = 40_000;
const EXTENT: f64 = 10_000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("spatial-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let fm = FileManager::new(&dir, IoStats::new())?;
    let cache = BufferCache::new(fm, 512);
    let world = World::new(Rectangle::new(Point::new(0.0, 0.0), Point::new(EXTENT, EXTENT)));
    let grid_scheme = GridScheme::new(world, 64, 64);
    let cfg = |name: &str| LsmConfig {
        name: name.into(),
        mem_budget: 1 << 20,
        merge_policy: MergePolicy::Constant { max_components: 4 },
        bloom: true,
        compress_values: false,
    };
    let mut primary = LsmTree::new(Arc::clone(&cache), cfg("primary"));
    let mut rtree = LsmRTree::new(Arc::clone(&cache), LsmRTreeConfig::new("rtree"));
    let mut hilbert = LsmTree::new(Arc::clone(&cache), cfg("hilbert"));
    let mut zorder = LsmTree::new(Arc::clone(&cache), cfg("zorder"));
    let mut grid = LsmTree::new(Arc::clone(&cache), cfg("grid"));

    println!("indexing {N} clustered points four ways...");
    let mut gen = DataGen::new(7);
    for i in 0..N {
        let p = gen.clustered_point(EXTENT, 6);
        let pk = encode_key(&[Value::Int(i as i64)]);
        let record = Value::object(vec![
            ("id".into(), Value::Int(i as i64)),
            ("loc".into(), Value::Point(p)),
            ("pad".into(), Value::from("x".repeat(120))),
        ]);
        primary.upsert(pk.clone(), encode(&record))?;
        rtree.insert(p.to_mbr(), pk.clone())?;
        let pv = encode(&Value::Point(p));
        hilbert.upsert(
            encode_key(&[Value::Int(world.hilbert_key(&p) as i64), Value::Int(i as i64)]),
            pv.clone(),
        )?;
        zorder.upsert(
            encode_key(&[Value::Int(world.z_key(&p) as i64), Value::Int(i as i64)]),
            pv.clone(),
        )?;
        grid.upsert(
            encode_key(&[Value::Int(grid_scheme.cell_of(&p) as i64), Value::Int(i as i64)]),
            pv,
        )?;
    }
    for t in [&mut primary, &mut hilbert, &mut zorder, &mut grid] {
        t.flush()?;
    }
    rtree.flush()?;

    // a 1%-selectivity query box
    let side = EXTENT * 0.1;
    let q = Rectangle::new(Point::new(3_000.0, 3_000.0), Point::new(3_000.0 + side, 3_000.0 + side));
    println!("query box: {q} (~1% of the space)\n");
    println!("{:<16} {:>8} {:>10} {:>10} {:>10}", "method", "results", "candidates", "index_ms", "e2e_ms");

    let linearized = |tree: &LsmTree, curve: fn(u32, u32, u32) -> u64| {
        let mut pks = Vec::new();
        let mut candidates = 0usize;
        for (lo, hi) in curve_ranges(&world, &q, 7, curve) {
            let lo_k = encode_key(&[Value::Int(lo as i64)]);
            let hi_k = encode_key(&[Value::Int(hi as i64)]);
            for (k, v) in tree
                .range(Bound::Included(lo_k.as_slice()), Bound::Excluded(hi_k.as_slice()))
                .unwrap()
            {
                candidates += 1;
                if let Ok(Value::Point(p)) = decode(&v) {
                    if q.contains_point(&p) {
                        let parts = decode_key(&k).unwrap();
                        pks.push(encode_key(&parts[1..]));
                    }
                }
            }
        }
        (pks, candidates)
    };
    let grid_probe = || {
        let mut pks = Vec::new();
        let mut candidates = 0usize;
        for cell in grid_scheme.cells_for(&q) {
            let lo = encode_key(&[Value::Int(cell as i64)]);
            let hi = encode_key(&[Value::Int(cell as i64 + 1)]);
            for (k, v) in grid
                .range(Bound::Included(lo.as_slice()), Bound::Excluded(hi.as_slice()))
                .unwrap()
            {
                candidates += 1;
                if let Ok(Value::Point(p)) = decode(&v) {
                    if q.contains_point(&p) {
                        let parts = decode_key(&k).unwrap();
                        pks.push(encode_key(&parts[1..]));
                    }
                }
            }
        }
        (pks, candidates)
    };

    type Probe<'a> = Box<dyn Fn() -> (Vec<Vec<u8>>, usize) + 'a>;
    let methods: Vec<(&str, Probe)> = vec![
        ("lsm-rtree", Box::new(|| {
            let hits = rtree.search(&q).unwrap();
            let n = hits.len();
            (hits.into_iter().map(|e| e.key).collect(), n)
        })),
        ("hilbert-btree", Box::new(|| linearized(&hilbert, hilbert_d))),
        ("zorder-btree", Box::new(|| linearized(&zorder, z_curve))),
        ("grid", Box::new(grid_probe)),
    ];
    for (name, probe) in methods {
        let t0 = Instant::now();
        let (mut pks, candidates) = probe();
        let t_index = t0.elapsed();
        // end-to-end: sorted-PK fetch of the actual records (§V-B's "usual trick")
        pks.sort_by(|a, b| compare_keys(a, b));
        let mut fetched = 0usize;
        for pk in &pks {
            if primary.get(pk)?.is_some() {
                fetched += 1;
            }
        }
        let t_total = t0.elapsed();
        println!(
            "{:<16} {:>8} {:>10} {:>10.2} {:>10.2}",
            name,
            fetched,
            candidates,
            t_index.as_secs_f64() * 1e3,
            t_total.as_secs_f64() * 1e3
        );
    }
    println!(
        "\nthe paper's conclusion: index-time differences are real, but once the \
         \nrecords themselves are fetched the end-to-end spread lands around ±10% — \
         \nso ship the R-tree (it also handles non-point data) and move on."
    );
    let _ = std::fs::remove_dir_all(dir);
    Ok(())
}
