//! Quickstart: an embedded AsterixDB-style BDMS in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Creates a temporary instance, declares a type/dataset/index (SQL++ DDL),
//! inserts data, and queries it in both SQL++ and AQL — the two declarative
//! languages sharing one compiler (paper §IV-A).

use asterix_rs::core::instance::{Instance, Language};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An embedded instance: 2 simulated storage nodes, 2 partitions/dataset.
    let db = Instance::temp()?;

    // --- DDL: open type with optional field, dataset, secondary index ---
    db.execute_sqlpp(
        "CREATE TYPE BandType AS {
             id: int,
             name: string,
             formed: int,
             genre: string?
         };
         CREATE DATASET Bands(BandType) PRIMARY KEY id;
         CREATE INDEX byFormed ON Bands(formed);",
    )?;

    // --- DML: INSERT a batch (open fields welcome) ---
    db.execute_sqlpp(
        r#"INSERT INTO Bands ([
            {"id": 1, "name": "The Kinks",     "formed": 1963, "genre": "rock"},
            {"id": 2, "name": "Kraftwerk",     "formed": 1970, "genre": "electronic",
             "city": "Düsseldorf"},
            {"id": 3, "name": "Television",    "formed": 1973, "genre": "punk"},
            {"id": 4, "name": "Stereolab",     "formed": 1990},
            {"id": 5, "name": "Broadcast",     "formed": 1995, "genre": "electronic"}
        ])"#,
    )?;

    // --- SQL++ query (the index accelerates the range predicate) ---
    println!("bands formed in or after 1970, newest first (SQL++):");
    for row in db.query(
        "SELECT b.name AS name, b.formed AS formed
         FROM Bands b
         WHERE b.formed >= 1970
         ORDER BY b.formed DESC",
    )? {
        println!("  {row}");
    }

    // --- EXPLAIN shows the optimizer chose the secondary index ---
    let plan = db.explain(
        "SELECT VALUE b FROM Bands b WHERE b.formed >= 1970",
        Language::Sqlpp,
    )?;
    println!("\noptimized plan:\n{plan}");

    // --- the same question in AQL, the original query language ---
    println!("electronic bands (AQL):");
    for row in db.query_aql(
        r#"for $b in dataset Bands
           where $b.genre = "electronic"
           order by $b.name
           return $b.name"#,
    )? {
        println!("  {row}");
    }

    // --- aggregation with grouping ---
    println!("\nbands per genre (SQL++ GROUP BY):");
    for row in db.query(
        "SELECT g AS genre, COUNT(*) AS n
         FROM Bands b
         GROUP BY if_missing_or_null(b.genre, 'unknown') AS g
         ORDER BY g",
    )? {
        println!("  {row}");
    }

    // --- open fields round-trip ---
    let city = db.query("SELECT VALUE b.city FROM Bands b WHERE b.id = 2")?;
    println!("\nKraftwerk's undeclared open field city = {}", city[0]);
    Ok(())
}
