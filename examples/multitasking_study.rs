//! The §V-D user study: time-binning multichannel activity data.
//!
//! ```sh
//! cargo run --example multitasking_study
//! ```
//!
//! Paper §V-D: Gloria Mark's group used AsterixDB for a study on stress and
//! multitasking in college life. "They needed to time-bin their data into
//! various sized bins and to deal with the possibility that a given user
//! activity might span bins (so they needed to allocate portions of such an
//! activity to the relevant bins). ... We also had support for CSV file
//! import — for data they wanted export support, in addition, to round-trip
//! their data." This example runs that workflow: import activities, bin them
//! with `overlap_bins`, allocate spanning activities proportionally, and
//! export the result as CSV.

use asterix_rs::adm::temporal::{format_datetime, parse_datetime, Duration as AdmDuration};
use asterix_rs::adm::Value;
use asterix_rs::core::instance::Instance;
use asterix_rs::core::interchange::{export_csv, import_csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::temp()?;
    db.execute_sqlpp(
        "CREATE TYPE ActivityType AS {
             id: int, subject: int, app: string, start: datetime, stop: datetime
         };
         CREATE DATASET Activities(ActivityType) PRIMARY KEY id;",
    )?;

    // the study's data arrives as CSV from logging tools (§V-D: CSV import)
    let csv = "\
id,subject,app,start,stop
1,1,editor,2014-03-03T09:10:00,2014-03-03T09:40:00
2,1,email,2014-03-03T09:40:00,2014-03-03T09:47:00
3,1,browser,2014-03-03T09:47:00,2014-03-03T11:05:00
4,2,editor,2014-03-03T08:55:00,2014-03-03T10:20:00
5,2,social,2014-03-03T10:20:00,2014-03-03T10:26:00
6,2,editor,2014-03-03T10:26:00,2014-03-03T12:02:00
7,1,social,2014-03-03T11:05:00,2014-03-03T11:09:00
8,1,editor,2014-03-03T11:09:00,2014-03-03T12:30:00
";
    let n = import_csv(&db, "Activities", csv)?;
    println!("imported {n} logged activities from CSV");

    // hourly bins, with spanning activities split across them
    let anchor = parse_datetime("2014-03-03T00:00:00")?;
    let hour = AdmDuration::from_millis(3_600_000);
    let activities = db.query(
        "SELECT VALUE [a.subject, a.app, a.start, a.stop] FROM Activities a ORDER BY a.id",
    )?;
    // allocate each activity's overlap to every bin it touches (the exact
    // §V-D requirement, via the adm temporal library the instance also
    // exposes as the SQL++ functions interval_bin/overlap_bins)
    use std::collections::BTreeMap;
    let mut minutes: BTreeMap<(i64, i64, String), f64> = BTreeMap::new(); // (subject, bin, app)
    for a in &activities {
        let subject = a.index(0).as_i64().unwrap();
        let app = a.index(1).as_str().unwrap().to_string();
        let (Value::DateTime(s), Value::DateTime(e)) = (a.index(2), a.index(3)) else {
            continue;
        };
        for bin in asterix_rs::adm::temporal::overlap_bins(*s, *e, anchor, &hour)? {
            let overlap_min = bin.overlap_with(*s, *e) as f64 / 60_000.0;
            *minutes.entry((subject, bin.start, app.clone())).or_default() += overlap_min;
        }
    }
    println!("\nminutes per app per hourly bin (spanning activities apportioned):");
    println!("{:<8} {:<18} {:<9} {:>8}", "subject", "hour", "app", "minutes");
    for ((subject, bin_start, app), mins) in &minutes {
        println!(
            "{:<8} {:<18} {:<9} {:>8.1}",
            subject,
            &format_datetime(*bin_start)[..16],
            app,
            mins
        );
    }

    // task-switch counts per subject — the "multitasking" metric
    println!("\ncontext switches per subject:");
    for row in db.query(
        "SELECT a.subject AS subject, COUNT(*) - 1 AS switches
         FROM Activities a GROUP BY a.subject ORDER BY subject",
    )? {
        println!("  {row}");
    }

    // §V-D round-trip: export the binned result back out as CSV
    let rows: Vec<Value> = minutes
        .iter()
        .map(|((subject, bin, app), mins)| {
            Value::object(vec![
                ("subject".into(), Value::Int(*subject)),
                ("hour".into(), Value::DateTime(*bin)),
                ("app".into(), Value::from(app.as_str())),
                ("minutes".into(), Value::Double((*mins * 10.0).round() / 10.0)),
            ])
        })
        .collect();
    let out = export_csv(&rows);
    println!("\nexported CSV for the analysis tools (first 5 lines):");
    for line in out.lines().take(5) {
        println!("  {line}");
    }
    Ok(())
}
