//! The paper's Figure 3, line for line: the Gleambook social-media warehouse.
//!
//! ```sh
//! cargo run --example gleambook_analytics
//! ```
//!
//! Builds the 3(a) schema (types, datasets, B-tree/R-tree/keyword indexes),
//! mounts the 3(b) external access log, runs the 3(c) active-users query
//! over stored + external data, and executes the 3(d) UPSERT.

use asterix_rs::core::datagen::{epoch_2012, DataGen};
use asterix_rs::core::instance::Instance;

const USERS: i64 = 500;
const MESSAGES: i64 = 1_500;
const LOG_LINES: i64 = 3_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Instance::temp()?;

    // ----- Figure 3(a): types, datasets, and indexes -----
    db.execute_sqlpp(
        r#"
        CREATE TYPE EmploymentType AS {
            organizationName: string,
            startDate: date,
            endDate: date?
        };
        CREATE TYPE GleambookUserType AS {
            id: int,
            alias: string,
            name: string,
            userSince: datetime,
            friendIds: {{ int }},
            employment: [EmploymentType]
        };
        CREATE TYPE GleambookMessageType AS {
            messageId: int,
            authorId: int,
            inResponseTo: int?,
            senderLocation: point?,
            message: string
        };
        CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
        CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId;
        CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
        CREATE INDEX gbAuthorIdx ON GleambookMessages(authorId) TYPE BTREE;
        CREATE INDEX gbSenderLocIndex ON GleambookMessages(senderLocation) TYPE RTREE;
        CREATE INDEX gbMessageIdx ON GleambookMessages(message) TYPE KEYWORD;
        "#,
    )?;
    println!("Figure 3(a): schema created (2 datasets, 4 secondary indexes)");

    // ----- load synthetic Gleambook data -----
    let mut gen = DataGen::new(42);
    let mut txn = db.begin();
    for i in 1..=USERS {
        txn.write("GleambookUsers", &gen.user(i), true)?;
    }
    for i in 1..=MESSAGES {
        txn.write("GleambookMessages", &gen.message(i, USERS), true)?;
    }
    txn.commit()?;
    println!("loaded {USERS} users, {MESSAGES} messages");

    // ----- Figure 3(b): external dataset over a web access log -----
    let aliases: Vec<String> = db
        .query("SELECT VALUE u.alias FROM GleambookUsers u")?
        .into_iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    let epoch = epoch_2012();
    let lines: Vec<String> = (0..LOG_LINES)
        .map(|i| gen.access_log_line(&aliases[i as usize % aliases.len()], epoch + i * 45_000))
        .collect();
    let log_path = db.data_dir().join("accesses.txt");
    std::fs::write(&log_path, lines.join("\n"))?;
    db.execute_sqlpp(&format!(
        r#"
        CREATE TYPE AccessLogType AS CLOSED {{
            ip: string, time: string, user: string, verb: string,
            'path': string, stat: int32, size: int32
        }};
        CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
          (("path"="{}"), ("format"="delimited-text"), ("delimiter"="|"));
        "#,
        log_path.display()
    ))?;
    println!("Figure 3(b): {LOG_LINES}-line access log mounted in situ");

    // ----- Figure 3(c): recently active users grouped by friend count -----
    let end = epoch + LOG_LINES * 45_000;
    let start = end - 30 * 24 * 3_600_000; // "P30D"
    let rows = db.query(&format!(
        r#"
        WITH startTime AS datetime("{}"),
             endTime AS datetime("{}")
        SELECT nf AS numFriends, COUNT(user) AS activeUsers
        FROM GleambookUsers user
        LET nf = COLL_COUNT(user.friendIds)
        WHERE SOME logrec IN AccessLog SATISFIES
                  user.alias = logrec.user
              AND datetime(logrec.time) >= startTime
              AND datetime(logrec.time) <= endTime
        GROUP BY nf
        ORDER BY numFriends
        "#,
        asterix_rs::adm::temporal::format_datetime(start),
        asterix_rs::adm::temporal::format_datetime(end),
    ))?;
    println!("\nFigure 3(c): active users in the last 30 days, by friend count:");
    for r in &rows {
        println!(
            "  {:>2} friends: {:>3} active users",
            r.field("numFriends"),
            r.field("activeUsers")
        );
    }

    // ----- Figure 3(d): the UPSERT -----
    db.execute_sqlpp(
        r#"
        UPSERT INTO GleambookUsers (
            {"id":667, "alias":"dfrump", "name":"DonaldFrump",
             "nickname":"Frumpkin",
             "userSince":datetime("2017-01-01T00:00:00"),
             "friendIds":{{}},
             "employment":[{"organizationName":"USA",
                            "startDate":date("2017-01-20")}],
             "gender":"M"}
        );
        "#,
    )?;
    let frump = db.query("SELECT VALUE u FROM GleambookUsers u WHERE u.id = 667")?;
    println!("\nFigure 3(d): upserted user 667:\n  {}", frump[0]);

    // ----- bonus: the secondary indexes earn their keep -----
    println!("\nspatial query (LSM R-tree access path):");
    let near = db.query(
        r#"SELECT VALUE m.messageId FROM GleambookMessages m
           WHERE spatial_intersect(m.senderLocation,
                                   create_rectangle(create_point(-120.0, 30.0),
                                                    create_point(-110.0, 40.0)))"#,
    )?;
    println!("  {} messages sent from the box (-120,30)-(-110,40)", near.len());
    println!("keyword query (LSM inverted index access path):");
    let hits = db.query(
        "SELECT VALUE m.messageId FROM GleambookMessages m
         WHERE contains(m.message, 'verizon')",
    )?;
    println!("  {} messages mention 'verizon'", hits.len());
    Ok(())
}
