//! Figure 7: "AsterixDB puts the A in NoSQL HTAP" — Couchbase-Analytics-style
//! shadowing of an operational store into an analytics backend.
//!
//! ```sh
//! cargo run --example htap_shadowing
//! ```
//!
//! An operational KV document store ingests order documents while a DCP-like
//! mutation stream shadows them into an analytics dataset in real time.
//! Analytics queries (SQL++) run against the up-to-date shadow copy only —
//! the paper's performance-isolation story.

use asterix_rs::core::dcp::{FrontEndStore, ShadowLink};
use asterix_rs::core::instance::Instance;
use std::time::Duration;

fn order_doc(id: i64, customer: i64, total_cents: i64, status: &str) -> asterix_rs::adm::Value {
    asterix_rs::adm::parse::parse_value(&format!(
        r#"{{"id": {id}, "customer": {customer}, "totalCents": {total_cents},
            "status": "{status}",
            "placedAt": datetime("2018-11-0{}T12:00:00")}}"#,
        id % 9 + 1
    ))
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // the analytics side: an AsterixDB instance with a shadow dataset
    let analytics = Instance::temp()?;
    analytics.execute_sqlpp(
        "CREATE TYPE OrderType AS {
             id: int, customer: int, totalCents: int, status: string, placedAt: datetime
         };
         CREATE DATASET Orders(OrderType) PRIMARY KEY id;",
    )?;
    // the operational side: the front-end Data Service
    let store = FrontEndStore::new();
    // the DCP link (Figure 7's arrow from Data Service to Analytics)
    let link = ShadowLink::new(store.clone(), analytics.clone(), "Orders");
    let pump = link.start(Duration::from_millis(1));

    println!("ingesting 5000 order mutations into the front-end store...");
    for i in 0..5_000i64 {
        let id = i % 1_500; // plenty of overwrites, like a real order flow
        let status = match i % 4 {
            0 => "placed",
            1 => "paid",
            2 => "shipped",
            _ => "delivered",
        };
        store.set(format!("{id}"), order_doc(id, id % 200, (i % 500 + 1) * 100, status));
        if i % 1_000 == 999 {
            println!("  ingested {} mutations, shadow lag = {}", i + 1, link.lag());
        }
    }
    // a delete, too (cancelled order)
    store.delete("42");
    link.drain()?;
    pump.join().unwrap();
    println!(
        "drained: front-end has {} live docs, shadow has {} records (lag 0)\n",
        store.len(),
        analytics.count("Orders")?
    );
    assert_eq!(store.len(), analytics.count("Orders")?);

    // slice and dice "in its natural (application schema) form using SQL++"
    println!("analytics on the shadow (front-end untouched):");
    for row in analytics.query(
        "SELECT o.status AS status, COUNT(*) AS orders, SUM(o.totalCents) / 100.0 AS revenue
         FROM Orders o
         GROUP BY o.status
         ORDER BY status",
    )? {
        println!("  {row}");
    }
    let top = analytics.query(
        "SELECT o.customer AS customer, COUNT(*) AS n
         FROM Orders o GROUP BY o.customer ORDER BY n DESC, customer LIMIT 3",
    )?;
    println!("\ntop 3 customers by order count:");
    for row in top {
        println!("  {row}");
    }
    // the cancelled order is gone from the shadow as well
    let gone = analytics.query("SELECT VALUE o FROM Orders o WHERE o.id = 42")?;
    assert!(gone.is_empty());
    println!("\norder 42 was deleted on the front end — and is gone from the shadow too.");
    println!("(front-end reads/writes never touched the analytics engine, and vice versa)");
    Ok(())
}
