//! CI negative-test fixture: an unannotated `Ordering::Relaxed` CAS.
//! The lint job runs xlint over this directory and REQUIRES a nonzero
//! exit — if this file ever passes, the L7 atomic-ordering pass is broken.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn claim_slot(state: &AtomicU64) -> bool {
    state.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}
