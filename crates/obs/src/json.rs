//! A minimal JSON document builder.
//!
//! The workspace has no serde; this is just enough to emit metric
//! snapshots and profile trees. Numbers keep their integer width (no
//! float round-trip for u64 counters).

use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            ("b".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c".into(), Json::str("x\"y\n")),
        ]);
        assert_eq!(doc.render(), r#"{"a":1,"b":[true,null],"c":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_rendering_is_valid_and_indented() {
        let doc = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::U64(7)]))]);
        let s = doc.render_pretty();
        assert!(s.contains("\n  \"k\": [\n    7\n  ]\n"), "{s}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(1.5).render(), "1.5");
    }
}
