//! Per-query profile trees.
//!
//! The dataflow runtime records one [`OpMetrics`] per operator-partition;
//! after job completion they are assembled into an [`OperatorProfile`]
//! tree mirroring the job's operator DAG (a tree, since every operator
//! feeds exactly one consumer). [`JobProfile`] is the per-job root with
//! text (`EXPLAIN PROFILE`-style) and JSON renderings.

use crate::json::Json;
use std::fmt::Write as _;

/// Version stamp for the JSON profile schema emitted by [`JobProfile::to_json`].
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Everything measured for one operator-partition. Plain fields: each
/// worker owns its struct exclusively while running; merging happens once
/// at job end.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpMetrics {
    pub tuples_in: u64,
    pub tuples_out: u64,
    pub frames_in: u64,
    pub frames_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Time blocked waiting on inbound exchange queues.
    pub queue_wait_ns: u64,
    /// Worker wall-clock minus queue wait.
    pub compute_ns: u64,
    /// Spill runs written by this partition (sort runs, grace partitions).
    pub spill_runs: u64,
    pub spilled_bytes: u64,
    /// Grace/hybrid recursion fanout: partitions created when an operator
    /// fell back to spilling.
    pub grace_fanout: u64,
    /// Frames routed to each destination partition on the outbound
    /// exchange edge (empty for the sink).
    pub frames_routed: Vec<u64>,
}

impl OpMetrics {
    /// Element-wise accumulation (used to fold partitions into totals).
    pub fn merge(&mut self, other: &OpMetrics) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.queue_wait_ns += other.queue_wait_ns;
        self.compute_ns += other.compute_ns;
        self.spill_runs += other.spill_runs;
        self.spilled_bytes += other.spilled_bytes;
        self.grace_fanout += other.grace_fanout;
        if self.frames_routed.len() < other.frames_routed.len() {
            self.frames_routed.resize(other.frames_routed.len(), 0);
        }
        for (dst, n) in other.frames_routed.iter().enumerate() {
            if let Some(slot) = self.frames_routed.get_mut(dst) {
                *slot += n;
            }
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tuples_in".into(), Json::U64(self.tuples_in)),
            ("tuples_out".into(), Json::U64(self.tuples_out)),
            ("frames_in".into(), Json::U64(self.frames_in)),
            ("frames_out".into(), Json::U64(self.frames_out)),
            ("bytes_in".into(), Json::U64(self.bytes_in)),
            ("bytes_out".into(), Json::U64(self.bytes_out)),
            ("queue_wait_ns".into(), Json::U64(self.queue_wait_ns)),
            ("compute_ns".into(), Json::U64(self.compute_ns)),
            ("spill_runs".into(), Json::U64(self.spill_runs)),
            ("spilled_bytes".into(), Json::U64(self.spilled_bytes)),
            ("grace_fanout".into(), Json::U64(self.grace_fanout)),
            (
                "frames_routed".into(),
                Json::Arr(self.frames_routed.iter().map(|n| Json::U64(*n)).collect()),
            ),
        ])
    }
}

/// One operator node in the profile tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Operator kind (`"HashJoin"`, `"GroupBy"`, …).
    pub name: String,
    /// The job-spec label (`"scan:GleambookUsers"`, `"group-global"`, …).
    pub label: String,
    /// Strategy of the outbound connector, if any (`"hash"`, `"one-to-one"`).
    pub out_strategy: Option<String>,
    /// Per-partition metrics, indexed by partition number.
    pub partitions: Vec<OpMetrics>,
    /// Producing operators, in input-port order.
    pub inputs: Vec<OperatorProfile>,
}

impl OperatorProfile {
    /// All partitions folded together.
    pub fn totals(&self) -> OpMetrics {
        let mut t = OpMetrics::default();
        for p in &self.partitions {
            t.merge(p);
        }
        t
    }

    /// Output skew: max over partitions of `tuples_out` divided by the
    /// mean. 1.0 means perfectly balanced; 0 tuples everywhere also
    /// reports 1.0 (no skew to speak of).
    pub fn skew(&self) -> f64 {
        let n = self.partitions.len() as f64;
        if n == 0.0 {
            return 1.0;
        }
        let total: u64 = self.partitions.iter().map(|p| p.tuples_out).sum();
        if total == 0 {
            return 1.0;
        }
        let max = self.partitions.iter().map(|p| p.tuples_out).max().unwrap_or(0);
        max as f64 / (total as f64 / n)
    }

    /// Depth-first search for the first node whose label matches.
    pub fn find(&self, label: &str) -> Option<&OperatorProfile> {
        if self.label == label {
            return Some(self);
        }
        self.inputs.iter().find_map(|i| i.find(label))
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::str(&self.name)),
            ("label".into(), Json::str(&self.label)),
            ("partitions".into(), Json::U64(self.partitions.len() as u64)),
            ("skew".into(), Json::F64(self.skew())),
            ("totals".into(), self.totals().to_json()),
            (
                "per_partition".into(),
                Json::Arr(self.partitions.iter().map(|p| p.to_json()).collect()),
            ),
        ];
        if let Some(s) = &self.out_strategy {
            fields.push(("out_strategy".into(), Json::str(s)));
        }
        fields.push((
            "inputs".into(),
            Json::Arr(self.inputs.iter().map(|i| i.to_json()).collect()),
        ));
        Json::Obj(fields)
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let t = self.totals();
        let branch = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "└─ " } else { "├─ " })
        };
        let _ = write!(out, "{branch}{} \"{}\" ×{}", self.name, self.label, self.partitions.len());
        if let Some(s) = &self.out_strategy {
            let _ = write!(out, " ⇒{s}");
        }
        let _ = write!(
            out,
            " | in {}t/{}f | out {}t/{}f | wait {} compute {}",
            t.tuples_in,
            t.frames_in,
            t.tuples_out,
            t.frames_out,
            fmt_ns(t.queue_wait_ns),
            fmt_ns(t.compute_ns),
        );
        if self.partitions.len() > 1 {
            let _ = write!(out, " | skew {:.2}", self.skew());
        }
        if t.spill_runs > 0 {
            let _ = write!(
                out,
                " | spills {} ({}B, fanout {})",
                t.spill_runs, t.spilled_bytes, t.grace_fanout
            );
        }
        out.push('\n');
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        let n = self.inputs.len();
        for (i, input) in self.inputs.iter().enumerate() {
            input.render_into(out, &child_prefix, i + 1 == n, false);
        }
    }
}

/// Root of a per-job profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobProfile {
    /// Wall-clock for the whole job, by the runtime's injected clock.
    pub elapsed_ns: u64,
    pub root: OperatorProfile,
}

impl JobProfile {
    /// `EXPLAIN PROFILE`-style text tree.
    pub fn render_text(&self) -> String {
        let mut out = format!("job profile · elapsed {}\n", fmt_ns(self.elapsed_ns));
        self.root.render_into(&mut out, "", true, true);
        out
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::U64(PROFILE_SCHEMA_VERSION)),
            ("elapsed_ns".into(), Json::U64(self.elapsed_ns)),
            ("operators".into(), self.root.to_json()),
        ])
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(tuples_in: u64, tuples_out: u64) -> OpMetrics {
        OpMetrics { tuples_in, tuples_out, ..OpMetrics::default() }
    }

    fn sample() -> JobProfile {
        JobProfile {
            elapsed_ns: 2_500_000,
            root: OperatorProfile {
                name: "ResultSink".into(),
                label: "sink".into(),
                out_strategy: None,
                partitions: vec![part(5, 5)],
                inputs: vec![OperatorProfile {
                    name: "GroupBy".into(),
                    label: "group-global".into(),
                    out_strategy: Some("gather".into()),
                    partitions: vec![part(30, 4), part(10, 1)],
                    inputs: vec![],
                }],
            },
        }
    }

    #[test]
    fn totals_and_skew() {
        let p = sample();
        let g = p.root.find("group-global").cloned().unwrap_or_default();
        let t = g.totals();
        assert_eq!(t.tuples_in, 40);
        assert_eq!(t.tuples_out, 5);
        // max 4 over mean 2.5 = 1.6
        assert!((g.skew() - 1.6).abs() < 1e-9);
        assert!((p.root.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_frames_routed_elementwise() {
        let mut a = OpMetrics { frames_routed: vec![1, 2], ..OpMetrics::default() };
        let b = OpMetrics { frames_routed: vec![10, 20, 30], ..OpMetrics::default() };
        a.merge(&b);
        assert_eq!(a.frames_routed, vec![11, 22, 30]);
    }

    #[test]
    fn text_render_draws_the_tree() {
        let s = sample().render_text();
        assert!(s.contains("ResultSink \"sink\" ×1"), "{s}");
        assert!(s.contains("└─ GroupBy \"group-global\" ×2 ⇒gather"), "{s}");
        assert!(s.contains("skew 1.60"), "{s}");
    }

    #[test]
    fn json_render_carries_schema_version_and_tree() {
        let j = sample().to_json().render();
        assert!(j.contains(r#""schema_version":1"#), "{j}");
        assert!(j.contains(r#""label":"group-global""#), "{j}");
        assert!(j.contains(r#""tuples_in":40"#), "{j}");
    }

    #[test]
    fn empty_profile_reports_unit_skew() {
        let p = OperatorProfile::default();
        assert!((p.skew() - 1.0).abs() < 1e-9);
        assert_eq!(p.totals(), OpMetrics::default());
    }
}
