//! Injectable monotonic time.
//!
//! Everything that measures elapsed time takes an `Arc<dyn Clock>` instead
//! of calling `Instant::now()` directly, so the deterministic test harness
//! can substitute a [`ManualClock`] and get bit-identical profiles across
//! runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations must be cheap enough to
/// call a few times per frame (not per tuple) on the query hot path.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin. Must never go
    /// backwards.
    fn now_ns(&self) -> u64;
}

/// Wall-clock implementation backed by [`Instant`].
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock { origin: Instant::now() }
    }

    /// Shared handle, ready to hand to a `RuntimeCtx`.
    pub fn shared() -> Arc<MonotonicClock> {
        Arc::new(MonotonicClock::new())
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds overflows after ~584 years of process
        // uptime; the low-order truncation of the u128 is deliberate.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic clock for tests: every read advances time by a fixed
/// `step`, so timings are reproducible and strictly monotonic regardless
/// of scheduling. `advance` models explicit passage of time.
pub struct ManualClock {
    now: AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock frozen at zero (reads do not advance it).
    pub fn new() -> ManualClock {
        ManualClock::with_step(0)
    }

    /// A clock that advances by `step_ns` on every read.
    pub fn with_step(step_ns: u64) -> ManualClock {
        ManualClock { now: AtomicU64::new(0), step: step_ns }
    }

    /// Shared handle with a per-read step.
    pub fn shared(step_ns: u64) -> Arc<ManualClock> {
        Arc::new(ManualClock::with_step(step_ns))
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        if self.step == 0 {
            self.now.load(Ordering::Relaxed)
        } else {
            // fetch_add returns the pre-increment value; report the
            // post-increment one so consecutive reads are strictly
            // increasing.
            self.now.fetch_add(self.step, Ordering::Relaxed) + self.step // xlint: ordering(manual test clock: this atomic is the entire shared state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::with_step(10);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
        c.advance(100);
        assert_eq!(c.now_ns(), 130);
    }

    #[test]
    fn frozen_manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance(7);
        assert_eq!(c.now_ns(), 7);
    }
}
