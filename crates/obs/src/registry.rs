//! Named metrics with a snapshot/delta API.
//!
//! A [`MetricsRegistry`] hands out cheap cloneable handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) keyed by a dotted name
//! (`"storage.io.physical_reads"`). Handles update relaxed atomics — the
//! registry lock is touched only at registration and snapshot time, never
//! on the hot path. [`MetricsSnapshot::delta`] diffs two snapshots with
//! saturating arithmetic so a reset between snapshots can never wrap a
//! phase delta around to ~2^64.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Monotonically increasing event count. `reset` is for facade
/// compatibility (phase boundaries in tests); deltas across a reset
/// saturate to zero rather than wrapping.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A value that can move both ways (resident pages, live partitions).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one implicit overflow bucket catches the rest. Recording is
/// a linear scan over a handful of bounds plus two relaxed adds.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

struct HistCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (overflow)
    count: AtomicU64,
    sum: AtomicU64,
}

/// Default bucket edges: powers of four from 1 up — a decent spread for
/// both byte sizes and nanosecond latencies.
pub const DEFAULT_BOUNDS: [u64; 12] =
    [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304];

impl Histogram {
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..sorted.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistCore {
                bounds: sorted,
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.core;
        let idx = c.bounds.iter().position(|&b| v <= b).unwrap_or(c.bounds.len());
        // idx is bounded by bounds.len(), and buckets has bounds.len()+1
        // slots, so get() can only miss if HistCore was built wrong.
        if let Some(slot) = c.buckets.get(idx) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        HistogramSnapshot {
            bounds: c.bounds.clone(),
            buckets: c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    /// One count per bound plus a final overflow bucket.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn saturating_delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if self.bounds != earlier.bounds {
            // Re-registered with different edges: the earlier snapshot is
            // not comparable, return the later one as the delta.
            return self.clone();
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Snapshot-time read of a counter owned by the instrumented code
    /// itself (an inline atomic field) — the registry never sits on the
    /// update path, so hot loops pay zero extra indirection.
    Observed(Box<dyn Fn() -> u64 + Send + Sync>),
}

/// One value out of a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// Registry of named metrics. Cheap to clone handles out of; the internal
/// map is only locked on registration and snapshot.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("MetricsRegistry").field("metrics", &slots.len()).finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Get-or-register the counter `name`. If `name` is already registered
    /// as a different kind, a detached (unregistered) counter is returned —
    /// callers own their namespaces, so a kind clash is a programming error
    /// surfaced by the absent name in snapshots rather than a panic.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        match slots.entry(name.to_string()).or_insert_with(|| Slot::Counter(Counter::new())) {
            Slot::Counter(c) => c.clone(),
            _ => Counter::new(),
        }
    }

    /// Get-or-register the gauge `name` (same clash policy as `counter`).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        match slots.entry(name.to_string()).or_insert_with(|| Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Registers a counter whose value is *read* from `read` at snapshot
    /// time instead of living in the registry. For hot paths that already
    /// maintain their own inline atomics: updates stay a plain `fetch_add`
    /// on the owner's field, and the registry only calls `read` when a
    /// snapshot is taken. If `name` is already registered the new source is
    /// dropped (same ownership policy as `counter`).
    pub fn observed_counter(&self, name: &str, read: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots.entry(name.to_string()).or_insert_with(|| Slot::Observed(Box::new(read)));
    }

    /// Get-or-register a histogram with the given bucket bounds (bounds are
    /// fixed at first registration; same clash policy as `counter`).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        match slots.entry(name.to_string()).or_insert_with(|| Slot::Histogram(Histogram::new(bounds)))
        {
            Slot::Histogram(h) => h.clone(),
            _ => Histogram::new(bounds),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        let values = slots
            .iter()
            .map(|(name, slot)| {
                let v = match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Slot::Observed(read) => MetricValue::Counter(read()),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// Point-in-time copy of a whole registry, keyed by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Per-phase delta `self - earlier`. Counter and histogram math
    /// saturates at zero (a reset between snapshots yields 0, not a wrap);
    /// gauges report their later value's change, which may be negative.
    /// Metrics absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(name, late)| {
                let v = match (late, earlier.values.get(name)) {
                    (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                        MetricValue::Counter(a.saturating_sub(*b))
                    }
                    (MetricValue::Gauge(a), Some(MetricValue::Gauge(b))) => {
                        MetricValue::Gauge(a.wrapping_sub(*b))
                    }
                    (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                        MetricValue::Histogram(a.saturating_delta(b))
                    }
                    (late, _) => late.clone(),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Merges `other` into `self` with every key prefixed by `prefix`
    /// (cluster-wide views: per-node registries merged under `node0.` …).
    pub fn merge_prefixed(&mut self, prefix: &str, other: &MetricsSnapshot) {
        for (name, v) in &other.values {
            self.values.insert(format!("{prefix}{name}"), v.clone());
        }
    }

    pub fn to_json(&self) -> Json {
        let fields = self
            .values
            .iter()
            .map(|(name, v)| {
                let jv = match v {
                    MetricValue::Counter(c) => Json::U64(*c),
                    MetricValue::Gauge(g) => Json::I64(*g),
                    MetricValue::Histogram(h) => Json::Obj(vec![
                        ("count".into(), Json::U64(h.count)),
                        ("sum".into(), Json::U64(h.sum)),
                        (
                            "bounds".into(),
                            Json::Arr(h.bounds.iter().map(|b| Json::U64(*b)).collect()),
                        ),
                        (
                            "buckets".into(),
                            Json::Arr(h.buckets.iter().map(|b| Json::U64(*b)).collect()),
                        ),
                    ]),
                };
                (name.clone(), jv)
            })
            .collect();
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip_through_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.hits");
        let g = reg.gauge("a.resident");
        c.add(3);
        c.inc();
        g.set(10);
        g.add(-4);
        let s = reg.snapshot();
        assert_eq!(s.counter("a.hits"), Some(4));
        assert_eq!(s.gauge("a.resident"), Some(6));
        // A second handle for the same name shares the value.
        reg.counter("a.hits").inc();
        assert_eq!(reg.snapshot().counter("a.hits"), Some(5));
    }

    #[test]
    fn delta_saturates_across_reset() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.add(100);
        let before = reg.snapshot();
        c.reset();
        c.add(5);
        let after = reg.snapshot();
        // 5 - 100 must clamp to 0, not wrap to 2^64 - 95.
        assert_eq!(after.delta(&before).counter("x"), Some(0));
        let forward = reg.snapshot();
        c.add(2);
        assert_eq!(reg.snapshot().delta(&forward).counter("x"), Some(2));
    }

    #[test]
    fn histogram_buckets_and_delta() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10, 100]);
        h.record(5);
        h.record(50);
        h.record(5000);
        let s1 = reg.snapshot();
        let hs = s1.histogram("lat").cloned().unwrap_or_default();
        assert_eq!(hs.buckets, vec![1, 1, 1]);
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 5055);
        h.record(7);
        let d = reg.snapshot().delta(&s1);
        let hd = d.histogram("lat").cloned().unwrap_or_default();
        assert_eq!(hd.buckets, vec![1, 0, 0]);
        assert_eq!(hd.count, 1);
        assert!((hd.mean() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn kind_clash_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("name");
        let g = reg.gauge("name"); // wrong kind: detached
        g.set(42);
        assert_eq!(reg.snapshot().counter("name"), Some(0));
        assert_eq!(reg.snapshot().gauge("name"), None);
    }

    #[test]
    fn observed_counter_reads_an_external_atomic() {
        use std::sync::atomic::AtomicU64;
        let reg = MetricsRegistry::new();
        let cell = Arc::new(AtomicU64::new(0));
        let src = Arc::clone(&cell);
        reg.observed_counter("ext.hits", move || src.load(Ordering::Relaxed));
        cell.fetch_add(7, Ordering::Relaxed);
        let s1 = reg.snapshot();
        assert_eq!(s1.counter("ext.hits"), Some(7));
        cell.fetch_add(2, Ordering::Relaxed);
        // Deltas work the same as registry-owned counters.
        assert_eq!(reg.snapshot().delta(&s1).counter("ext.hits"), Some(2));
        // The name is owned: a handle request for it comes back detached.
        reg.counter("ext.hits").add(100);
        assert_eq!(reg.snapshot().counter("ext.hits"), Some(9));
    }

    #[test]
    fn merge_prefixed_builds_cluster_views() {
        let a = MetricsRegistry::new();
        a.counter("io.reads").add(2);
        let b = MetricsRegistry::new();
        b.counter("io.reads").add(7);
        let mut merged = MetricsSnapshot::default();
        merged.merge_prefixed("node0.", &a.snapshot());
        merged.merge_prefixed("node1.", &b.snapshot());
        assert_eq!(merged.counter("node0.io.reads"), Some(2));
        assert_eq!(merged.counter("node1.io.reads"), Some(7));
    }

    #[test]
    fn snapshot_json_is_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(1);
        reg.gauge("a").set(-2);
        let j = reg.snapshot().to_json().render();
        assert_eq!(j, r#"{"a":-2,"b":1}"#);
    }
}
