//! Unified observability layer (see DESIGN.md "Observability").
//!
//! Three pieces, all dependency-free:
//!
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges, and
//!   fixed-bucket histograms with a snapshot/delta API. The ad-hoc stats
//!   structs elsewhere in the workspace (`IoStats`, `DataflowStats`, …) are
//!   thin facades over handles from a registry, so every subsystem's
//!   counters can be read — and diffed across a phase — through one door.
//! * [`clock`] — time as an injected dependency. Production code uses
//!   [`MonotonicClock`]; tests and the fault harness use [`ManualClock`]
//!   for deterministic timings.
//! * [`profile`] — per-query profile trees: one node per operator, each
//!   annotated with per-partition [`OpMetrics`] (tuples/frames/bytes
//!   in+out, queue-wait vs. compute time, spill activity, per-destination
//!   exchange routing), rendered as `EXPLAIN PROFILE`-style text or JSON.
//!
//! The [`json`] module is a minimal JSON document builder used by the
//! snapshot and profile renderers (no serde in this workspace).

#![forbid(unsafe_code)]

pub mod clock;
pub mod json;
pub mod profile;
pub mod registry;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use json::Json;
pub use profile::{JobProfile, OpMetrics, OperatorProfile};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
};
