//! Property-based tests for the storage layer: B+ tree vs model, LSM vs
//! model, R-tree vs brute force, bloom filter totality, hash vs model.

use asterix_adm::binary::encode_key;
use asterix_adm::{Point, Rectangle, Value};
use asterix_storage::btree::{BTreeBuilder, DiskBTree};
use asterix_storage::cache::BufferCache;
use asterix_storage::io::FileManager;
use asterix_storage::linear_hash::LinearHash;
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::rtree::{DiskRTree, MemRTree, RTreeBuilder, SpatialEntry};
use asterix_storage::stats::IoStats;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "asterix-storage-prop-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(cache_pages: usize) -> (Arc<BufferCache>, TempDir) {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    (BufferCache::new(fm, cache_pages), dir)
}

fn k(i: i64) -> Vec<u8> {
    encode_key(&[Value::Int(i)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The LZSS compressor round-trips arbitrary byte strings and never
    /// inflates beyond the 1-byte framing overhead.
    #[test]
    fn compression_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = asterix_storage::compress::compress(&data);
        prop_assert!(c.len() <= data.len() + 1);
        let d = asterix_storage::compress::decompress(&c).unwrap();
        prop_assert_eq!(d, data);
    }

    /// Repetitive inputs shrink.
    #[test]
    fn compression_shrinks_repetition(unit in prop::collection::vec(any::<u8>(), 4..32),
                                      reps in 20usize..100) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        let c = asterix_storage::compress::compress(&data);
        prop_assert!(c.len() < data.len() / 2, "{} vs {}", c.len(), data.len());
        prop_assert_eq!(asterix_storage::compress::decompress(&c).unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A bulk-loaded B+ tree answers every point and range query identically
    /// to a sorted model.
    #[test]
    fn btree_matches_model(mut keys in prop::collection::btree_set(-500i64..500, 1..300),
                           probes in prop::collection::vec(-600i64..600, 20),
                           lo in -600i64..600, width in 0i64..200) {
        let (cache, _d) = setup(64);
        let w = cache.manager().bulk_writer("p.btree").unwrap();
        let mut b = BTreeBuilder::new(w, keys.len());
        let model: BTreeMap<i64, Vec<u8>> = std::mem::take(&mut keys)
            .into_iter()
            .map(|i| (i, format!("v{i}").into_bytes()))
            .collect();
        for (i, v) in &model {
            b.add(&k(*i), v).unwrap();
        }
        let t = DiskBTree::from_built(Arc::clone(&cache), b.finish().unwrap());
        for p in probes {
            prop_assert_eq!(t.get(&k(p)).unwrap(), model.get(&p).cloned());
        }
        let hi = lo + width;
        let got: Vec<i64> = t
            .range(Bound::Included(&k(lo)), Bound::Included(k(hi)))
            .unwrap()
            .map(|r| {
                let (key, _) = r.unwrap();
                match asterix_adm::binary::decode_key(&key).unwrap().pop().unwrap() {
                    Value::Int(i) => i,
                    other => panic!("{other:?}"),
                }
            })
            .collect();
        let want: Vec<i64> = model.range(lo..=hi).map(|(i, _)| *i).collect();
        prop_assert_eq!(got, want);
    }

    /// An LSM tree under random upserts/deletes/flushes answers point gets
    /// and full scans identically to a map model.
    #[test]
    fn lsm_matches_model(ops in prop::collection::vec((0u8..10, -100i64..100), 1..400)) {
        let (cache, _d) = setup(128);
        let mut t = LsmTree::new(
            cache,
            LsmConfig {
                name: "p".into(),
                mem_budget: 2 << 10,
                merge_policy: MergePolicy::Constant { max_components: 3 },
                bloom: true,
                compress_values: true, // exercise the compression path too
            },
        );
        let mut model: BTreeMap<i64, Vec<u8>> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0..=6 => {
                    let v = format!("v{key}-{op}").into_bytes();
                    t.upsert(k(key), v.clone()).unwrap();
                    model.insert(key, v);
                }
                7 | 8 => {
                    t.delete(k(key)).unwrap();
                    model.remove(&key);
                }
                _ => t.flush().unwrap(),
            }
        }
        for probe in -100i64..100 {
            prop_assert_eq!(t.get(&k(probe)).unwrap(), model.get(&probe).cloned());
        }
        let scan = t.scan().unwrap();
        prop_assert_eq!(scan.len(), model.len());
    }

    /// Disk R-tree search equals brute-force filtering.
    #[test]
    fn rtree_matches_brute_force(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..300),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0, qw in 0.0f64..50.0, qh in 0.0f64..50.0,
    ) {
        let (cache, _d) = setup(64);
        let entries: Vec<SpatialEntry> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| SpatialEntry {
                mbr: Point::new(*x, *y).to_mbr(),
                key: i.to_le_bytes().to_vec(),
            })
            .collect();
        let w = cache.manager().bulk_writer("p.rtree").unwrap();
        let t = DiskRTree::from_built(
            Arc::clone(&cache),
            RTreeBuilder::new(w, true).build(entries.clone()).unwrap(),
        );
        let q = Rectangle::new(Point::new(qx, qy), Point::new(qx + qw, qy + qh));
        let mut got: Vec<Vec<u8>> = t.search(&q).unwrap().into_iter().map(|e| e.key).collect();
        let mut want: Vec<Vec<u8>> = entries
            .iter()
            .filter(|e| e.mbr.intersects(&q))
            .map(|e| e.key.clone())
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// In-memory R-tree also equals brute force, including after removals.
    #[test]
    fn mem_rtree_matches_brute_force(
        pts in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 1..150),
        remove_mask in prop::collection::vec(any::<bool>(), 1..150),
    ) {
        let mut t = MemRTree::with_capacity(5);
        let mut live: Vec<(Point, Vec<u8>)> = Vec::new();
        for (i, (x, y)) in pts.iter().enumerate() {
            let key = i.to_le_bytes().to_vec();
            t.insert(Point::new(*x, *y).to_mbr(), key.clone());
            live.push((Point::new(*x, *y), key));
        }
        for (i, rm) in remove_mask.iter().enumerate() {
            if *rm && i < live.len() {
                let (p, key) = live[i].clone();
                prop_assert!(t.remove(&p.to_mbr(), &key));
            }
        }
        let live: Vec<_> = live
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !remove_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, e)| e)
            .collect();
        let q = Rectangle::new(Point::new(10.0, 10.0), Point::new(35.0, 35.0));
        let mut got: Vec<Vec<u8>> = t.search(&q).into_iter().map(|e| e.key).collect();
        let mut want: Vec<Vec<u8>> = live
            .iter()
            .filter(|(p, _)| q.contains_point(p))
            .map(|(_, k)| k.clone())
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Linear hashing behaves like a HashMap under puts/removes, even with a
    /// tiny buffer cache (forced writebacks).
    #[test]
    fn linear_hash_matches_model(ops in prop::collection::vec((0u8..4, 0u64..200), 1..400)) {
        let (cache, _d) = setup(8);
        let mut h = LinearHash::create(cache, "p.lh", 2, 10).unwrap();
        let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for (op, key) in ops {
            let kb = key.to_le_bytes();
            match op {
                0..=2 => {
                    let v = format!("v{key}").into_bytes();
                    h.put(&kb, &v).unwrap();
                    model.insert(key, v);
                }
                _ => {
                    let removed = h.remove(&kb).unwrap();
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
            }
        }
        for probe in 0u64..200 {
            prop_assert_eq!(h.get(&probe.to_le_bytes()).unwrap(), model.get(&probe).cloned());
        }
    }
}
