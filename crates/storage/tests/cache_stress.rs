//! Concurrency and correctness stress tests for the lock-striped buffer
//! cache: concurrent get/put/flush/evict across shards, eviction under
//! pressure, and dirty-writeback-exactly-once regression coverage.

use asterix_storage::cache::{BufferCache, CacheOptions};
use asterix_storage::io::{FileId, FileManager, PAGE_SIZE};
use asterix_storage::stats::IoStats;
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asterix-cache-stress-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn make_file(fm: &Arc<FileManager>, name: &str, pages: u64) -> FileId {
    let id = fm.create(name).unwrap();
    for i in 0..pages {
        let mut p = vec![0u8; PAGE_SIZE];
        p[..8].copy_from_slice(&i.to_le_bytes());
        fm.append_page(id, &p).unwrap();
    }
    id
}

fn page_no_of(page: &[u8]) -> u64 {
    u64::from_le_bytes(page[..8].try_into().unwrap())
}

#[test]
fn concurrent_scanners_read_consistent_pages() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 32, shards: 8, readahead_pages: 4 },
    );
    let id = make_file(&fm, "scan.pf", 64);
    let mut handles = Vec::new();
    for t in 0..8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for round in 0..20u64 {
                for p in 0..64u64 {
                    let page = if (t + round) % 2 == 0 {
                        cache.get(id, p).unwrap()
                    } else {
                        cache.get_sequential(id, p).unwrap()
                    };
                    assert_eq!(page_no_of(&page), p, "page content matches its number");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cache.resident() <= 32, "residency bounded under concurrency");
    let snaps = cache.shard_snapshots();
    let hits: u64 = snaps.iter().map(|s| s.hits).sum();
    let misses: u64 = snaps.iter().map(|s| s.misses).sum();
    assert_eq!(hits, fm.stats().cache_hits());
    assert_eq!(misses, fm.stats().cache_misses());
    assert_eq!(hits + misses, 8 * 20 * 64, "every access counted exactly once");
}

#[test]
fn concurrent_get_put_flush_evict() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 16, shards: 4, readahead_pages: 0 },
    );
    // One mutable file per writer thread, plus a shared read-only file.
    let shared = make_file(&fm, "shared.pf", 32);
    let mut mutable = Vec::new();
    for t in 0..3 {
        mutable.push(make_file(&fm, &format!("mut{t}.pf"), 8));
    }
    let mut handles = Vec::new();
    for (t, &mid) in mutable.iter().enumerate() {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for round in 0..30u64 {
                for p in 0..8u64 {
                    let mut page = vec![0u8; PAGE_SIZE];
                    page[..8].copy_from_slice(&p.to_le_bytes());
                    page[8..16].copy_from_slice(&round.to_le_bytes());
                    cache.put(mid, p, page).unwrap();
                }
                cache.flush_file(mid).unwrap();
            }
            let _ = t;
        }));
    }
    for _ in 0..3 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for _ in 0..30 {
                for p in 0..32u64 {
                    let page = cache.get(shared, p).unwrap();
                    assert_eq!(page_no_of(&page), p);
                }
            }
        }));
    }
    {
        let cache = Arc::clone(&cache);
        let evictee = shared;
        handles.push(std::thread::spawn(move || {
            for _ in 0..15 {
                cache.evict_file(evictee);
                std::thread::yield_now();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // After the dust settles every mutable file's final flush is on disk.
    for &mid in &mutable {
        for p in 0..8u64 {
            let page = fm.read_page(mid, p).unwrap();
            assert_eq!(page_no_of(&page), p);
            assert_eq!(u64::from_le_bytes(page[8..16].try_into().unwrap()), 29);
        }
    }
    assert!(cache.resident() <= 16);
}

#[test]
fn eviction_under_pressure_preserves_contents() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Budget far below the working set: every scan re-faults most pages.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 8, shards: 4, readahead_pages: 0 },
    );
    let id = make_file(&fm, "big.pf", 128);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for p in 0..128u64 {
                let page = cache.get(id, p).unwrap();
                assert_eq!(page_no_of(&page), p, "eviction never corrupts a page");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cache.resident() <= 8, "residency stays within the budget");
    assert!(fm.stats().evictions() > 0, "pressure actually evicted");
    let per_shard = cache.shard_snapshots();
    for s in &per_shard {
        assert!(s.resident <= s.capacity, "no shard exceeds its slice");
    }
}

#[test]
fn dirty_page_written_back_exactly_once() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Single shard so eviction pressure deterministically reaches the
    // dirty frame.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 2, shards: 1, readahead_pages: 0 },
    );
    let mid = fm.create("once.pf").unwrap();
    fm.append_page(mid, &vec![0u8; PAGE_SIZE]).unwrap();
    let filler = make_file(&fm, "filler.pf", 4);

    // Case 1: flush writes the dirty page once; a second flush is a no-op.
    let mut page = vec![0u8; PAGE_SIZE];
    page[0] = 7;
    cache.put(mid, 0, page).unwrap();
    let before = fm.stats().snapshot();
    cache.flush_file(mid).unwrap();
    cache.flush_file(mid).unwrap();
    let delta = fm.stats().snapshot() - before;
    assert_eq!(delta.physical_writes, 1, "flush wrote the dirty page exactly once");

    // Case 2: eviction writes a dirty page once; flushing afterwards must
    // not write it again (the frame left the cache clean-by-eviction).
    let mut page = vec![0u8; PAGE_SIZE];
    page[0] = 9;
    cache.put(mid, 0, page).unwrap();
    let before = fm.stats().snapshot();
    for p in 0..4 {
        cache.get(filler, p).unwrap(); // floods the single shard
    }
    cache.flush_file(mid).unwrap();
    let delta = fm.stats().snapshot() - before;
    assert_eq!(delta.physical_writes, 1, "eviction wrote it once, flush added nothing");
    assert_eq!(fm.read_page(mid, 0).unwrap()[0], 9);
}

#[test]
fn racing_cold_misses_count_once() {
    // Two threads fault the same cold pages simultaneously (barrier-aligned
    // so both probe before either installs). Insert-side-wins accounting
    // means a page's miss is counted exactly once — by whichever thread won
    // the install — so with no eviction pressure total misses must equal
    // the number of distinct pages, never more. Probe-side counting would
    // book the same cold page as two misses whenever the race hits.
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 64, shards: 4, readahead_pages: 0 },
    );
    let pages = 8u64;
    let rounds = 200u64;
    let id = make_file(&fm, "race.pf", pages);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                for p in 0..pages {
                    barrier.wait();
                    let page = cache.get(id, p).unwrap();
                    assert_eq!(page_no_of(&page), p);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snaps = cache.shard_snapshots();
    let hits: u64 = snaps.iter().map(|s| s.hits).sum();
    let misses: u64 = snaps.iter().map(|s| s.misses).sum();
    assert_eq!(hits + misses, 2 * rounds * pages, "every access counted exactly once");
    assert_eq!(misses, pages, "each cold page is one miss no matter who races it in");
    assert_eq!(hits, fm.stats().cache_hits(), "shard counters match global");
    assert_eq!(misses, fm.stats().cache_misses());
    assert!(
        fm.stats().physical_reads() >= misses,
        "race losers may read physically without owning the miss"
    );
}

#[test]
fn readahead_respects_capacity_pressure() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Readahead batch larger than the whole budget must be clamped.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 4, shards: 2, readahead_pages: 64 },
    );
    let id = make_file(&fm, "seq.pf", 32);
    for p in 0..32u64 {
        let page = cache.get_sequential(id, p).unwrap();
        assert_eq!(page_no_of(&page), p);
    }
    assert!(cache.resident() <= 4, "readahead never overflows the budget");
}
