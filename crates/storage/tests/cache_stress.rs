//! Concurrency and correctness stress tests for the lock-striped buffer
//! cache: concurrent get/put/flush/evict across shards, eviction under
//! pressure, and dirty-writeback-exactly-once regression coverage.

use asterix_storage::cache::{BufferCache, CacheOptions};
use asterix_storage::error::StorageError;
use asterix_storage::faults::{FaultConfig, FaultInjector};
use asterix_storage::io::{FileId, FileManager, PAGE_SIZE};
use asterix_storage::stats::IoStats;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asterix-cache-stress-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn make_file(fm: &Arc<FileManager>, name: &str, pages: u64) -> FileId {
    let id = fm.create(name).unwrap();
    for i in 0..pages {
        let mut p = vec![0u8; PAGE_SIZE];
        p[..8].copy_from_slice(&i.to_le_bytes());
        fm.append_page(id, &p).unwrap();
    }
    id
}

fn page_no_of(page: &[u8]) -> u64 {
    u64::from_le_bytes(page[..8].try_into().unwrap())
}

#[test]
fn concurrent_scanners_read_consistent_pages() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 32, shards: 8, readahead_pages: 4 },
    );
    let id = make_file(&fm, "scan.pf", 64);
    let mut handles = Vec::new();
    for t in 0..8 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for round in 0..20u64 {
                for p in 0..64u64 {
                    let page = if (t + round) % 2 == 0 {
                        cache.get(id, p).unwrap()
                    } else {
                        cache.get_sequential(id, p).unwrap()
                    };
                    assert_eq!(page_no_of(&page), p, "page content matches its number");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cache.resident() <= 32, "residency bounded under concurrency");
    let snaps = cache.shard_snapshots();
    let hits: u64 = snaps.iter().map(|s| s.hits).sum();
    let misses: u64 = snaps.iter().map(|s| s.misses).sum();
    assert_eq!(hits, fm.stats().cache_hits());
    assert_eq!(misses, fm.stats().cache_misses());
    assert_eq!(hits + misses, 8 * 20 * 64, "every access counted exactly once");
}

#[test]
fn concurrent_get_put_flush_evict() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 16, shards: 4, readahead_pages: 0 },
    );
    // One mutable file per writer thread, plus a shared read-only file.
    let shared = make_file(&fm, "shared.pf", 32);
    let mut mutable = Vec::new();
    for t in 0..3 {
        mutable.push(make_file(&fm, &format!("mut{t}.pf"), 8));
    }
    let mut handles = Vec::new();
    for (t, &mid) in mutable.iter().enumerate() {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for round in 0..30u64 {
                for p in 0..8u64 {
                    let mut page = vec![0u8; PAGE_SIZE];
                    page[..8].copy_from_slice(&p.to_le_bytes());
                    page[8..16].copy_from_slice(&round.to_le_bytes());
                    cache.put(mid, p, page).unwrap();
                }
                cache.flush_file(mid).unwrap();
            }
            let _ = t;
        }));
    }
    for _ in 0..3 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for _ in 0..30 {
                for p in 0..32u64 {
                    let page = cache.get(shared, p).unwrap();
                    assert_eq!(page_no_of(&page), p);
                }
            }
        }));
    }
    {
        let cache = Arc::clone(&cache);
        let evictee = shared;
        handles.push(std::thread::spawn(move || {
            for _ in 0..15 {
                cache.evict_file(evictee);
                std::thread::yield_now();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // After the dust settles every mutable file's final flush is on disk.
    for &mid in &mutable {
        for p in 0..8u64 {
            let page = fm.read_page(mid, p).unwrap();
            assert_eq!(page_no_of(&page), p);
            assert_eq!(u64::from_le_bytes(page[8..16].try_into().unwrap()), 29);
        }
    }
    assert!(cache.resident() <= 16);
}

#[test]
fn eviction_under_pressure_preserves_contents() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Budget far below the working set: every scan re-faults most pages.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 8, shards: 4, readahead_pages: 0 },
    );
    let id = make_file(&fm, "big.pf", 128);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let cache = Arc::clone(&cache);
        handles.push(std::thread::spawn(move || {
            for p in 0..128u64 {
                let page = cache.get(id, p).unwrap();
                assert_eq!(page_no_of(&page), p, "eviction never corrupts a page");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(cache.resident() <= 8, "residency stays within the budget");
    assert!(fm.stats().evictions() > 0, "pressure actually evicted");
    let per_shard = cache.shard_snapshots();
    for s in &per_shard {
        assert!(s.resident <= s.capacity, "no shard exceeds its slice");
    }
}

#[test]
fn dirty_page_written_back_exactly_once() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Single shard so eviction pressure deterministically reaches the
    // dirty frame.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 2, shards: 1, readahead_pages: 0 },
    );
    let mid = fm.create("once.pf").unwrap();
    fm.append_page(mid, &vec![0u8; PAGE_SIZE]).unwrap();
    let filler = make_file(&fm, "filler.pf", 4);

    // Case 1: flush writes the dirty page once; a second flush is a no-op.
    let mut page = vec![0u8; PAGE_SIZE];
    page[0] = 7;
    cache.put(mid, 0, page).unwrap();
    let before = fm.stats().snapshot();
    cache.flush_file(mid).unwrap();
    cache.flush_file(mid).unwrap();
    let delta = fm.stats().snapshot() - before;
    assert_eq!(delta.physical_writes, 1, "flush wrote the dirty page exactly once");

    // Case 2: eviction writes a dirty page once; flushing afterwards must
    // not write it again (the frame left the cache clean-by-eviction).
    let mut page = vec![0u8; PAGE_SIZE];
    page[0] = 9;
    cache.put(mid, 0, page).unwrap();
    let before = fm.stats().snapshot();
    for p in 0..4 {
        cache.get(filler, p).unwrap(); // floods the single shard
    }
    cache.flush_file(mid).unwrap();
    let delta = fm.stats().snapshot() - before;
    assert_eq!(delta.physical_writes, 1, "eviction wrote it once, flush added nothing");
    assert_eq!(fm.read_page(mid, 0).unwrap()[0], 9);
}

#[test]
fn racing_cold_misses_count_once() {
    // Two threads fault the same cold pages simultaneously (barrier-aligned
    // so both probe before either installs). Insert-side-wins accounting
    // means a page's miss is counted exactly once — by whichever thread won
    // the install — so with no eviction pressure total misses must equal
    // the number of distinct pages, never more. Probe-side counting would
    // book the same cold page as two misses whenever the race hits.
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 64, shards: 4, readahead_pages: 0 },
    );
    let pages = 8u64;
    let rounds = 200u64;
    let id = make_file(&fm, "race.pf", pages);
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                for p in 0..pages {
                    barrier.wait();
                    let page = cache.get(id, p).unwrap();
                    assert_eq!(page_no_of(&page), p);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snaps = cache.shard_snapshots();
    let hits: u64 = snaps.iter().map(|s| s.hits).sum();
    let misses: u64 = snaps.iter().map(|s| s.misses).sum();
    assert_eq!(hits + misses, 2 * rounds * pages, "every access counted exactly once");
    assert_eq!(misses, pages, "each cold page is one miss no matter who races it in");
    assert_eq!(hits, fm.stats().cache_hits(), "shard counters match global");
    assert_eq!(misses, fm.stats().cache_misses());
    assert_eq!(
        fm.stats().physical_reads(),
        misses,
        "request coalescing: race losers park on the leader's in-flight \
         read instead of issuing their own, so physical reads equal misses"
    );
}

#[test]
fn miss_storm_coalesces_onto_one_physical_read() {
    // 8 threads fault the same cold page at the same instant. The injected
    // 200ms read latency holds the leader's physical read open long enough
    // that every other thread deterministically finds the in-flight slot and
    // parks: exactly 1 physical read, 1 miss (the leader's), 7 coalesced
    // waits that resolve as logical hits on the shared frame.
    let dir = TempDir::new();
    let faults = FaultInjector::new(FaultConfig {
        read_delay: Some(Duration::from_millis(200)),
        ..FaultConfig::default()
    });
    let fm = FileManager::with_faults(&dir.0, IoStats::new(), Some(faults)).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 32, shards: 4, readahead_pages: 0 },
    );
    let id = make_file(&fm, "storm.pf", 1);
    fm.stats().reset();
    let barrier = Arc::new(Barrier::new(8));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let page = cache.get(id, 0).unwrap();
            assert_eq!(page_no_of(&page), 0);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(fm.stats().physical_reads(), 1, "the storm issued exactly one physical read");
    assert_eq!(fm.stats().cache_misses(), 1, "only the leader owns the miss");
    assert_eq!(fm.stats().cache_hits(), 7, "waiters resolve as logical hits");
    assert_eq!(
        fm.stats().cache_hits() + fm.stats().cache_misses(),
        8,
        "all 8 accesses accounted as logical hits/waits"
    );
    assert_eq!(fm.stats().coalesced_waits(), 7, "seven requesters parked on the leader");
    let snaps = cache.shard_snapshots();
    let coalesced: u64 = snaps.iter().map(|s| s.coalesced_waits).sum();
    assert_eq!(coalesced, 7, "per-shard coalesced-wait counters match global");
    assert_eq!(cache.inflight_loads(), 0, "the in-flight slot was retired");
}

#[test]
fn coalesced_load_failure_propagates_typed_to_every_waiter() {
    // Phase 1: replay the exact setup workload against a non-crashing
    // injector to learn its I/O-operation count, so phase 2 can schedule the
    // crash to land precisely on the storm's single physical read.
    let setup_ops = {
        let dir = TempDir::new();
        let faults = FaultInjector::new(FaultConfig::default());
        let fm =
            FileManager::with_faults(&dir.0, IoStats::new(), Some(Arc::clone(&faults))).unwrap();
        make_file(&fm, "doomed.pf", 1);
        faults.ops()
    };
    let dir = TempDir::new();
    let faults = FaultInjector::new(FaultConfig {
        crash_after_ios: Some(setup_ops),
        torn_writes: false,
        // Hold the doomed read open so all 7 waiters are parked on the
        // in-flight slot when the failure publishes.
        read_delay: Some(Duration::from_millis(200)),
        ..FaultConfig::default()
    });
    let fm = FileManager::with_faults(&dir.0, IoStats::new(), Some(faults)).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 32, shards: 4, readahead_pages: 0 },
    );
    let id = make_file(&fm, "doomed.pf", 1);
    let barrier = Arc::new(Barrier::new(8));
    let mut handles = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            cache.get(id, 0)
        }));
    }
    let mut injected = 0;
    let mut coalesced = 0;
    for h in handles {
        // join returning at all is the "none hang" assertion
        match h.join().unwrap().expect_err("the injected crash must fail every requester") {
            StorageError::Injected(_) => injected += 1,
            StorageError::CoalescedLoad { file, page, cause } => {
                assert_eq!(file, id);
                assert_eq!(page, 0);
                assert!(cause.contains("injected"), "waiters see the leader's cause: {cause}");
                coalesced += 1;
            }
            other => panic!("unexpected error shape: {other}"),
        }
    }
    assert_eq!(injected, 1, "exactly one requester (the leader) saw the raw injected fault");
    assert_eq!(coalesced, 7, "all seven waiters got the typed coalesced-load error");
    assert_eq!(cache.inflight_loads(), 0, "the failed slot was retired");
    // A later request opens a fresh slot and retries the read itself (the
    // injector is sticky-crashed, so the retry fails typed — but it *ran*,
    // it did not park on stale in-flight state).
    match cache.get(id, 0) {
        Err(StorageError::Injected(_)) => {}
        other => panic!("retry after failure must re-attempt the read, got {other:?}"),
    }
    assert_eq!(cache.inflight_loads(), 0);
}

#[test]
fn failed_load_retires_slot_so_next_request_succeeds() {
    // A load that fails for a transient reason (here: page not yet written)
    // must not poison the key: once the page exists, the next request reads
    // it fresh and succeeds.
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 8, shards: 2, readahead_pages: 0 },
    );
    let id = make_file(&fm, "grow.pf", 1);
    assert!(cache.get(id, 3).is_err(), "page 3 does not exist yet");
    assert_eq!(cache.inflight_loads(), 0, "failed slot retired immediately");
    for i in 1..=3u64 {
        let mut p = vec![0u8; PAGE_SIZE];
        p[..8].copy_from_slice(&i.to_le_bytes());
        fm.append_page(id, &p).unwrap();
    }
    let page = cache.get(id, 3).expect("fresh request after failure must retry the read");
    assert_eq!(page_no_of(&page), 3);
}

#[test]
fn readahead_respects_capacity_pressure() {
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    // Readahead batch larger than the whole budget must be clamped.
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 4, shards: 2, readahead_pages: 64 },
    );
    let id = make_file(&fm, "seq.pf", 32);
    for p in 0..32u64 {
        let page = cache.get_sequential(id, p).unwrap();
        assert_eq!(page_no_of(&page), p);
    }
    assert!(cache.resident() <= 4, "readahead never overflows the budget");
}

#[test]
fn auto_sharding_tracks_host_parallelism() {
    // shards: 0 sizes the stripe count to the machine (clamped to the page
    // budget), matching the morsel worker pool's width — explicit counts
    // above keep stress runs deterministic, but the default must scale.
    let dir = TempDir::new();
    let fm = FileManager::new(&dir.0, IoStats::new()).unwrap();
    let cache = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 4096, shards: 0, readahead_pages: 0 },
    );
    assert_eq!(cache.shard_count(), asterix_storage::cache::default_shards().min(4096));
    let tiny = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 2, shards: 0, readahead_pages: 0 },
    );
    assert_eq!(
        tiny.shard_count(),
        asterix_storage::cache::default_shards().min(2),
        "page budget clamps the auto stripe count"
    );
}
