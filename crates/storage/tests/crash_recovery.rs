//! Storage-level crash-recovery tests: deterministic fault injection into
//! the WAL and page-file paths, plus the WAL truncation property (any
//! byte-level prefix of a synced log recovers exactly the records that fit).

use asterix_storage::faults::{FaultConfig, FaultEvent, FaultInjector};
use asterix_storage::io::{FileManager, PAGE_SIZE};
use asterix_storage::stats::IoStats;
use asterix_storage::wal::{
    committed_operations, read_log, valid_prefix_len, WalRecord, WalWriter,
};
use asterix_storage::StorageError;
use proptest::prelude::*;
use std::path::PathBuf;

/// Self-cleaning scratch directory (integration tests cannot use the
/// crate-private test helper).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "asterix-crashrec-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn upd(txn: u64, key: &[u8], value: &[u8]) -> WalRecord {
    WalRecord::Update {
        txn_id: txn,
        dataset: "ds".into(),
        partition: 0,
        is_delete: false,
        key: key.to_vec(),
        value: value.to_vec(),
    }
}

/// Runs a fixed WAL workload (3 records per txn, sync per commit) against an
/// injector crashing after `crash_after` I/O ops. Returns the committed txn
/// ids (sync returned Ok), the injector's event schedule, and the log bytes.
fn wal_workload(dir: &TempDir, seed: u64, crash_after: u64) -> (Vec<u64>, Vec<FaultEvent>, Vec<u8>) {
    let path = dir.path().join("wal.log");
    let faults = FaultInjector::crash_after(seed, crash_after);
    let mut w = WalWriter::open_with_faults(&path, Some(faults.clone())).unwrap();
    let mut committed = Vec::new();
    'outer: for txn in 1..=16u64 {
        for i in 0..3u64 {
            let key = format!("k{txn}-{i}");
            let value = vec![txn as u8; 64];
            if w.append(&upd(txn, key.as_bytes(), &value)).is_err() {
                break 'outer;
            }
        }
        if w.append(&WalRecord::Commit { txn_id: txn }).is_err() {
            break;
        }
        if w.sync().is_ok() {
            committed.push(txn);
        } else {
            break;
        }
    }
    let bytes = std::fs::read(&path).unwrap_or_default();
    (committed, faults.events(), bytes)
}

#[test]
fn wal_crash_recovers_all_confirmed_commits() {
    // every crash point: commits confirmed before the crash must replay
    for crash_after in 0..24u64 {
        let dir = TempDir::new("walcrash");
        let (committed, events, _) = wal_workload(&dir, 42, crash_after);
        let recs = read_log(dir.path().join("wal.log")).unwrap();
        let replayed: std::collections::BTreeSet<u64> =
            committed_operations(&recs).iter().map(|op| op.0).collect();
        for txn in &committed {
            assert!(
                replayed.contains(txn),
                "crash_after={crash_after}: txn {txn} confirmed committed but lost \
                 (events: {events:?})"
            );
        }
        // every replayed op belongs to a txn with a durable commit record —
        // the crashing commit may or may not have reached the disk, but
        // never partially (its records precede it in one flush)
        for op in committed_operations(&recs) {
            let n_ops = recs
                .iter()
                .filter(|(_, r)| matches!(r, WalRecord::Update { txn_id, .. } if *txn_id == op.0))
                .count();
            assert_eq!(n_ops, 3, "replayed txn {} must have all its updates", op.0);
        }
    }
}

#[test]
fn wal_reopen_after_torn_crash_continues_cleanly() {
    let dir = TempDir::new("waltorn");
    // crash on the very first flush: a torn prefix of txn 1 lands on disk
    let (committed, events, _) = wal_workload(&dir, 7, 0);
    assert!(committed.is_empty());
    assert!(events.iter().any(|e| matches!(e, FaultEvent::Crash { .. })));
    let path = dir.path().join("wal.log");
    let torn_len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let valid = valid_prefix_len(&path).unwrap();
    assert!(valid <= torn_len);
    // a fresh writer truncates the tail and appends readable records
    let mut w = WalWriter::open(&path).unwrap();
    assert_eq!(w.next_lsn(), valid);
    w.append(&upd(99, b"post", b"crash")).unwrap();
    w.append(&WalRecord::Commit { txn_id: 99 }).unwrap();
    w.sync().unwrap();
    let ops = committed_operations(&read_log(&path).unwrap());
    assert!(ops.iter().any(|op| op.0 == 99), "post-crash commit must be replayable");
}

#[test]
fn same_seed_reproduces_schedule_and_log_bytes() {
    for crash_after in [0u64, 2, 3, 7, 18, 19] {
        let d1 = TempDir::new("repro1");
        let d2 = TempDir::new("repro2");
        let (c1, e1, b1) = wal_workload(&d1, 1234, crash_after);
        let (c2, e2, b2) = wal_workload(&d2, 1234, crash_after);
        assert_eq!(c1, c2, "commit outcomes must replay");
        assert_eq!(e1, e2, "fault schedule must replay");
        assert_eq!(b1, b2, "log must be byte-for-byte identical");
        assert!(!e1.is_empty(), "crash_after={crash_after} should have fired");
        // Crash points that land on an fsync record no RNG draw, so their
        // schedule is seed-independent by design. Only when the crash lands
        // on a flush (a TornWrite event with a seeded `kept` draw) should a
        // different seed produce a different schedule.
        if e1.iter().any(|e| matches!(e, FaultEvent::TornWrite { .. })) {
            let d3 = TempDir::new("repro3");
            let (_, e3, _) = wal_workload(&d3, 4321, crash_after);
            assert_ne!(e1, e3, "a different seed should tear at a different offset");
        }
    }
}

#[test]
fn torn_page_write_leaves_partial_page() {
    let dir = TempDir::new("tornpage");
    let faults = FaultInjector::new(FaultConfig {
        seed: 5,
        crash_after_ios: Some(2),
        ..FaultConfig::default()
    });
    let fm = FileManager::with_faults(dir.path(), IoStats::new(), Some(faults.clone())).unwrap();
    let id = fm.create("t.pf").unwrap();
    let page = vec![0xEEu8; PAGE_SIZE];
    fm.append_page(id, &page).unwrap();
    fm.append_page(id, &page).unwrap();
    // third write is the crash point
    let err = fm.append_page(id, &page).unwrap_err();
    assert!(matches!(err, StorageError::Injected(_)), "got {err:?}");
    assert!(faults.crashed());
    // everything after the crash fails, including reads and creates
    assert!(fm.read_page(id, 0).is_err());
    assert!(fm.create("other.pf").is_err());
    // on disk: two full pages plus (possibly) a torn prefix of the third
    let len = std::fs::metadata(dir.path().join("t.pf")).unwrap().len();
    assert!(len >= 2 * PAGE_SIZE as u64 && len < 3 * PAGE_SIZE as u64, "len={len}");
    // a recovering manager rejects the file unless the tear is page-aligned
    let fm2 = FileManager::new(dir.path(), IoStats::new()).unwrap();
    match fm2.open("t.pf") {
        Ok(id2) => assert_eq!(fm2.page_count(id2).unwrap(), 2),
        Err(StorageError::Corrupt(_)) => {} // unaligned tear detected
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn bulk_writer_crash_mid_build() {
    let dir = TempDir::new("bulkcrash");
    let faults = FaultInjector::crash_after(9, 4);
    let fm = FileManager::with_faults(dir.path(), IoStats::new(), Some(faults)).unwrap();
    let mut w = fm.bulk_writer("comp.btree").unwrap();
    let page = vec![1u8; PAGE_SIZE];
    let mut failed = false;
    for _ in 0..10 {
        if w.append(&page).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "crash point inside the bulk build must surface");
    assert!(w.finish().is_err(), "finishing a crashed build must fail");
}

#[test]
fn read_corruption_is_observable() {
    let dir = TempDir::new("bitflip");
    let faults = FaultInjector::new(FaultConfig {
        seed: 77,
        read_corrupt_prob: 1.0,
        ..FaultConfig::default()
    });
    let fm = FileManager::with_faults(dir.path(), IoStats::new(), Some(faults.clone())).unwrap();
    let id = fm.create("t.pf").unwrap();
    fm.append_page(id, &vec![0u8; PAGE_SIZE]).unwrap();
    let page = fm.read_page(id, 0).unwrap();
    assert_eq!(
        page.iter().filter(|&&b| b != 0).count(),
        1,
        "exactly one flipped bit expected"
    );
    assert!(faults
        .events()
        .iter()
        .any(|e| matches!(e, FaultEvent::BitFlip { .. })));
}

#[test]
fn short_writes_are_transient_and_retryable() {
    let dir = TempDir::new("shortwrite");
    let faults = FaultInjector::new(FaultConfig {
        seed: 21,
        short_write_prob: 0.5,
        ..FaultConfig::default()
    });
    let path = dir.path().join("wal.log");
    let mut w = WalWriter::open_with_faults(&path, Some(faults.clone())).unwrap();
    let mut confirmed = Vec::new();
    for txn in 1..=32u64 {
        w.append(&upd(txn, b"k", b"v")).unwrap();
        w.append(&WalRecord::Commit { txn_id: txn }).unwrap();
        // retry the sync through transient short writes
        let mut ok = false;
        for _ in 0..20 {
            if w.sync().is_ok() {
                ok = true;
                break;
            }
            assert!(!faults.crashed(), "short writes must not be sticky");
        }
        assert!(ok, "sync should eventually succeed under transient faults");
        confirmed.push(txn);
    }
    let replayed: Vec<u64> = committed_operations(&read_log(&path).unwrap())
        .iter()
        .map(|op| op.0)
        .collect();
    assert_eq!(replayed, confirmed, "retried syncs must not duplicate or lose records");
    assert!(
        faults.events().iter().any(|e| matches!(e, FaultEvent::ShortWrite { .. })),
        "workload should have hit at least one short write"
    );
}

// ---------------------------------------------------------------------------
// WAL round-trip under truncation (property)
// ---------------------------------------------------------------------------

fn arb_record() -> BoxedStrategy<WalRecord> {
    prop_oneof![
        (
            1u64..20,
            prop::collection::vec(0u8..255, 1..24),
            prop::collection::vec(0u8..255, 0..48),
            any::<bool>(),
        )
            .prop_map(|(txn, key, value, is_delete)| WalRecord::Update {
                txn_id: txn,
                dataset: "ds".into(),
                partition: (txn % 4) as u32,
                is_delete,
                key,
                value: if is_delete { Vec::new() } else { value },
            }),
        (1u64..20).prop_map(|txn| WalRecord::Commit { txn_id: txn }),
        (1u64..20).prop_map(|txn| WalRecord::Abort { txn_id: txn }),
        Just(WalRecord::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Append+sync a random record sequence, then truncate the file at an
    /// arbitrary byte length: reading must always recover exactly the
    /// maximal record prefix that fits, never erroring and never yielding a
    /// record past the cut.
    #[test]
    fn truncated_log_always_yields_the_synced_prefix(
        records in prop::collection::vec(arb_record(), 1..40),
        cut_fraction in 0.0f64..1.2,
    ) {
        let dir = TempDir::new("proptrunc");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        let mut offsets = Vec::new();
        for r in &records {
            offsets.push(w.append(r).unwrap());
        }
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        let full_records = read_log(&path).unwrap();
        prop_assert_eq!(full_records.len(), records.len());

        // byte-level truncation at an arbitrary point (possibly past EOF)
        let cut = ((full.len() as f64) * cut_fraction) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut.min(full.len() as u64)).unwrap();
        drop(f);

        let got = read_log(&path).unwrap();
        // expected: all records whose encoded bytes fit below the cut
        let expected: Vec<(u64, WalRecord)> = full_records
            .iter()
            .enumerate()
            .take_while(|(i, (lsn, _))| {
                let end = offsets
                    .get(i + 1)
                    .copied()
                    .unwrap_or(full.len() as u64);
                let _ = lsn;
                end <= cut
            })
            .map(|(_, r)| r.clone())
            .collect();
        prop_assert_eq!(&got, &expected, "cut={} of {}", cut, full.len());
        // and the valid prefix length is exactly where the last survivor ends
        let valid = valid_prefix_len(&path).unwrap();
        let want_valid = got
            .len()
            .checked_sub(1)
            .map(|i| offsets.get(i + 1).copied().unwrap_or(full.len() as u64))
            .unwrap_or(0);
        prop_assert_eq!(valid, want_valid);
    }
}
