//! The node-level buffer cache (paper Figure 2).
//!
//! A fixed budget of [`PAGE_SIZE`] frames shared by all dataset partitions on
//! a node, with CLOCK (second-chance) eviction. Pages are returned as
//! `Arc<Vec<u8>>`, so a reader holding a page is never invalidated by
//! eviction — eviction merely drops the cache's reference.
//!
//! Most cached files (LSM components) are immutable, so eviction is free.
//! Mutable structures (linear hashing) write through [`BufferCache::put`],
//! which marks frames dirty; dirty frames are written back on eviction or
//! [`BufferCache::flush_file`] — the classic steal/no-force discipline.

use crate::error::Result;
use crate::io::{FileId, FileManager, PAGE_SIZE};
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone)]
struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
    referenced: bool,
}

struct CacheInner {
    frames: HashMap<(FileId, u64), Frame>,
    /// CLOCK ring of resident page keys plus the rotating hand.
    ring: Vec<(FileId, u64)>,
    hand: usize,
}

/// A CLOCK buffer cache over one [`FileManager`].
pub struct BufferCache {
    manager: Arc<FileManager>,
    stats: Arc<IoStats>,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl BufferCache {
    /// Creates a cache of `capacity` frames (each [`PAGE_SIZE`] bytes) over
    /// `manager`. A capacity of 0 disables caching (every read is physical).
    pub fn new(manager: Arc<FileManager>, capacity: usize) -> Arc<Self> {
        let stats = Arc::clone(manager.stats());
        Arc::new(BufferCache {
            manager,
            stats,
            capacity,
            inner: Mutex::new(CacheInner {
                frames: HashMap::with_capacity(capacity),
                ring: Vec::with_capacity(capacity),
                hand: 0,
            }),
        })
    }

    /// The underlying file manager.
    pub fn manager(&self) -> &Arc<FileManager> {
        &self.manager
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Frame budget in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reads a page through the cache.
    pub fn get(&self, file: FileId, page_no: u64) -> Result<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            self.stats.count_cache_miss();
            return Ok(Arc::new(self.manager.read_page(file, page_no)?));
        }
        let key = (file, page_no);
        {
            let mut inner = self.inner.lock();
            if let Some(frame) = inner.frames.get_mut(&key) {
                frame.referenced = true;
                self.stats.count_cache_hit();
                return Ok(Arc::clone(&frame.data));
            }
        }
        // Miss: do the physical read outside the lock, then install.
        self.stats.count_cache_miss();
        let data = Arc::new(self.manager.read_page(file, page_no)?);
        self.install(key, Arc::clone(&data), false)?;
        Ok(data)
    }

    /// Writes a page through the cache (marks the frame dirty; the physical
    /// write happens on eviction or flush). `data` must be one page.
    pub fn put(&self, file: FileId, page_no: u64, data: Vec<u8>) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        if self.capacity == 0 {
            return self.manager.write_page(file, page_no, &data);
        }
        self.install((file, page_no), Arc::new(data), true)
    }

    fn install(&self, key: (FileId, u64), data: Arc<Vec<u8>>, dirty: bool) -> Result<()> {
        // Collect evicted dirty pages and write them back outside the lock.
        type Writeback = ((FileId, u64), Arc<Vec<u8>>);
        let mut writebacks: Vec<Writeback> = Vec::new();
        {
            let mut inner = self.inner.lock();
            if let Some(frame) = inner.frames.get_mut(&key) {
                frame.data = data;
                frame.dirty = frame.dirty || dirty;
                frame.referenced = true;
            } else {
                while inner.frames.len() >= self.capacity && !inner.ring.is_empty() {
                    // CLOCK sweep: clear reference bits until a victim appears.
                    let idx = inner.hand % inner.ring.len();
                    let victim_key = inner.ring[idx];
                    let evict = {
                        let frame = inner.frames.get_mut(&victim_key).expect("ring in sync");
                        if frame.referenced {
                            frame.referenced = false;
                            false
                        } else {
                            true
                        }
                    };
                    if evict {
                        let frame = inner.frames.remove(&victim_key).unwrap();
                        inner.ring.swap_remove(idx);
                        if idx >= inner.ring.len() {
                            inner.hand = 0;
                        }
                        self.stats.count_eviction();
                        if frame.dirty {
                            writebacks.push((victim_key, frame.data));
                        }
                    } else {
                        inner.hand = (idx + 1) % inner.ring.len().max(1);
                    }
                }
                inner.frames.insert(key, Frame { data, dirty, referenced: true });
                inner.ring.push(key);
            }
        }
        for ((fid, page), data) in writebacks {
            self.manager.write_page(fid, page, &data)?;
        }
        Ok(())
    }

    /// Writes back all dirty frames of `file` (without evicting them).
    pub fn flush_file(&self, file: FileId) -> Result<()> {
        let dirty: Vec<(u64, Arc<Vec<u8>>)> = {
            let mut inner = self.inner.lock();
            inner
                .frames
                .iter_mut()
                .filter(|((fid, _), f)| *fid == file && f.dirty)
                .map(|((_, page), f)| {
                    f.dirty = false;
                    (*page, Arc::clone(&f.data))
                })
                .collect()
        };
        for (page, data) in dirty {
            self.manager.write_page(file, page, &data)?;
        }
        self.manager.sync(file)?;
        Ok(())
    }

    /// Drops all frames of `file` (used when a component is deleted after a
    /// merge). Dirty frames of a dropped file are discarded by design.
    pub fn evict_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.frames.retain(|(fid, _), _| *fid != file);
        inner.ring.retain(|(fid, _)| *fid != file);
        inner.hand = 0;
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn setup(capacity: usize) -> (Arc<BufferCache>, Arc<FileManager>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        let cache = BufferCache::new(Arc::clone(&fm), capacity);
        (cache, fm, dir)
    }

    fn make_file_named(fm: &Arc<FileManager>, name: &str, pages: u8) -> FileId {
        let id = fm.create(name).unwrap();
        for i in 0..pages {
            let mut p = vec![0u8; PAGE_SIZE];
            p[0] = i;
            fm.append_page(id, &p).unwrap();
        }
        id
    }

    fn make_file(fm: &Arc<FileManager>, pages: u8) -> FileId {
        make_file_named(fm, "f.pf", pages)
    }

    #[test]
    fn hits_avoid_physical_reads() {
        let (cache, fm, _d) = setup(4);
        let id = make_file(&fm, 2);
        fm.stats().reset();
        assert_eq!(cache.get(id, 0).unwrap()[0], 0);
        assert_eq!(cache.get(id, 0).unwrap()[0], 0);
        assert_eq!(cache.get(id, 1).unwrap()[0], 1);
        assert_eq!(fm.stats().physical_reads(), 2, "two misses");
        assert_eq!(fm.stats().cache_hits(), 1);
    }

    #[test]
    fn eviction_bounds_residency() {
        let (cache, fm, _d) = setup(2);
        let id = make_file(&fm, 6);
        for p in 0..6 {
            cache.get(id, p).unwrap();
        }
        assert!(cache.resident() <= 2);
        assert!(fm.stats().evictions() >= 4);
    }

    #[test]
    fn clock_keeps_hot_page() {
        let (cache, fm, _d) = setup(2);
        let id = make_file(&fm, 4);
        cache.get(id, 0).unwrap();
        for p in 1..4 {
            cache.get(id, p).unwrap();
            cache.get(id, 0).unwrap(); // keep page 0 hot
        }
        fm.stats().reset();
        cache.get(id, 0).unwrap();
        assert_eq!(fm.stats().physical_reads(), 0, "hot page stayed resident");
    }

    #[test]
    fn dirty_writeback_on_eviction_and_flush() {
        let (cache, fm, _d) = setup(2);
        let id = make_file(&fm, 1);
        // make the file writable again for the test: create a fresh one
        let id2 = fm.create("mut.pf").unwrap();
        fm.append_page(id2, &vec![0u8; PAGE_SIZE]).unwrap();
        let mut p = vec![0u8; PAGE_SIZE];
        p[7] = 99;
        cache.put(id2, 0, p).unwrap();
        // not yet on disk
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 0);
        cache.flush_file(id2).unwrap();
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 99);
        // eviction writeback: dirty again, then flood the cache
        let mut p2 = vec![0u8; PAGE_SIZE];
        p2[7] = 123;
        cache.put(id2, 0, p2).unwrap();
        cache.get(id, 0).unwrap();
        let id3 = make_file_named(&fm, "g.pf", 3);
        for i in 0..3 {
            cache.get(id3, i).unwrap();
        }
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 123, "evicted dirty page written back");
    }

    #[test]
    fn zero_capacity_is_uncached() {
        let (cache, fm, _d) = setup(0);
        let id = make_file(&fm, 1);
        fm.stats().reset();
        cache.get(id, 0).unwrap();
        cache.get(id, 0).unwrap();
        assert_eq!(fm.stats().physical_reads(), 2);
        assert_eq!(fm.stats().cache_hits(), 0);
    }

    #[test]
    fn evict_file_drops_frames() {
        let (cache, fm, _d) = setup(8);
        let id = make_file(&fm, 3);
        for p in 0..3 {
            cache.get(id, p).unwrap();
        }
        assert_eq!(cache.resident(), 3);
        cache.evict_file(id);
        assert_eq!(cache.resident(), 0);
    }
}
