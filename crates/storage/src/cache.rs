//! The node-level buffer cache (paper Figure 2).
//!
//! A fixed budget of [`PAGE_SIZE`] frames shared by all dataset partitions on
//! a node, split into N lock-striped *shards* (key-hashed) so concurrent
//! scanners do not serialize on one global lock. Each shard owns a slice of
//! the frame budget, its own CLOCK (second-chance) ring, and its own
//! hit/miss/eviction/readahead counters. Pages are returned as
//! `Arc<Vec<u8>>`, so a reader holding a page is never invalidated by
//! eviction — eviction merely drops the cache's reference.
//!
//! Hits take only a shard *read* lock: the CLOCK reference bit is an
//! `AtomicBool`, so the hot path is a shared lock plus one relaxed store.
//! Installs, evictions, and flushes take the shard write lock.
//!
//! Sequential scans go through [`BufferCache::get_sequential`], which turns
//! a miss into one batched physical read of the next `readahead_pages`
//! contiguous pages (LSM component leaves are packed sequentially, so the
//! following leaf fetches hit).
//!
//! Most cached files (LSM components) are immutable, so eviction is free.
//! Mutable structures (linear hashing) write through [`BufferCache::put`],
//! which marks frames dirty; dirty frames are written back on eviction or
//! [`BufferCache::flush_file`] — the classic steal/no-force discipline.
//!
//! # Request coalescing
//!
//! Concurrent serving turns a cold page into a *miss storm*: N scanners
//! fault the same page at once and, with probe-then-read, all N issue the
//! same physical read. The cache therefore keeps an in-flight-load map
//! (level `cache_inflight`, acquired before `cache_shard`): the first
//! requester of a missing key becomes the **leader** and performs the one
//! physical read; later requesters find the key in-flight, park on the
//! entry's condvar, and share the installed frame when the leader publishes
//! it (counted as `cache.coalesced_waits` plus a logical hit). A failed
//! leader read is published too — every waiter gets a typed
//! [`StorageError::CoalescedLoad`] carrying the cause — and the slot is
//! retired either way, so the next request for the page retries fresh.

use crate::error::{Result, StorageError};
use crate::io::{FileId, FileManager, PAGE_SIZE};
use crate::lock_order::{OrderedMutex, OrderedRwLock};
use crate::stats::{CacheShardSnapshot, IoStats};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fallback stripe count when the host's parallelism cannot be queried.
pub const DEFAULT_SHARDS: usize = 8;

/// Default number of lock stripes: one per hardware thread (clamped to the
/// frame budget at construction). Lock stripes exist to decorrelate
/// concurrent cache hits, and the number of threads that can contend is the
/// worker-pool width — sizing to the machine instead of a hard-coded 8
/// keeps stripe contention flat as core counts grow.
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(DEFAULT_SHARDS)
}

/// Default pages fetched per sequential readahead batch.
pub const DEFAULT_READAHEAD: usize = 8;

/// Construction options for [`BufferCache::with_options`].
#[derive(Debug, Clone, Copy)]
pub struct CacheOptions {
    /// Frame budget in pages (0 disables caching entirely).
    pub capacity: usize,
    /// Number of lock-striped shards; 0 picks
    /// `min(capacity, available_parallelism())` ([`default_shards`]).
    pub shards: usize,
    /// Pages per sequential readahead batch; 0 or 1 disables readahead.
    pub readahead_pages: usize,
}

impl CacheOptions {
    /// Options with the given capacity and default sharding/readahead.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheOptions { capacity, shards: 0, readahead_pages: DEFAULT_READAHEAD }
    }
}

struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
    /// CLOCK reference bit; atomic so hits can set it under a read lock.
    referenced: AtomicBool,
}

struct ShardInner {
    frames: HashMap<(FileId, u64), Frame>,
    /// CLOCK ring of resident page keys plus the rotating hand.
    ring: Vec<(FileId, u64)>,
    hand: usize,
}

struct Shard {
    /// This shard's slice of the frame budget.
    capacity: usize,
    inner: OrderedRwLock<ShardInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    readaheads: AtomicU64,
    coalesced_waits: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            capacity,
            inner: OrderedRwLock::new(
                "cache_shard",
                ShardInner {
                    frames: HashMap::with_capacity(capacity),
                    ring: Vec::with_capacity(capacity),
                    hand: 0,
                },
            ),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            readaheads: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
        }
    }

    /// Hit path: shared lock, relaxed reference-bit store.
    fn lookup(&self, key: &(FileId, u64)) -> Option<Arc<Vec<u8>>> {
        let inner = self.inner.read(); // xlint: lock(cache_shard)
        let frame = inner.frames.get(key)?;
        frame.referenced.store(true, Ordering::Relaxed);
        Some(Arc::clone(&frame.data))
    }
}

/// Outcome slot of one in-flight physical load, shared between the leading
/// reader and its parked waiters.
enum LoadState {
    Pending,
    Ready(Arc<Vec<u8>>),
    /// Rendered leader error (`StorageError` is not `Clone`; waiters wrap
    /// the string in [`StorageError::CoalescedLoad`]).
    Failed(String),
}

struct InflightEntry {
    state: Mutex<LoadState>,
    cv: Condvar,
}

impl InflightEntry {
    fn new() -> InflightEntry {
        InflightEntry { state: Mutex::new(LoadState::Pending), cv: Condvar::new() }
    }

    /// Publishes the leader's outcome and wakes every parked waiter.
    fn resolve(&self, outcome: LoadState) {
        let mut s = self.state.lock();
        *s = outcome;
        drop(s);
        self.cv.notify_all();
    }

    /// Parks until the leader resolves; returns the shared frame or the
    /// leader's rendered error.
    fn wait(&self) -> std::result::Result<Arc<Vec<u8>>, String> { // xlint: allow(blocking, "coalesced load: one loader does the read, peers park until the page lands; bounded by one page I/O")
        let mut s = self.state.lock();
        loop {
            match &*s {
                LoadState::Pending => self.cv.wait(&mut s),
                LoadState::Ready(d) => return Ok(Arc::clone(d)),
                LoadState::Failed(m) => return Err(m.clone()),
            }
        }
    }
}

/// How a missing-page request relates to the in-flight-load map.
enum InflightRole {
    /// The frame became resident between the miss probe and the map lock.
    Hit(Arc<Vec<u8>>),
    /// Another thread is already reading this page; park on its entry.
    Waiter(Arc<InflightEntry>),
    /// This thread claimed the slot and must perform the physical read.
    Leader(Arc<InflightEntry>),
}

/// A lock-striped CLOCK buffer cache over one [`FileManager`].
pub struct BufferCache {
    manager: Arc<FileManager>,
    stats: Arc<IoStats>,
    capacity: usize,
    readahead_pages: usize,
    shards: Vec<Shard>,
    /// One entry per page key currently being read from disk (see the
    /// module docs, "Request coalescing").
    inflight: OrderedMutex<HashMap<(FileId, u64), Arc<InflightEntry>>>,
}

impl BufferCache {
    /// Creates a cache of `capacity` frames (each [`PAGE_SIZE`] bytes) over
    /// `manager`, with default sharding and readahead. A capacity of 0
    /// disables caching (every read is physical).
    pub fn new(manager: Arc<FileManager>, capacity: usize) -> Arc<Self> {
        Self::with_options(manager, CacheOptions::with_capacity(capacity))
    }

    /// Creates a cache with explicit shard/readahead configuration.
    pub fn with_options(manager: Arc<FileManager>, opts: CacheOptions) -> Arc<Self> {
        let stats = Arc::clone(manager.stats());
        let capacity = opts.capacity;
        let n = if opts.shards > 0 { opts.shards } else { default_shards() };
        let n = n.min(capacity.max(1)).max(1);
        // Split the budget; early shards absorb the remainder so the per-
        // shard capacities sum exactly to `capacity`.
        let (base, rem) = (capacity / n, capacity % n);
        let shards = (0..n).map(|i| Shard::new(base + usize::from(i < rem))).collect();
        Arc::new(BufferCache {
            manager,
            stats,
            capacity,
            readahead_pages: opts.readahead_pages,
            shards,
            inflight: OrderedMutex::new("cache_inflight", HashMap::new()),
        })
    }

    /// The underlying file manager.
    pub fn manager(&self) -> &Arc<FileManager> {
        &self.manager
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Frame budget in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &(FileId, u64)) -> &Shard {
        // Odd-constant multiplicative mix: consecutive pages of one file
        // land on distinct shards, different files are decorrelated.
        let h = (key.0 .0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ key.1.wrapping_mul(0xD1B5_4A32_D192_ED03);
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Reads a page through the cache. Concurrent misses for the same page
    /// coalesce onto one physical read (see the module docs).
    pub fn get(&self, file: FileId, page_no: u64) -> Result<Arc<Vec<u8>>> {
        if self.capacity == 0 {
            self.stats.count_cache_miss();
            return Ok(Arc::new(self.manager.read_page(file, page_no)?));
        }
        let key = (file, page_no);
        let shard = self.shard_for(&key);
        if let Some(data) = shard.lookup(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.stats.count_cache_hit();
            return Ok(data);
        }
        match self.inflight_role(key, shard) {
            InflightRole::Hit(data) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.count_cache_hit();
                Ok(data)
            }
            InflightRole::Waiter(entry) => self.wait_coalesced(key, shard, &entry),
            InflightRole::Leader(entry) => {
                // The one physical read for this key, outside every lock.
                let loaded = self.manager.read_page(file, page_no).and_then(|buf| {
                    let data = Arc::new(buf);
                    let inserted = self.install(key, Arc::clone(&data), false)?;
                    Ok((data, inserted))
                });
                self.finish_lead(key, shard, &entry, loaded)
            }
        }
    }

    /// Classifies a missing-page request against the in-flight-load map.
    /// The shard is re-probed *under* the map lock so that a frame installed
    /// by a just-retired leader is seen as a plain hit instead of spawning a
    /// duplicate read.
    fn inflight_role(&self, key: (FileId, u64), shard: &Shard) -> InflightRole {
        let mut map = self.inflight.lock(); // xlint: lock(cache_inflight)
        if let Some(entry) = map.get(&key) {
            return InflightRole::Waiter(Arc::clone(entry));
        }
        if let Some(data) = shard.lookup(&key) {
            return InflightRole::Hit(data);
        }
        let entry = Arc::new(InflightEntry::new());
        map.insert(key, Arc::clone(&entry));
        InflightRole::Leader(entry)
    }

    /// Waiter side of a coalesced load: park on the leader's entry, book the
    /// coalesced wait, and share its frame — or surface its failure typed.
    fn wait_coalesced( // xlint: allow(blocking, "single-loader coalescing design; see CoalescedEntry::wait")
        &self,
        key: (FileId, u64),
        shard: &Shard,
        entry: &InflightEntry,
    ) -> Result<Arc<Vec<u8>>> {
        shard.coalesced_waits.fetch_add(1, Ordering::Relaxed);
        self.stats.count_coalesced_wait();
        match entry.wait() {
            Ok(data) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.count_cache_hit();
                Ok(data)
            }
            Err(cause) => Err(StorageError::CoalescedLoad { file: key.0, page: key.1, cause }),
        }
    }

    /// Leader side epilogue: retire the in-flight slot, publish the outcome
    /// to parked waiters, and book the miss (or the lost-install hit). The
    /// slot is retired *before* publishing so that any retry triggered by a
    /// published failure opens a fresh slot instead of re-joining this one.
    fn finish_lead(
        &self,
        key: (FileId, u64),
        shard: &Shard,
        entry: &InflightEntry,
        loaded: Result<(Arc<Vec<u8>>, bool)>,
    ) -> Result<Arc<Vec<u8>>> {
        {
            let mut map = self.inflight.lock(); // xlint: lock(cache_inflight)
            map.remove(&key);
        }
        match loaded {
            Ok((data, inserted)) => {
                // Insert-side-wins accounting: the miss belongs to whoever
                // actually inserted the frame. Losing the install race (a
                // racing `put`, or readahead from another file scan) books
                // this access as a hit, and the resident frame — which may
                // carry writes newer than our disk read — is handed out.
                let data = if inserted {
                    shard.misses.fetch_add(1, Ordering::Relaxed);
                    self.stats.count_cache_miss();
                    data
                } else {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.count_cache_hit();
                    shard.lookup(&key).unwrap_or(data)
                };
                entry.resolve(LoadState::Ready(Arc::clone(&data)));
                Ok(data)
            }
            Err(e) => {
                entry.resolve(LoadState::Failed(e.to_string()));
                Err(e)
            }
        }
    }

    /// Page keys currently being read from disk (diagnostic; races by
    /// nature, but quiescent callers can assert the map drained).
    pub fn inflight_loads(&self) -> usize {
        let map = self.inflight.lock(); // xlint: lock(cache_inflight)
        map.len()
    }

    /// Reads a page on a *sequential* scan path. A hit behaves like
    /// [`BufferCache::get`]; a miss fetches a batch of up to
    /// `readahead_pages` contiguous pages (clamped to the file end and the
    /// frame budget) in one physical operation and installs them all, so
    /// the scan's subsequent page fetches hit.
    pub fn get_sequential(&self, file: FileId, page_no: u64) -> Result<Arc<Vec<u8>>> {
        if self.capacity == 0 || self.readahead_pages <= 1 {
            return self.get(file, page_no);
        }
        let key = (file, page_no);
        let shard = self.shard_for(&key);
        if let Some(data) = shard.lookup(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.stats.count_cache_hit();
            return Ok(data);
        }
        // The demanded page coalesces exactly like `get`; only a leader
        // performs the batched read (waiters take no readahead of their own
        // — the leader's batch covers the range they were scanning).
        match self.inflight_role(key, shard) {
            InflightRole::Hit(data) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.count_cache_hit();
                Ok(data)
            }
            InflightRole::Waiter(entry) => self.wait_coalesced(key, shard, &entry),
            InflightRole::Leader(entry) => {
                let loaded = self.read_batch_and_install(file, page_no);
                self.finish_lead(key, shard, &entry, loaded)
            }
        }
    }

    /// Readahead leader body: one batched physical read, installing the
    /// demanded page plus up to `readahead_pages - 1` sequential neighbors.
    /// Returns the demanded page and whether this call inserted it.
    fn read_batch_and_install(
        &self,
        file: FileId,
        page_no: u64,
    ) -> Result<(Arc<Vec<u8>>, bool)> {
        let pages = self.manager.page_count(file)?;
        let n = self
            .readahead_pages
            .min(pages.saturating_sub(page_no) as usize)
            .min(self.capacity)
            .max(1);
        let mut batch = self.manager.read_pages(file, page_no, n)?;
        let mut first = None;
        for (i, buf) in batch.drain(..).enumerate() {
            let k = (file, page_no + i as u64);
            let data = Arc::new(buf);
            let inserted = self.install(k, Arc::clone(&data), false)?;
            if i == 0 {
                first = Some((data, inserted));
            } else if inserted {
                // Only pages this call actually brought into the cache
                // count as readahead; already-resident ones are no-ops.
                self.shard_for(&k).readaheads.fetch_add(1, Ordering::Relaxed);
                self.stats.count_readahead();
            }
        }
        first.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "readahead batch for file {:?} page {page_no} came back empty",
                file
            ))
        })
    }

    /// Writes a page through the cache (marks the frame dirty; the physical
    /// write happens on eviction or flush). `data` must be one page.
    pub fn put(&self, file: FileId, page_no: u64, data: Vec<u8>) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        if self.capacity == 0 {
            return self.manager.write_page(file, page_no, &data);
        }
        self.install((file, page_no), Arc::new(data), true)?;
        Ok(())
    }

    /// Installs a frame, returning `true` when the key was newly inserted
    /// and `false` when a frame was already resident. For a read-path
    /// install (`dirty == false`) an existing frame is left untouched —
    /// its data may carry writes newer than the caller's disk read.
    fn install(&self, key: (FileId, u64), data: Arc<Vec<u8>>, dirty: bool) -> Result<bool> {
        let shard = self.shard_for(&key);
        let inserted;
        // Collect evicted dirty pages and write them back outside the lock.
        type Writeback = ((FileId, u64), Arc<Vec<u8>>);
        let mut writebacks: Vec<Writeback> = Vec::new();
        {
            let mut inner = shard.inner.write(); // xlint: lock(cache_shard)
            if let Some(frame) = inner.frames.get_mut(&key) {
                if dirty {
                    frame.data = data;
                    frame.dirty = true;
                }
                frame.referenced.store(true, Ordering::Relaxed);
                inserted = false;
            } else {
                inserted = true;
                while inner.frames.len() >= shard.capacity && !inner.ring.is_empty() {
                    // CLOCK sweep: clear reference bits until a victim appears.
                    let idx = inner.hand % inner.ring.len();
                    let victim_key = inner.ring[idx];
                    let referenced = match inner.frames.get(&victim_key) {
                        Some(frame) => frame.referenced.swap(false, Ordering::Relaxed), // xlint: ordering(second-chance reference bit is a heuristic; eviction is guarded by the shard lock held here)
                        None => {
                            // Ring slot with no backing frame: self-heal by
                            // dropping the stale slot and continuing the sweep.
                            inner.ring.swap_remove(idx);
                            if idx >= inner.ring.len() {
                                inner.hand = 0;
                            }
                            continue;
                        }
                    };
                    if !referenced {
                        if let Some(frame) = inner.frames.remove(&victim_key) {
                            shard.evictions.fetch_add(1, Ordering::Relaxed);
                            self.stats.count_eviction();
                            if frame.dirty {
                                writebacks.push((victim_key, frame.data));
                            }
                        }
                        inner.ring.swap_remove(idx);
                        if idx >= inner.ring.len() {
                            inner.hand = 0;
                        }
                    } else {
                        inner.hand = (idx + 1) % inner.ring.len().max(1);
                    }
                }
                inner
                    .frames
                    .insert(key, Frame { data, dirty, referenced: AtomicBool::new(true) });
                inner.ring.push(key);
            }
        }
        for ((fid, page), data) in writebacks {
            self.manager.write_page(fid, page, &data)?;
        }
        Ok(inserted)
    }

    /// Writes back all dirty frames of `file` (without evicting them).
    pub fn flush_file(&self, file: FileId) -> Result<()> {
        for shard in &self.shards {
            let dirty: Vec<(u64, Arc<Vec<u8>>)> = {
                let mut inner = shard.inner.write(); // xlint: lock(cache_shard)
                inner
                    .frames
                    .iter_mut()
                    .filter(|((fid, _), f)| *fid == file && f.dirty)
                    .map(|((_, page), f)| {
                        f.dirty = false;
                        (*page, Arc::clone(&f.data))
                    })
                    .collect()
            };
            for (page, data) in dirty {
                self.manager.write_page(file, page, &data)?;
            }
        }
        self.manager.sync(file)?;
        Ok(())
    }

    /// Drops all frames of `file`. Dirty frames of a dropped file are
    /// discarded by design. Concurrent readers may still hold page `Arc`s —
    /// eviction merely drops the cache's reference (see the module docs).
    pub fn evict_file(&self, file: FileId) {
        for shard in &self.shards {
            let mut inner = shard.inner.write(); // xlint: lock(cache_shard)
            inner.frames.retain(|(fid, _), _| *fid != file);
            inner.ring.retain(|(fid, _)| *fid != file);
            inner.hand = 0;
        }
    }

    /// Like [`BufferCache::evict_file`], but marks a *component close*: the
    /// file is being retired for good (LSM merge/retirement), so no reader
    /// may still hold any of its pages. In debug builds a page whose `Arc`
    /// strong count exceeds the cache's own reference is a pin leak and
    /// panics; release builds behave exactly like `evict_file`.
    pub fn close_file(&self, file: FileId) {
        for shard in &self.shards {
            let mut inner = shard.inner.write(); // xlint: lock(cache_shard)
            #[cfg(debug_assertions)]
            assert_no_pins(
                inner.frames.iter().filter(|((fid, _), _)| *fid == file),
                "component close (close_file)",
            );
            inner.frames.retain(|(fid, _), _| *fid != file);
            inner.ring.retain(|(fid, _)| *fid != file);
            inner.hand = 0;
        }
    }

    /// Pages currently pinned outside the cache (`Arc` strong count above
    /// the cache's own reference), with their pin counts. Debug/diagnostic.
    pub fn outstanding_pins(&self) -> Vec<((FileId, u64), usize)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let inner = shard.inner.read(); // xlint: lock(cache_shard)
            for (key, frame) in inner.frames.iter() {
                let pins = Arc::strong_count(&frame.data).saturating_sub(1);
                if pins > 0 {
                    out.push((*key, pins));
                }
            }
        }
        out.sort();
        out
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.inner.read().frames.len()).sum()
    }

    /// Per-shard counter snapshot (hit/miss/eviction/readahead, residency).
    pub fn shard_snapshots(&self) -> Vec<CacheShardSnapshot> {
        self.shards
            .iter()
            .map(|s| CacheShardSnapshot {
                capacity: s.capacity,
                resident: s.inner.read().frames.len(),
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
                readaheads: s.readaheads.load(Ordering::Relaxed),
                coalesced_waits: s.coalesced_waits.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// Debug-build pin-leak check: every resident frame's `Arc` must be held by
/// the cache alone. Skipped while unwinding so a test failure does not turn
/// into a double panic (abort).
#[cfg(debug_assertions)]
fn assert_no_pins<'a>(
    frames: impl Iterator<Item = (&'a (FileId, u64), &'a Frame)>,
    when: &str,
) {
    if std::thread::panicking() {
        return;
    }
    let leaked: Vec<String> = frames
        .filter(|(_, f)| Arc::strong_count(&f.data) > 1)
        .map(|(k, f)| {
            format!("file {:?} page {} ({} pins)", k.0, k.1, Arc::strong_count(&f.data) - 1)
        })
        .collect();
    assert!(
        leaked.is_empty(),
        "buffer pin leak at {when}: {} page(s) still pinned outside the cache: [{}]",
        leaked.len(),
        leaked.join(", ")
    );
}

/// Cache-drop end of the pin-leak protocol: when the cache itself is torn
/// down, no page may still be referenced outside it (debug builds).
impl Drop for BufferCache {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        for shard in &self.shards {
            let inner = shard.inner.read(); // xlint: lock(cache_shard)
            assert_no_pins(inner.frames.iter(), "cache drop");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn setup(capacity: usize) -> (Arc<BufferCache>, Arc<FileManager>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        let cache = BufferCache::new(Arc::clone(&fm), capacity);
        (cache, fm, dir)
    }

    fn setup_with(opts: CacheOptions) -> (Arc<BufferCache>, Arc<FileManager>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        let cache = BufferCache::with_options(Arc::clone(&fm), opts);
        (cache, fm, dir)
    }

    fn make_file_named(fm: &Arc<FileManager>, name: &str, pages: u8) -> FileId {
        let id = fm.create(name).unwrap();
        for i in 0..pages {
            let mut p = vec![0u8; PAGE_SIZE];
            p[0] = i;
            fm.append_page(id, &p).unwrap();
        }
        id
    }

    fn make_file(fm: &Arc<FileManager>, pages: u8) -> FileId {
        make_file_named(fm, "f.pf", pages)
    }

    #[test]
    fn hits_avoid_physical_reads() {
        let (cache, fm, _d) = setup(4);
        let id = make_file(&fm, 2);
        fm.stats().reset();
        assert_eq!(cache.get(id, 0).unwrap()[0], 0);
        assert_eq!(cache.get(id, 0).unwrap()[0], 0);
        assert_eq!(cache.get(id, 1).unwrap()[0], 1);
        assert_eq!(fm.stats().physical_reads(), 2, "two misses");
        assert_eq!(fm.stats().cache_hits(), 1);
    }

    #[test]
    fn eviction_bounds_residency() {
        let (cache, fm, _d) = setup(2);
        let id = make_file(&fm, 6);
        for p in 0..6 {
            cache.get(id, p).unwrap();
        }
        assert!(cache.resident() <= 2);
        assert!(fm.stats().evictions() >= 4);
    }

    #[test]
    fn clock_keeps_hot_page() {
        // One shard with room for two pages: the CLOCK second chance must
        // keep the re-referenced page over the one-touch scan pages.
        let (cache, fm, _d) =
            setup_with(CacheOptions { capacity: 2, shards: 1, readahead_pages: 0 });
        let id = make_file(&fm, 4);
        cache.get(id, 0).unwrap();
        for p in 1..4 {
            cache.get(id, p).unwrap();
            cache.get(id, 0).unwrap(); // keep page 0 hot
        }
        fm.stats().reset();
        cache.get(id, 0).unwrap();
        assert_eq!(fm.stats().physical_reads(), 0, "hot page stayed resident");
    }

    #[test]
    fn dirty_writeback_on_eviction_and_flush() {
        // One shard so eviction pressure deterministically reaches the
        // dirty frame regardless of how keys hash across stripes.
        let (cache, fm, _d) =
            setup_with(CacheOptions { capacity: 2, shards: 1, readahead_pages: 0 });
        let id = make_file(&fm, 1);
        // make the file writable again for the test: create a fresh one
        let id2 = fm.create("mut.pf").unwrap();
        fm.append_page(id2, &vec![0u8; PAGE_SIZE]).unwrap();
        let mut p = vec![0u8; PAGE_SIZE];
        p[7] = 99;
        cache.put(id2, 0, p).unwrap();
        // not yet on disk
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 0);
        cache.flush_file(id2).unwrap();
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 99);
        // eviction writeback: dirty again, then flood the cache
        let mut p2 = vec![0u8; PAGE_SIZE];
        p2[7] = 123;
        cache.put(id2, 0, p2).unwrap();
        cache.get(id, 0).unwrap();
        let id3 = make_file_named(&fm, "g.pf", 3);
        for i in 0..3 {
            cache.get(id3, i).unwrap();
        }
        assert_eq!(fm.read_page(id2, 0).unwrap()[7], 123, "evicted dirty page written back");
    }

    #[test]
    fn zero_capacity_is_uncached() {
        let (cache, fm, _d) = setup(0);
        let id = make_file(&fm, 1);
        fm.stats().reset();
        cache.get(id, 0).unwrap();
        cache.get(id, 0).unwrap();
        assert_eq!(fm.stats().physical_reads(), 2);
        assert_eq!(fm.stats().cache_hits(), 0);
    }

    #[test]
    fn evict_file_drops_frames() {
        let (cache, fm, _d) = setup(8);
        let id = make_file(&fm, 3);
        for p in 0..3 {
            cache.get(id, p).unwrap();
        }
        assert_eq!(cache.resident(), 3);
        cache.evict_file(id);
        assert_eq!(cache.resident(), 0);
    }

    #[test]
    fn sharding_splits_budget_exactly() {
        let (cache, _fm, _d) = setup(10);
        assert_eq!(cache.shard_count(), default_shards().min(10));
        let caps: usize = cache.shard_snapshots().iter().map(|s| s.capacity).sum();
        assert_eq!(caps, 10, "per-shard capacities sum to the budget");
        // tiny budgets clamp the stripe count to at most the page budget
        let (small, _fm2, _d2) = setup(2);
        assert_eq!(small.shard_count(), default_shards().min(2));
    }

    #[test]
    fn per_shard_counters_account_for_all_traffic() {
        let (cache, fm, _d) = setup(16);
        let id = make_file(&fm, 8);
        for p in 0..8 {
            cache.get(id, p).unwrap();
        }
        for p in 0..8 {
            cache.get(id, p).unwrap();
        }
        let snaps = cache.shard_snapshots();
        let hits: u64 = snaps.iter().map(|s| s.hits).sum();
        let misses: u64 = snaps.iter().map(|s| s.misses).sum();
        assert_eq!(hits, fm.stats().cache_hits(), "shard hit counters match global");
        assert_eq!(misses, fm.stats().cache_misses(), "shard miss counters match global");
        assert_eq!(hits, 8);
        assert_eq!(misses, 8);
    }

    #[test]
    fn sequential_readahead_batches_misses() {
        let (cache, fm, _d) =
            setup_with(CacheOptions { capacity: 64, shards: 4, readahead_pages: 4 });
        let id = make_file(&fm, 8);
        fm.stats().reset();
        for p in 0..8 {
            cache.get_sequential(id, p).unwrap();
        }
        // Two batches of 4: two demand misses, six readahead pages, all
        // later fetches hit.
        assert_eq!(fm.stats().cache_misses(), 2);
        assert_eq!(fm.stats().cache_hits(), 6);
        assert_eq!(fm.stats().readaheads(), 6);
        assert_eq!(fm.stats().physical_reads(), 8, "every page read exactly once");
        let ra: u64 = cache.shard_snapshots().iter().map(|s| s.readaheads).sum();
        assert_eq!(ra, 6, "per-shard readahead counters match global");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "pin tracking is debug-only")]
    fn pin_leak_trips_on_component_close() {
        let r = std::panic::catch_unwind(|| {
            let (cache, fm, _d) = setup(4);
            let id = make_file(&fm, 2);
            let _pinned = cache.get(id, 0).unwrap();
            cache.close_file(id); // page 0 still pinned -> leak
        });
        let err = r.expect_err("leaked pin must trip the close-time assert");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string());
        assert!(msg.contains("buffer pin leak"), "{msg}");
        assert!(msg.contains("component close"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "pin tracking is debug-only")]
    fn pin_leak_trips_on_cache_drop() {
        let (cache, fm, _d) = setup(4);
        let id = make_file(&fm, 1);
        let pinned = cache.get(id, 0).unwrap();
        assert_eq!(cache.outstanding_pins(), vec![((id, 0), 1)]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || drop(cache)));
        assert!(r.is_err(), "dropping the cache with a pinned page must panic");
        drop(pinned);
    }

    #[test]
    fn released_pins_do_not_trip() {
        let (cache, fm, _d) = setup(4);
        let id = make_file(&fm, 2);
        {
            let _page = cache.get(id, 0).unwrap();
        }
        assert!(cache.outstanding_pins().is_empty());
        cache.close_file(id); // no outstanding pins: fine
    }

    #[test]
    fn readahead_clamps_at_file_end() {
        let (cache, fm, _d) =
            setup_with(CacheOptions { capacity: 64, shards: 2, readahead_pages: 16 });
        let id = make_file(&fm, 3);
        fm.stats().reset();
        let page = cache.get_sequential(id, 2).unwrap();
        assert_eq!(page[0], 2);
        assert_eq!(fm.stats().physical_reads(), 1, "no read past the last page");
    }
}
