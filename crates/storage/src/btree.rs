//! Immutable, bulk-loaded on-disk B+ trees.
//!
//! Every LSM disk component is one of these: the memory component is flushed
//! (or several components merged) by streaming *sorted* key/value pairs into
//! a [`BTreeBuilder`], which packs leaves left-to-right and then builds the
//! internal levels — exactly the "well-known efficient B+ tree load" Goetz
//! Graefe contrasts with hashing in the paper's §V-C anecdote (experiment E3).
//!
//! ## File layout (append-only, trailer-addressed)
//!
//! ```text
//! [leaf pages...][internal level 1...][...][root page][bloom pages...][trailer page]
//! ```
//!
//! The trailer (last page) records the root page, entry count, bloom-filter
//! location, and min/max keys; readers open the file by reading the trailer.
//! Keys are composite ADM keys encoded by `asterix_adm::binary::encode_key`
//! and ordered by `compare_keys`.

use crate::bloom::BloomFilter;
use crate::cache::BufferCache;
use crate::error::{Result, StorageError};
use crate::io::{FileId, PageFileWriter, PAGE_SIZE};
use crate::le;
use asterix_adm::binary::compare_keys;
use std::cmp::Ordering;
use std::ops::Bound;
use std::sync::Arc;

const MAGIC: u32 = 0x4254_5245; // "BTRE"
const PAGE_HEADER: usize = 11; // is_leaf u8 + n u16 + next_leaf u64
const NO_NEXT: u64 = u64::MAX;

/// Maximum key+value size storable in one page.
pub const MAX_ENTRY: usize = PAGE_SIZE - PAGE_HEADER - 2 /* offset */ - 4 /* lens */;

// ---------------------------------------------------------------------------
// Page construction & parsing
// ---------------------------------------------------------------------------

struct PageBuilder {
    is_leaf: bool,
    offsets: Vec<u16>,
    payload: Vec<u8>,
}

impl PageBuilder {
    fn new(is_leaf: bool) -> Self {
        PageBuilder { is_leaf, offsets: Vec::new(), payload: Vec::new() }
    }

    fn used(&self) -> usize {
        PAGE_HEADER + self.offsets.len() * 2 + self.payload.len()
    }

    fn fits(&self, key: &[u8], val_len: usize) -> bool {
        self.used() + 2 + 4 + key.len() + val_len <= PAGE_SIZE
    }

    fn push(&mut self, key: &[u8], val: &[u8]) {
        let off = (PAGE_HEADER + self.payload.len()) as u16; // payload-relative fixup at emit
        self.offsets.push(off);
        self.payload.extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.payload.extend_from_slice(key);
        self.payload.extend_from_slice(&(val.len() as u16).to_le_bytes());
        self.payload.extend_from_slice(val);
    }

    fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Emits the page bytes; `next_leaf` is the forward sibling pointer.
    fn emit(&self, next_leaf: u64) -> Vec<u8> {
        let n = self.offsets.len();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = self.is_leaf as u8;
        page[1..3].copy_from_slice(&(n as u16).to_le_bytes());
        page[3..11].copy_from_slice(&next_leaf.to_le_bytes());
        let table = PAGE_HEADER;
        let data_start = table + 2 * n;
        for (i, off) in self.offsets.iter().enumerate() {
            // stored offsets are absolute within the page
            let abs = (data_start + (*off as usize - PAGE_HEADER)) as u16;
            page[table + 2 * i..table + 2 * i + 2].copy_from_slice(&abs.to_le_bytes());
        }
        page[data_start..data_start + self.payload.len()].copy_from_slice(&self.payload);
        page
    }
}

/// Zero-copy view over a tree page.
pub(crate) struct PageView<'a> {
    page: &'a [u8],
}

impl<'a> PageView<'a> {
    pub(crate) fn new(page: &'a [u8]) -> Self {
        PageView { page }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.page[0] == 1
    }

    pub(crate) fn len(&self) -> usize {
        le::u16_at(self.page, 1) as usize
    }

    pub(crate) fn next_leaf(&self) -> Option<u64> {
        let v = le::u64_at(self.page, 3);
        (v != NO_NEXT).then_some(v)
    }

    /// Entry `i`. The offset table and the lengths inside it come off disk,
    /// so a corrupt page surfaces as `StorageError::Corrupt`, not a panic.
    pub(crate) fn entry(&self, i: usize) -> Result<(&'a [u8], &'a [u8])> {
        let off = le::try_u16_at(self.page, PAGE_HEADER + 2 * i)? as usize;
        let klen = le::try_u16_at(self.page, off)? as usize;
        let key = le::try_bytes_at(self.page, off + 2, klen)?;
        let voff = off + 2 + klen;
        let vlen = le::try_u16_at(self.page, voff)? as usize;
        Ok((key, le::try_bytes_at(self.page, voff + 2, vlen)?))
    }

    /// Index of the first entry with key >= target (lower bound).
    pub(crate) fn lower_bound(&self, target: &[u8]) -> Result<usize> {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if compare_keys(self.entry(mid)?.0, target) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Index of the child to descend into for `target` (internal pages):
    /// the rightmost entry with key <= target, clamped to 0.
    fn child_index(&self, target: &[u8]) -> Result<usize> {
        let lb = self.lower_bound(target)?;
        if lb < self.len() && compare_keys(self.entry(lb)?.0, target) == Ordering::Equal {
            Ok(lb)
        } else {
            Ok(lb.saturating_sub(1))
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Streams sorted `(key, value)` pairs into a new B+ tree component file.
pub struct BTreeBuilder {
    writer: PageFileWriter,
    leaf: PageBuilder,
    /// First key of each completed page at the level below, with its page no.
    pending_level: Vec<(Vec<u8>, u64)>,
    last_key: Option<Vec<u8>>,
    first_key: Option<Vec<u8>>,
    entry_count: u64,
    bloom: Option<BloomFilter>,
    leaves_written: u64,
}

impl BTreeBuilder {
    /// Starts building into `writer`. When `expected_keys > 0` a bloom filter
    /// sized for that many keys is attached to the component.
    pub fn new(writer: PageFileWriter, expected_keys: usize) -> Self {
        BTreeBuilder {
            writer,
            leaf: PageBuilder::new(true),
            pending_level: Vec::new(),
            last_key: None,
            first_key: None,
            entry_count: 0,
            bloom: (expected_keys > 0).then(|| BloomFilter::new(expected_keys, 10)),
            leaves_written: 0,
        }
    }

    /// Appends the next pair; keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() + value.len() > MAX_ENTRY {
            return Err(StorageError::RecordTooLarge {
                size: key.len() + value.len(),
                max: MAX_ENTRY,
            });
        }
        if let Some(last) = &self.last_key {
            if compare_keys(last, key) != Ordering::Less {
                return Err(StorageError::Invalid(
                    "bulk-load keys must be strictly increasing".into(),
                ));
            }
        }
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        if !self.leaf.fits(key, value.len()) {
            self.finish_leaf()?;
        }
        if self.leaf.is_empty() {
            self.pending_level.push((key.to_vec(), self.leaf_page_no()));
        }
        self.leaf.push(key, value);
        if let Some(b) = &mut self.bloom {
            b.insert(key);
        }
        self.last_key = Some(key.to_vec());
        self.entry_count += 1;
        Ok(())
    }

    fn leaf_page_no(&self) -> u64 {
        self.leaves_written
    }

    /// Writes the current leaf. Leaves occupy pages `0..n_leaves` in order, so
    /// the next-pointer is simply the following page number; scans detect the
    /// end of the leaf level by landing on a non-leaf page (internal pages,
    /// bloom pages, and the trailer all start with a byte != 1).
    fn finish_leaf(&mut self) -> Result<()> {
        if self.leaf.is_empty() {
            return Ok(());
        }
        let page = std::mem::replace(&mut self.leaf, PageBuilder::new(true));
        self.leaves_written += 1;
        self.writer.append(&page.emit(self.leaves_written))?;
        Ok(())
    }

    /// Finalizes the tree: writes leaves, internal levels, bloom, trailer.
    /// Returns the opened component description.
    pub fn finish(mut self) -> Result<BuiltTree> {
        self.finish_leaf()?;
        let n_leaves = self.leaves_written;
        // Build internal levels bottom-up.
        let mut level = std::mem::take(&mut self.pending_level);
        let mut root_page: u64 = 0; // single-leaf or empty tree roots at page 0
        let mut next_page_no = n_leaves;
        while level.len() > 1 {
            let mut upper: Vec<(Vec<u8>, u64)> = Vec::new();
            let mut pb = PageBuilder::new(false);
            let mut first_of_page: Option<Vec<u8>> = None;
            for (key, child) in level {
                let child_bytes = child.to_le_bytes();
                if !pb.fits(&key, child_bytes.len()) {
                    let emitted = pb.emit(NO_NEXT);
                    self.writer.append(&emitted)?;
                    let first = first_of_page.take().ok_or_else(|| {
                        StorageError::Invalid(
                            "internal page emitted without a first key".into(),
                        )
                    })?;
                    upper.push((first, next_page_no));
                    next_page_no += 1;
                    pb = PageBuilder::new(false);
                }
                if pb.is_empty() {
                    first_of_page = Some(key.clone());
                }
                pb.push(&key, &child_bytes);
            }
            if !pb.is_empty() {
                let emitted = pb.emit(NO_NEXT);
                self.writer.append(&emitted)?;
                let first = first_of_page.take().ok_or_else(|| {
                    StorageError::Invalid(
                        "internal page emitted without a first key".into(),
                    )
                })?;
                upper.push((first, next_page_no));
                next_page_no += 1;
            }
            level = upper;
        }
        if let Some((_, page)) = level.first() {
            root_page = *page;
        }
        // Bloom pages.
        let bloom_bytes = self.bloom.as_ref().map(|b| b.to_bytes()).unwrap_or_default();
        let bloom_start = next_page_no;
        let mut bloom_pages = 0u32;
        for chunk in bloom_bytes.chunks(PAGE_SIZE) {
            let mut page = vec![0u8; PAGE_SIZE];
            page[..chunk.len()].copy_from_slice(chunk);
            self.writer.append(&page)?;
            bloom_pages += 1;
        }
        // Trailer.
        let min_key = self.first_key.clone().unwrap_or_default();
        let max_key = self.last_key.clone().unwrap_or_default();
        let mut trailer = vec![0u8; PAGE_SIZE];
        let mut w = 0usize;
        let put = |bytes: &[u8], trailer: &mut Vec<u8>, w: &mut usize| {
            trailer[*w..*w + bytes.len()].copy_from_slice(bytes);
            *w += bytes.len();
        };
        put(&MAGIC.to_le_bytes(), &mut trailer, &mut w);
        put(&root_page.to_le_bytes(), &mut trailer, &mut w);
        put(&self.entry_count.to_le_bytes(), &mut trailer, &mut w);
        put(&n_leaves.to_le_bytes(), &mut trailer, &mut w);
        put(&bloom_start.to_le_bytes(), &mut trailer, &mut w);
        put(&bloom_pages.to_le_bytes(), &mut trailer, &mut w);
        put(&(bloom_bytes.len() as u32).to_le_bytes(), &mut trailer, &mut w);
        put(&(min_key.len() as u32).to_le_bytes(), &mut trailer, &mut w);
        put(&min_key, &mut trailer, &mut w);
        put(&(max_key.len() as u32).to_le_bytes(), &mut trailer, &mut w);
        put(&max_key, &mut trailer, &mut w);
        self.writer.append(&trailer)?;
        let file = self.writer.finish()?;
        Ok(BuiltTree {
            file,
            root_page,
            entry_count: self.entry_count,
            bloom: self.bloom,
            min_key,
            max_key,
        })
    }
}

/// Result of a bulk load: everything needed to construct a [`DiskBTree`].
pub struct BuiltTree {
    pub file: FileId,
    pub root_page: u64,
    pub entry_count: u64,
    pub bloom: Option<BloomFilter>,
    pub min_key: Vec<u8>,
    pub max_key: Vec<u8>,
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A read-only handle on a B+ tree component; all page reads go through the
/// buffer cache.
pub struct DiskBTree {
    cache: Arc<BufferCache>,
    file: FileId,
    root_page: u64,
    entry_count: u64,
    bloom: Option<BloomFilter>,
    min_key: Vec<u8>,
    max_key: Vec<u8>,
}

impl DiskBTree {
    /// Wraps a freshly built tree.
    pub fn from_built(cache: Arc<BufferCache>, built: BuiltTree) -> Self {
        DiskBTree {
            cache,
            file: built.file,
            root_page: built.root_page,
            entry_count: built.entry_count,
            bloom: built.bloom,
            min_key: built.min_key,
            max_key: built.max_key,
        }
    }

    /// Opens an existing component file by reading its trailer page.
    pub fn open(cache: Arc<BufferCache>, file: FileId) -> Result<Self> {
        let n_pages = cache.manager().page_count(file)?;
        if n_pages == 0 {
            return Err(StorageError::Corrupt("empty btree file".into()));
        }
        let trailer = cache.manager().read_page(file, n_pages - 1)?;
        let magic = le::try_u32_at(&trailer, 0)?;
        if magic != MAGIC {
            return Err(StorageError::Corrupt("bad btree magic".into()));
        }
        let root_page = le::try_u64_at(&trailer, 4)?;
        let entry_count = le::try_u64_at(&trailer, 12)?;
        let _n_leaves = le::try_u64_at(&trailer, 20)?;
        let bloom_start = le::try_u64_at(&trailer, 28)?;
        let bloom_pages = le::try_u32_at(&trailer, 36)?;
        let bloom_len = le::try_u32_at(&trailer, 40)? as usize;
        let min_len = le::try_u32_at(&trailer, 44)? as usize;
        let min_key = le::try_bytes_at(&trailer, 48, min_len)?.to_vec();
        let mut r = 48 + min_len;
        let max_len = le::try_u32_at(&trailer, r)? as usize;
        r += 4;
        let max_key = le::try_bytes_at(&trailer, r, max_len)?.to_vec();
        let bloom = if bloom_pages > 0 {
            let mut bytes = Vec::with_capacity(bloom_len);
            for p in 0..bloom_pages as u64 {
                let page = cache.manager().read_page(file, bloom_start + p)?;
                bytes.extend_from_slice(&page);
            }
            bytes.truncate(bloom_len);
            Some(
                BloomFilter::from_bytes(&bytes)
                    .ok_or_else(|| StorageError::Corrupt("bad bloom filter".into()))?,
            )
        } else {
            None
        };
        Ok(DiskBTree { cache, file, root_page, entry_count, bloom, min_key, max_key })
    }

    /// The component's file id.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Smallest key (empty for an empty tree).
    pub fn min_key(&self) -> &[u8] {
        &self.min_key
    }

    /// Largest key.
    pub fn max_key(&self) -> &[u8] {
        &self.max_key
    }

    /// True when the bloom filter (if any) admits the key.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.as_ref().is_none_or(|b| b.may_contain(key))
    }

    fn leaf_for(&self, key: &[u8]) -> Result<(Arc<Vec<u8>>, u64)> {
        let mut page_no = self.root_page;
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let view = PageView::new(&page);
            if view.is_leaf() {
                return Ok((page, page_no));
            }
            let idx = view.child_index(key)?;
            let (_, child) = view.entry(idx)?;
            page_no = u64::from_le_bytes(child.try_into().map_err(|_| {
                StorageError::Corrupt("internal entry is not a child pointer".into())
            })?);
        }
    }

    /// Point lookup. Consults the bloom filter first.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if self.entry_count == 0 || !self.may_contain(key) {
            return Ok(None);
        }
        if compare_keys(key, &self.min_key) == Ordering::Less
            || compare_keys(key, &self.max_key) == Ordering::Greater
        {
            return Ok(None);
        }
        let (page, _) = self.leaf_for(key)?;
        let view = PageView::new(&page);
        let idx = view.lower_bound(key)?;
        if idx < view.len() {
            let (k, v) = view.entry(idx)?;
            if compare_keys(k, key) == Ordering::Equal {
                return Ok(Some(v.to_vec()));
            }
        }
        Ok(None)
    }

    /// Range scan over `[lo, hi]` with the given bounds (`Bound::Unbounded`
    /// for open ends). Yields `(key, value)` pairs in key order.
    pub fn range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<Vec<u8>>,
    ) -> Result<BTreeRangeIter> {
        if self.entry_count == 0 {
            return Ok(BTreeRangeIter::empty());
        }
        let (page, page_no, idx) = match lo {
            Bound::Unbounded => {
                // descend to the leftmost leaf
                let mut page_no = self.root_page;
                loop {
                    let page = self.cache.get(self.file, page_no)?;
                    let view = PageView::new(&page);
                    if view.is_leaf() {
                        break (page, page_no, 0usize);
                    }
                    let (_, child) = view.entry(0)?;
                    page_no = u64::from_le_bytes(child.try_into().map_err(|_| {
                        StorageError::Corrupt(
                            "internal entry is not a child pointer".into(),
                        )
                    })?);
                }
            }
            Bound::Included(k) | Bound::Excluded(k) => {
                let (page, page_no) = self.leaf_for(k)?;
                let view = PageView::new(&page);
                let mut idx = view.lower_bound(k)?;
                if matches!(lo, Bound::Excluded(_))
                    && idx < view.len()
                    && compare_keys(view.entry(idx)?.0, k) == Ordering::Equal
                {
                    idx += 1;
                }
                (page, page_no, idx)
            }
        };
        Ok(BTreeRangeIter {
            tree: Some(TreeRef { cache: Arc::clone(&self.cache), file: self.file }),
            page: Some(page),
            page_no,
            idx,
            hi,
        })
    }

    /// Full scan in key order.
    pub fn scan(&self) -> Result<BTreeRangeIter> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }
}

struct TreeRef {
    cache: Arc<BufferCache>,
    file: FileId,
}

/// Iterator over a key range; yields `Result<(key, value)>`.
pub struct BTreeRangeIter {
    tree: Option<TreeRef>,
    page: Option<Arc<Vec<u8>>>,
    page_no: u64,
    idx: usize,
    hi: Bound<Vec<u8>>,
}

impl BTreeRangeIter {
    fn empty() -> Self {
        BTreeRangeIter { tree: None, page: None, page_no: 0, idx: 0, hi: Bound::Unbounded }
    }
}

impl Iterator for BTreeRangeIter {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let tree = self.tree.as_ref()?;
            let page = self.page.as_ref()?;
            let view = PageView::new(page);
            if self.idx >= view.len() {
                match view.next_leaf() {
                    None => {
                        self.page = None;
                        return None;
                    }
                    Some(next) => {
                        // Leaves are packed sequentially at the front of the
                        // file, so next-leaf fetches are the readahead path.
                        match tree.cache.get_sequential(tree.file, next) {
                            Ok(p) => {
                                // Leaves are packed first in the file, so the
                                // last leaf's next-pointer lands on a non-leaf
                                // page — that is the end of the scan.
                                if !PageView::new(&p).is_leaf() {
                                    self.page = None;
                                    return None;
                                }
                                self.page = Some(p);
                                self.page_no = next;
                                self.idx = 0;
                                continue;
                            }
                            Err(e) => {
                                self.page = None;
                                return Some(Err(e));
                            }
                        }
                    }
                }
            }
            let (k, v) = match view.entry(self.idx) {
                Ok(e) => e,
                Err(e) => {
                    self.page = None;
                    return Some(Err(e));
                }
            };
            // upper bound check
            let in_range = match &self.hi {
                Bound::Unbounded => true,
                Bound::Included(h) => compare_keys(k, h) != Ordering::Greater,
                Bound::Excluded(h) => compare_keys(k, h) == Ordering::Less,
            };
            if !in_range {
                self.page = None;
                return None;
            }
            let item = (k.to_vec(), v.to_vec());
            self.idx += 1;
            return Some(Ok(item));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;
    use asterix_adm::binary::encode_key;
    use asterix_adm::Value;

    fn setup(cache_pages: usize) -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, cache_pages), dir)
    }

    fn key(i: i64) -> Vec<u8> {
        encode_key(&[Value::Int(i)])
    }

    fn build(cache: &Arc<BufferCache>, name: &str, n: i64, bloom: bool) -> DiskBTree {
        let w = cache.manager().bulk_writer(name).unwrap();
        let mut b = BTreeBuilder::new(w, if bloom { n as usize } else { 0 });
        for i in 0..n {
            b.add(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        DiskBTree::from_built(Arc::clone(cache), b.finish().unwrap())
    }

    #[test]
    fn point_lookups() {
        let (cache, _d) = setup(64);
        let t = build(&cache, "t.btree", 10_000, true);
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.get(&key(0)).unwrap().unwrap(), b"value-0");
        assert_eq!(t.get(&key(9_999)).unwrap().unwrap(), b"value-9999");
        assert_eq!(t.get(&key(4_321)).unwrap().unwrap(), b"value-4321");
        assert!(t.get(&key(10_000)).unwrap().is_none());
        assert!(t.get(&key(-1)).unwrap().is_none());
    }

    #[test]
    fn full_scan_in_order() {
        let (cache, _d) = setup(64);
        let t = build(&cache, "t.btree", 5_000, false);
        let mut count = 0i64;
        for item in t.scan().unwrap() {
            let (k, v) = item.unwrap();
            assert_eq!(k, key(count));
            assert_eq!(v, format!("value-{count}").as_bytes());
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn range_scans() {
        let (cache, _d) = setup(64);
        let t = build(&cache, "t.btree", 1_000, false);
        let lo = key(100);
        let items: Vec<_> = t
            .range(Bound::Included(&lo), Bound::Included(key(110)))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items.len(), 11);
        assert_eq!(items[0].0, key(100));
        assert_eq!(items[10].0, key(110));
        // exclusive bounds
        let items: Vec<_> = t
            .range(Bound::Excluded(&lo), Bound::Excluded(key(110)))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(items.len(), 9);
        // unbounded high
        let n = t.range(Bound::Included(&key(990)), Bound::Unbounded).unwrap().count();
        assert_eq!(n, 10);
        // range starting between keys
        let t2_lo = key(-5);
        let n = t.range(Bound::Included(&t2_lo), Bound::Included(key(2))).unwrap().count();
        assert_eq!(n, 3);
    }

    #[test]
    fn empty_tree() {
        let (cache, _d) = setup(8);
        let t = build(&cache, "e.btree", 0, false);
        assert!(t.is_empty());
        assert!(t.get(&key(1)).unwrap().is_none());
        assert_eq!(t.scan().unwrap().count(), 0);
    }

    #[test]
    fn single_entry_tree() {
        let (cache, _d) = setup(8);
        let t = build(&cache, "s.btree", 1, true);
        assert_eq!(t.get(&key(0)).unwrap().unwrap(), b"value-0");
        assert!(t.get(&key(1)).unwrap().is_none());
    }

    #[test]
    fn reopen_from_disk() {
        let (cache, dir) = setup(64);
        {
            build(&cache, "r.btree", 2_000, true);
        }
        let fm2 = FileManager::new(dir.path(), IoStats::new()).unwrap();
        let cache2 = BufferCache::new(fm2, 64);
        let fid = cache2.manager().open("r.btree").unwrap();
        let t = DiskBTree::open(Arc::clone(&cache2), fid).unwrap();
        assert_eq!(t.len(), 2_000);
        assert_eq!(t.get(&key(1234)).unwrap().unwrap(), b"value-1234");
        assert!(t.get(&key(5555)).unwrap().is_none());
    }

    #[test]
    fn bloom_filter_skips_absent_keys_without_io() {
        let (cache, _d) = setup(64);
        let t = build(&cache, "b.btree", 10_000, true);
        // warm nothing; absent keys far outside should mostly be skipped by
        // the min/max check or bloom, costing no physical reads
        cache.stats().reset();
        for i in 20_000..20_100i64 {
            assert!(t.get(&key(i)).unwrap().is_none());
        }
        assert_eq!(cache.stats().physical_reads(), 0, "min/max short-circuit");
    }

    #[test]
    fn rejects_unsorted_input() {
        let (cache, _d) = setup(8);
        let w = cache.manager().bulk_writer("u.btree").unwrap();
        let mut b = BTreeBuilder::new(w, 0);
        b.add(&key(5), b"x").unwrap();
        assert!(b.add(&key(5), b"y").is_err(), "duplicate key");
        assert!(b.add(&key(4), b"z").is_err(), "descending key");
    }

    #[test]
    fn rejects_oversized_entry() {
        let (cache, _d) = setup(8);
        let w = cache.manager().bulk_writer("o.btree").unwrap();
        let mut b = BTreeBuilder::new(w, 0);
        let huge = vec![0u8; PAGE_SIZE];
        match b.add(&key(1), &huge) {
            Err(StorageError::RecordTooLarge { .. }) => {}
            other => panic!("expected RecordTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn string_and_composite_keys() {
        let (cache, _d) = setup(64);
        let w = cache.manager().bulk_writer("c.btree").unwrap();
        let mut b = BTreeBuilder::new(w, 100);
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for i in 0..100 {
            keys.push(encode_key(&[
                Value::from(format!("user{i:03}")),
                Value::Int(i),
            ]));
        }
        for k in &keys {
            b.add(k, b"v").unwrap();
        }
        let t = DiskBTree::from_built(Arc::clone(&cache), b.finish().unwrap());
        for k in &keys {
            assert!(t.get(k).unwrap().is_some());
        }
        // prefix range: all keys beginning with "user05"
        let lo = encode_key(&[Value::from("user050")]);
        let hi = encode_key(&[Value::from("user059"), Value::Int(i64::MAX)]);
        let n = t.range(Bound::Included(&lo), Bound::Included(hi)).unwrap().count();
        assert_eq!(n, 10);
    }
}
