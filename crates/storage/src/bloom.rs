//! Bloom filters for LSM disk components.
//!
//! Each disk component carries a bloom filter over its keys so point lookups
//! can skip components that certainly do not contain the key — essential when
//! a NoMerge-ish policy leaves many components (experiment E8 measures this).
//!
//! Classic double-hashing construction: k index probes derived from two
//! 64-bit hashes, `g_i(x) = h1(x) + i*h2(x)`.

use std::hash::Hasher;

/// A serializable bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
}

fn hash_pair(key: &[u8]) -> (u64, u64) {
    let mut h1 = std::collections::hash_map::DefaultHasher::new();
    h1.write(key);
    let a = h1.finish();
    let mut h2 = std::collections::hash_map::DefaultHasher::new();
    h2.write_u64(a ^ 0x9e37_79b9_7f4a_7c15);
    h2.write(key);
    let mut b = h2.finish();
    if b == 0 {
        b = 0x5851_f42d_4c95_7f2d; // h2 must be non-zero for double hashing
    }
    (a, b)
}

impl BloomFilter {
    /// Sizes a filter for `expected_keys` at roughly `bits_per_key` bits per
    /// key (10 bits/key ≈ 1% false-positive rate).
    pub fn new(expected_keys: usize, bits_per_key: usize) -> Self {
        let n_bits = ((expected_keys.max(1) * bits_per_key.max(1)) as u64).next_multiple_of(64);
        // optimal k = ln2 * bits/key
        let n_hashes = ((bits_per_key as f64) * std::f64::consts::LN_2).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0u64; (n_bits / 64) as usize],
            n_bits,
            n_hashes,
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.n_hashes {
            let bit = (h1.wrapping_add((i as u64).wrapping_mul(h2))) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// True when the key *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.n_hashes {
            let bit = (h1.wrapping_add((i as u64).wrapping_mul(h2))) % self.n_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serializes to bytes (stored in the component file's trailer pages).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.n_bits.to_le_bytes());
        out.extend_from_slice(&self.n_hashes.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        if buf.len() < 12 {
            return None;
        }
        let n_bits = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let n_hashes = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let n_words = (n_bits / 64) as usize;
        if n_bits % 64 != 0 || buf.len() < 12 + n_words * 8 || n_hashes == 0 {
            return None;
        }
        let bits = buf[12..12 + n_words * 8]
            .chunks_exact(8)
            .map(|c| crate::le::u64_at(c, 0))
            .collect();
        Some(BloomFilter { bits, n_bits, n_hashes })
    }

    /// Size of the serialized form in bytes.
    pub fn serialized_len(&self) -> usize {
        12 + self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_le_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = BloomFilter::new(10_000, 10);
        for i in 0..10_000u32 {
            f.insert(&i.to_le_bytes());
        }
        let mut fp = 0;
        let probes = 10_000u32;
        for i in probes..2 * probes {
            if f.may_contain(&i.to_le_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.05, "false-positive rate {rate} too high");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::new(100, 8);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.serialized_len());
        let back = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(f, back);
        assert!(BloomFilter::from_bytes(&bytes[..5]).is_none());
    }

    #[test]
    fn empty_filter_contains_nothing_surely() {
        let f = BloomFilter::new(10, 10);
        // an empty filter returns false for everything
        for i in 0..100u32 {
            assert!(!f.may_contain(&i.to_le_bytes()));
        }
    }
}
