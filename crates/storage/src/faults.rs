//! Deterministic fault injection for the storage stack.
//!
//! A [`FaultInjector`] is an optional companion of [`crate::io::FileManager`]
//! and [`crate::wal::WalWriter`]: every physical I/O operation (page read,
//! page write, WAL flush, fsync) consults it before touching the disk. The
//! injector can then
//!
//! * **crash** the process model after the Nth I/O operation — all later
//!   operations fail with [`StorageError::Injected`], exactly as if the
//!   process had died and the handle outlived it;
//! * make the crashing write **torn**: a random prefix of the requested
//!   bytes is persisted before the crash (a partially-written page, or a WAL
//!   flush cut mid-record);
//! * inject transient **short writes**: a prefix is persisted and the write
//!   reports failure, but the system survives;
//! * fail **fsync** — treated as a crash, because after a failed fsync the
//!   kernel may have dropped the dirty pages and no useful recovery is
//!   possible in-process (the "fsyncgate" lesson);
//! * flip a random **bit on reads**, silently, to exercise checksum paths.
//!
//! Every decision is drawn from one seeded [`SmallRng`] behind a mutex plus
//! a global operation counter, so a given `(seed, workload)` pair replays an
//! *identical* failure schedule — the recorded [`FaultEvent`] log is
//! byte-for-byte reproducible, which is what the crash-recovery property
//! tests assert. Determinism holds when the workload issues I/O in a
//! deterministic order (single-threaded harnesses).

use crate::error::{Result, StorageError};
use parking_lot::Mutex;
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for a [`FaultInjector`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the decision RNG; the whole schedule is a function of it.
    pub seed: u64,
    /// Crash once the global I/O-operation counter reaches this value
    /// (0 = crash on the very first operation). `None` = never crash.
    pub crash_after_ios: Option<u64>,
    /// When the crash lands on a write, allow a random prefix of it to be
    /// persisted (torn write) instead of dropping it entirely.
    pub torn_writes: bool,
    /// Probability that a surviving write persists only a prefix and
    /// reports failure (transient short write).
    pub short_write_prob: f64,
    /// Probability that an fsync fails; a failed fsync is sticky (crash).
    pub fsync_fail_prob: f64,
    /// Probability that a page read gets one bit flipped, silently.
    pub read_corrupt_prob: f64,
    /// Probability that a file delete fails (transient; the file survives).
    /// Exercises the LSM merge-retirement path, where a failed delete must
    /// be non-fatal cleanup, never data loss.
    pub delete_fail_prob: f64,
    /// Added latency per page read. Not a fault per se: stress tests use it
    /// to hold a physical read open long enough that racing requesters
    /// deterministically pile onto the cache's in-flight-load slot.
    pub read_delay: Option<std::time::Duration>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            crash_after_ios: None,
            torn_writes: true,
            short_write_prob: 0.0,
            fsync_fail_prob: 0.0,
            read_corrupt_prob: 0.0,
            delete_fail_prob: 0.0,
            read_delay: None,
        }
    }
}

/// One injected fault, recorded in schedule order. Two runs with the same
/// seed and workload produce identical event vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// The crash point fired at operation `op` while performing `target`.
    Crash { op: u64, target: String },
    /// The crashing write persisted `kept` of `requested` bytes.
    TornWrite { op: u64, target: String, kept: usize, requested: usize },
    /// A transient short write persisted `kept` of `requested` bytes.
    ShortWrite { op: u64, target: String, kept: usize, requested: usize },
    /// fsync failed (sticky: the injector is crashed afterwards).
    FsyncFailure { op: u64, target: String },
    /// Bit `bit` of byte `byte` of a read buffer was flipped.
    BitFlip { op: u64, target: String, byte: usize, bit: u8 },
    /// A file delete failed transiently; the file stays on disk.
    DeleteFailure { op: u64, target: String },
}

/// What an instrumented write should do, as decided by the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePlan {
    /// Perform the write normally.
    Full,
    /// Persist only the first `kept` bytes, then fail: the crash point.
    Torn { kept: usize },
    /// Persist only the first `kept` bytes, then fail, but stay alive.
    Short { kept: usize },
}

/// Renders a fault target from a path: the file name only, so recorded
/// schedules compare equal across scratch directories.
pub fn target_name(path: &std::path::Path) -> String {
    path.file_name().unwrap_or(path.as_os_str()).to_string_lossy().into_owned()
}

/// Seedable failpoint engine shared by all I/O paths of one node.
pub struct FaultInjector {
    config: FaultConfig,
    rng: Mutex<SmallRng>,
    ops: AtomicU64,
    crashed: AtomicBool,
    events: Mutex<Vec<FaultEvent>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("config", &self.config)
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Builds an injector from a full config.
    pub fn new(config: FaultConfig) -> Arc<Self> {
        let rng = SmallRng::seed_from_u64(config.seed);
        Arc::new(FaultInjector {
            config,
            rng: Mutex::new(rng),
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Convenience: an injector that crashes after `n` I/O operations,
    /// torn writes allowed, no transient faults.
    pub fn crash_after(seed: u64, n: u64) -> Arc<Self> {
        FaultInjector::new(FaultConfig {
            seed,
            crash_after_ios: Some(n),
            ..FaultConfig::default()
        })
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// I/O operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the crash point (or a failed fsync) has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// The injected-fault schedule so far (clone; order is schedule order).
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    fn record(&self, ev: FaultEvent) {
        self.events.lock().push(ev);
    }

    fn injected(&self, target: &str, what: &str) -> StorageError {
        StorageError::Injected(format!("{what} in {target} (seed {})", self.config.seed))
    }

    /// Fails if the crash point has already fired — call sites that do no
    /// physical I/O of their own (file create/open/delete, WAL append into
    /// the buffer) use this so a "dead" handle stays dead.
    pub fn check_alive(&self, target: &str) -> Result<()> {
        if self.crashed() {
            return Err(self.injected(target, "operation after injected crash"));
        }
        Ok(())
    }

    /// Counts one operation; returns its index, or an error when the
    /// injector has crashed.
    fn next_op(&self, target: &str) -> Result<u64> {
        self.check_alive(target)?;
        Ok(self.ops.fetch_add(1, Ordering::SeqCst))
    }

    fn is_crash_point(&self, op: u64) -> bool {
        match self.config.crash_after_ios {
            Some(n) => op >= n && !self.crashed(),
            None => false,
        }
    }

    /// Failpoint for a write of `requested` bytes. The caller must obey the
    /// returned [`WritePlan`]; for `Torn`/`Short` it persists the prefix and
    /// then fails its own call with [`FaultInjector::write_failed`].
    pub fn on_write(&self, target: &str, requested: usize) -> Result<WritePlan> {
        let op = self.next_op(target)?;
        if self.is_crash_point(op) {
            self.crashed.store(true, Ordering::SeqCst);
            let kept = if self.config.torn_writes && requested > 0 {
                self.rng.lock().gen_range(0..=requested)
            } else {
                0
            };
            self.record(FaultEvent::TornWrite { op, target: target.to_string(), kept, requested });
            self.record(FaultEvent::Crash { op, target: target.to_string() });
            return Ok(WritePlan::Torn { kept });
        }
        if self.config.short_write_prob > 0.0 {
            let mut rng = self.rng.lock();
            if rng.gen_bool(self.config.short_write_prob) && requested > 0 {
                let kept = rng.gen_range(0..requested);
                drop(rng);
                self.record(FaultEvent::ShortWrite {
                    op,
                    target: target.to_string(),
                    kept,
                    requested,
                });
                return Ok(WritePlan::Short { kept });
            }
        }
        Ok(WritePlan::Full)
    }

    /// The error an instrumented write returns after honoring a `Torn` or
    /// `Short` plan.
    pub fn write_failed(&self, target: &str) -> StorageError {
        if self.crashed() {
            self.injected(target, "injected crash during write")
        } else {
            self.injected(target, "injected short write")
        }
    }

    /// Failpoint for a read; may silently flip one bit of `buf`.
    pub fn on_read(&self, target: &str, buf: &mut [u8]) -> Result<()> { // xlint: allow(blocking, "fault injection for chaos tests; simulated I/O latency")
        let op = self.next_op(target)?;
        if let Some(d) = self.config.read_delay {
            std::thread::sleep(d);
        }
        if self.is_crash_point(op) {
            self.crashed.store(true, Ordering::SeqCst);
            self.record(FaultEvent::Crash { op, target: target.to_string() });
            return Err(self.injected(target, "injected crash during read"));
        }
        if self.config.read_corrupt_prob > 0.0 && !buf.is_empty() {
            let mut rng = self.rng.lock();
            if rng.gen_bool(self.config.read_corrupt_prob) {
                let byte = rng.gen_range(0..buf.len());
                let bit = rng.gen_range(0u8..8);
                drop(rng);
                buf[byte] ^= 1 << bit;
                self.record(FaultEvent::BitFlip { op, target: target.to_string(), byte, bit });
            }
        }
        Ok(())
    }

    /// Failpoint for truncating a torn WAL tail at reopen. Counts as one
    /// I/O operation, so a scheduled crash can land between discovering the
    /// torn tail and removing it — the window where a real crash would leave
    /// the tail in place for the *next* recovery to deal with.
    pub fn on_truncate(&self, target: &str) -> Result<()> {
        let op = self.next_op(target)?;
        if self.is_crash_point(op) {
            self.crashed.store(true, Ordering::SeqCst);
            self.record(FaultEvent::Crash { op, target: target.to_string() });
            return Err(self.injected(target, "injected crash during truncate"));
        }
        Ok(())
    }

    /// Failpoint for a file delete (LSM component retirement). The crash
    /// point can land here; otherwise a probabilistic *transient* failure
    /// leaves the file on disk and the system alive — retirement callers
    /// must treat that as deferred cleanup, not an error.
    pub fn on_delete(&self, target: &str) -> Result<()> {
        let op = self.next_op(target)?;
        if self.is_crash_point(op) {
            self.crashed.store(true, Ordering::SeqCst);
            self.record(FaultEvent::Crash { op, target: target.to_string() });
            return Err(self.injected(target, "injected crash during delete"));
        }
        if self.config.delete_fail_prob > 0.0
            && self.rng.lock().gen_bool(self.config.delete_fail_prob)
        {
            self.record(FaultEvent::DeleteFailure { op, target: target.to_string() });
            return Err(self.injected(target, "injected delete failure"));
        }
        Ok(())
    }

    /// Failpoint for an fsync. Both the crash point and a probabilistic
    /// fsync failure land here; either way the injector is crashed after.
    pub fn on_sync(&self, target: &str) -> Result<()> {
        let op = self.next_op(target)?;
        if self.is_crash_point(op) {
            self.crashed.store(true, Ordering::SeqCst);
            self.record(FaultEvent::Crash { op, target: target.to_string() });
            return Err(self.injected(target, "injected crash during fsync"));
        }
        if self.config.fsync_fail_prob > 0.0 && self.rng.lock().gen_bool(self.config.fsync_fail_prob)
        {
            self.crashed.store(true, Ordering::SeqCst);
            self.record(FaultEvent::FsyncFailure { op, target: target.to_string() });
            return Err(self.injected(target, "injected fsync failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let f = FaultInjector::new(FaultConfig {
                seed,
                crash_after_ios: Some(6),
                torn_writes: true,
                short_write_prob: 0.3,
                fsync_fail_prob: 0.0,
                read_corrupt_prob: 0.5,
                delete_fail_prob: 0.0,
                read_delay: None,
            });
            let mut buf = vec![0xAAu8; 64];
            for i in 0..32u64 {
                match i % 3 {
                    0 => {
                        let _ = f.on_write("w", 128);
                    }
                    1 => {
                        let _ = f.on_read("r", &mut buf);
                    }
                    _ => {
                        let _ = f.on_sync("s");
                    }
                }
            }
            f.events()
        };
        assert_eq!(run(7), run(7), "same seed must replay identically");
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn crash_point_is_sticky() {
        let f = FaultInjector::crash_after(1, 2);
        assert!(matches!(f.on_write("a", 10), Ok(WritePlan::Full)));
        assert!(matches!(f.on_write("b", 10), Ok(WritePlan::Full)));
        // third op is the crash point
        match f.on_write("c", 10).unwrap() {
            WritePlan::Torn { kept } => assert!(kept <= 10),
            other => panic!("expected torn crash, got {other:?}"),
        }
        assert!(f.crashed());
        assert!(f.on_write("d", 10).is_err(), "dead handles stay dead");
        assert!(f.on_sync("e").is_err());
        assert!(f.check_alive("f").is_err());
        let events = f.events();
        assert!(events.iter().any(|e| matches!(e, FaultEvent::Crash { op: 2, .. })));
    }

    #[test]
    fn crash_on_sync_and_read() {
        let f = FaultInjector::new(FaultConfig {
            seed: 3,
            crash_after_ios: Some(0),
            torn_writes: false,
            ..FaultConfig::default()
        });
        assert!(f.on_sync("s").is_err());
        assert!(f.crashed());

        let f = FaultInjector::crash_after(4, 0);
        let mut buf = [0u8; 8];
        assert!(f.on_read("r", &mut buf).is_err());
        assert!(f.crashed());
    }

    #[test]
    fn torn_disabled_keeps_nothing() {
        let f = FaultInjector::new(FaultConfig {
            seed: 5,
            crash_after_ios: Some(0),
            torn_writes: false,
            ..FaultConfig::default()
        });
        match f.on_write("w", 100).unwrap() {
            WritePlan::Torn { kept } => assert_eq!(kept, 0),
            other => panic!("expected torn crash, got {other:?}"),
        }
    }

    #[test]
    fn bit_flips_recorded_and_applied() {
        let f = FaultInjector::new(FaultConfig {
            seed: 11,
            read_corrupt_prob: 1.0,
            ..FaultConfig::default()
        });
        let mut buf = vec![0u8; 16];
        f.on_read("r", &mut buf).unwrap();
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1, "exactly one bit flipped");
        assert!(matches!(f.events()[0], FaultEvent::BitFlip { op: 0, .. }));
        assert!(!f.crashed(), "bit flips are silent, not crashes");
    }

    #[test]
    fn delete_failures_are_transient_and_recorded() {
        let f = FaultInjector::new(FaultConfig {
            seed: 17,
            delete_fail_prob: 1.0,
            ..FaultConfig::default()
        });
        assert!(f.on_delete("c1.btree").is_err());
        assert!(!f.crashed(), "a failed delete leaves the system alive");
        assert!(f.on_delete("c2.btree").is_err(), "next delete can fail too");
        assert!(f.on_write("w", 16).is_ok(), "other I/O unaffected");
        let events = f.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], FaultEvent::DeleteFailure { op: 0, target } if target == "c1.btree"));

        // the crash point can land on a delete, and then it is sticky
        let f = FaultInjector::crash_after(18, 0);
        assert!(f.on_delete("c3.btree").is_err());
        assert!(f.crashed());
        assert!(f.on_delete("c4.btree").is_err(), "dead handles stay dead");
    }

    #[test]
    fn fsync_failure_is_sticky() {
        let f = FaultInjector::new(FaultConfig {
            seed: 13,
            fsync_fail_prob: 1.0,
            ..FaultConfig::default()
        });
        assert!(f.on_sync("s").is_err());
        assert!(f.crashed(), "a failed fsync must not be retried");
        assert!(matches!(f.events()[0], FaultEvent::FsyncFailure { .. }));
    }
}
