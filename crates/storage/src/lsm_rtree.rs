//! The LSM R-tree: AsterixDB's spatial secondary index (paper §V-B).
//!
//! Inserts go to an in-memory R-tree; flushes STR-pack it into an immutable
//! disk R-tree component. Deletes follow AsterixDB's design — "we made a
//! change in how deletions were handled for LSM" — by recording deleted keys
//! in a **companion key B+ tree** per component rather than anti-matter
//! entries in the R-tree itself: a candidate from an older component is
//! filtered out when any newer component's deleted-key tree contains its key.
//!
//! The `point_optimize` flag applies the §V-B leaf-storage optimization
//! (points stored without duplicated MBR corners; experiment E11).

use crate::btree::{BTreeBuilder, DiskBTree};
use crate::cache::BufferCache;
use crate::error::Result;
use crate::lsm::{KeyBytes, MergePolicy};
use crate::rtree::{DiskRTree, MemRTree, RTreeBuilder, SpatialEntry};
use asterix_adm::Rectangle;
use std::collections::BTreeSet;
use std::collections::HashSet;
use std::sync::Arc;

struct RTreeComponent {
    rtree: DiskRTree,
    /// Keys deleted *logically before* this component was flushed; masks
    /// matching entries in all older components.
    tombstones: Option<DiskBTree>,
    size_bytes: u64,
}

/// Configuration of an LSM R-tree.
#[derive(Debug, Clone)]
pub struct LsmRTreeConfig {
    pub name: String,
    /// Memory-component budget in bytes.
    pub mem_budget: usize,
    pub merge_policy: MergePolicy,
    /// Apply the point-MBR storage optimization.
    pub point_optimize: bool,
}

impl LsmRTreeConfig {
    /// Default configuration.
    pub fn new(name: impl Into<String>) -> Self {
        LsmRTreeConfig {
            name: name.into(),
            mem_budget: 1 << 20,
            merge_policy: MergePolicy::Prefix {
                max_mergable_bytes: 16 << 20,
                max_tolerance_components: 4,
            },
            point_optimize: true,
        }
    }
}

/// An LSM-ified R-tree over `(MBR, encoded primary key)` entries.
pub struct LsmRTree {
    cache: Arc<BufferCache>,
    config: LsmRTreeConfig,
    mem: MemRTree,
    mem_tombstones: BTreeSet<KeyBytes>,
    /// Newest first.
    disk: Vec<RTreeComponent>,
    next_id: u64,
}

impl LsmRTree {
    /// Creates an empty LSM R-tree.
    pub fn new(cache: Arc<BufferCache>, config: LsmRTreeConfig) -> Self {
        LsmRTree {
            cache,
            config,
            mem: MemRTree::new(),
            mem_tombstones: BTreeSet::new(),
            disk: Vec::new(),
            next_id: 1,
        }
    }

    /// Number of disk components.
    pub fn component_count(&self) -> usize {
        self.disk.len()
    }

    /// Total tree pages across disk components (E11's size metric).
    pub fn disk_pages(&self) -> u64 {
        self.disk.iter().map(|c| c.rtree.data_pages()).sum()
    }

    /// Inserts an entry; flushes past the memory budget.
    pub fn insert(&mut self, mbr: Rectangle, key: Vec<u8>) -> Result<()> {
        // An insert revives a key: drop any pending tombstone for it.
        self.mem_tombstones.remove(&KeyBytes(key.clone()));
        self.mem.insert(mbr, key);
        self.maybe_flush()
    }

    /// Deletes an entry. If it still lives in the memory component it is
    /// removed directly; otherwise its key is recorded as a tombstone for
    /// the companion B+ tree.
    pub fn delete(&mut self, mbr: &Rectangle, key: &[u8]) -> Result<()> {
        if !self.mem.remove(mbr, key) {
            self.mem_tombstones.insert(KeyBytes(key.to_vec()));
        }
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<()> {
        let bytes = self.mem.approx_bytes()
            + self.mem_tombstones.iter().map(|k| k.0.len() + 32).sum::<usize>();
        if bytes > self.config.mem_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// Forces the memory component (entries + tombstones) to disk.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() && self.mem_tombstones.is_empty() {
            return Ok(());
        }
        let id = self.next_id;
        self.next_id += 1;
        let rtree_name = format!("{}_c{}.rtree", self.config.name, id);
        let writer = self.cache.manager().bulk_writer(&rtree_name)?;
        let entries = std::mem::take(&mut self.mem).entries();
        let built = RTreeBuilder::new(writer, self.config.point_optimize).build(entries)?;
        let size_bytes =
            self.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let rtree = DiskRTree::from_built(Arc::clone(&self.cache), built);
        let tombstones = if self.mem_tombstones.is_empty() {
            None
        } else {
            let name = format!("{}_c{}.delkeys", self.config.name, id);
            let writer = self.cache.manager().bulk_writer(&name)?;
            let mut b = BTreeBuilder::new(writer, self.mem_tombstones.len());
            for k in std::mem::take(&mut self.mem_tombstones) {
                b.add(&k.0, &[])?;
            }
            Some(DiskBTree::from_built(Arc::clone(&self.cache), b.finish()?))
        };
        self.mem = MemRTree::new();
        self.mem_tombstones = BTreeSet::new();
        self.disk.insert(0, RTreeComponent { rtree, tombstones, size_bytes });
        self.maybe_merge()
    }

    fn maybe_merge(&mut self) -> Result<()> {
        // Loop until the policy is satisfied (cascade): one pick per flush
        // never converges a backlog. The progress guard breaks out if a
        // merge fails to shrink the list (e.g. a degenerate pick).
        loop {
            let sizes: Vec<u64> = self.disk.iter().map(|c| c.size_bytes).collect();
            let Some(n) = self.config.merge_policy.pick_merge(&sizes) else {
                return Ok(());
            };
            let before = self.disk.len();
            self.merge_newest(n)?;
            if self.disk.len() >= before {
                return Ok(());
            }
        }
    }

    /// Merges the `n` newest components into one.
    pub fn merge_newest(&mut self, n: usize) -> Result<()> {
        let n = n.min(self.disk.len());
        if n < 2 {
            return Ok(());
        }
        let includes_oldest = n == self.disk.len();
        // Visibility during the merge: walk newest→oldest accumulating
        // tombstones, keep first (newest) occurrence of each key.
        let everything = Rectangle::new(
            asterix_adm::Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            asterix_adm::Point::new(f64::INFINITY, f64::INFINITY),
        );
        let mut deleted: HashSet<Vec<u8>> = HashSet::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut live: Vec<SpatialEntry> = Vec::new();
        let mut surviving_tombstones: BTreeSet<KeyBytes> = BTreeSet::new();
        for comp in &self.disk[..n] {
            for e in comp.rtree.search(&everything)? {
                if !deleted.contains(&e.key) && seen.insert(e.key.clone()) {
                    live.push(e);
                }
            }
            if let Some(t) = &comp.tombstones {
                for item in t.scan()? {
                    let (k, _) = item?;
                    deleted.insert(k.clone());
                    surviving_tombstones.insert(KeyBytes(k));
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        let rtree_name = format!("{}_c{}.rtree", self.config.name, id);
        let writer = self.cache.manager().bulk_writer(&rtree_name)?;
        let built = RTreeBuilder::new(writer, self.config.point_optimize).build(live)?;
        let size_bytes =
            self.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let rtree = DiskRTree::from_built(Arc::clone(&self.cache), built);
        let tombstones = if includes_oldest || surviving_tombstones.is_empty() {
            None // nothing older left to mask
        } else {
            let name = format!("{}_c{}.delkeys", self.config.name, id);
            let writer = self.cache.manager().bulk_writer(&name)?;
            let mut b = BTreeBuilder::new(writer, surviving_tombstones.len());
            for k in surviving_tombstones {
                b.add(&k.0, &[])?;
            }
            Some(DiskBTree::from_built(Arc::clone(&self.cache), b.finish()?))
        };
        let removed: Vec<RTreeComponent> = self.disk.drain(..n).collect();
        for comp in removed {
            self.cache.close_file(comp.rtree.file());
            self.cache.manager().delete(comp.rtree.file())?;
            if let Some(t) = comp.tombstones {
                self.cache.close_file(t.file());
                self.cache.manager().delete(t.file())?;
            }
        }
        self.disk.insert(0, RTreeComponent { rtree, tombstones, size_bytes });
        Ok(())
    }

    /// All live entries intersecting `query`, resolving deletes across
    /// components (newest wins; tombstones mask older components).
    pub fn search(&self, query: &Rectangle) -> Result<Vec<SpatialEntry>> {
        let mut deleted: HashSet<Vec<u8>> = HashSet::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut out: Vec<SpatialEntry> = Vec::new();
        for e in self.mem.search(query) {
            if seen.insert(e.key.clone()) {
                out.push(e);
            }
        }
        for k in &self.mem_tombstones {
            deleted.insert(k.0.clone());
        }
        for comp in &self.disk {
            for e in comp.rtree.search(query)? {
                if !deleted.contains(&e.key) && seen.insert(e.key.clone()) {
                    out.push(e);
                }
            }
            if let Some(t) = &comp.tombstones {
                for item in t.scan()? {
                    deleted.insert(item?.0);
                }
            }
        }
        Ok(out)
    }

    /// Count of live entries (full-space search; for tests).
    pub fn count(&self) -> Result<usize> {
        let everything = Rectangle::new(
            asterix_adm::Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            asterix_adm::Point::new(f64::INFINITY, f64::INFINITY),
        );
        Ok(self.search(&everything)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;
    use asterix_adm::Point;

    fn setup() -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, 256), dir)
    }

    fn config(name: &str) -> LsmRTreeConfig {
        LsmRTreeConfig {
            name: name.into(),
            mem_budget: 8 << 10,
            merge_policy: MergePolicy::NoMerge,
            point_optimize: true,
        }
    }

    fn pt(x: f64, y: f64) -> Rectangle {
        Point::new(x, y).to_mbr()
    }

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rectangle {
        Rectangle::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn insert_search_across_flushes() {
        let (cache, _d) = setup();
        let mut t = LsmRTree::new(cache, config("s"));
        for i in 0..50 {
            for j in 0..50 {
                t.insert(pt(i as f64, j as f64), format!("{i},{j}").into_bytes())
                    .unwrap();
            }
        }
        assert!(t.component_count() > 0, "memory budget forced flushes");
        let hits = t.search(&rect(10.0, 10.0, 12.0, 12.0)).unwrap();
        assert_eq!(hits.len(), 9);
        assert_eq!(t.count().unwrap(), 2500);
    }

    #[test]
    fn delete_in_memory_component() {
        let (cache, _d) = setup();
        let mut t = LsmRTree::new(cache, config("s"));
        t.insert(pt(1.0, 1.0), b"a".to_vec()).unwrap();
        t.insert(pt(2.0, 2.0), b"b".to_vec()).unwrap();
        t.delete(&pt(1.0, 1.0), b"a").unwrap();
        let hits = t.search(&rect(0.0, 0.0, 3.0, 3.0)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, b"b");
    }

    #[test]
    fn delete_masks_older_components_via_companion_btree() {
        let (cache, _d) = setup();
        let mut t = LsmRTree::new(cache, config("s"));
        t.insert(pt(1.0, 1.0), b"a".to_vec()).unwrap();
        t.insert(pt(2.0, 2.0), b"b".to_vec()).unwrap();
        t.flush().unwrap();
        // entry now only on disk; delete must go through the tombstone path
        t.delete(&pt(1.0, 1.0), b"a").unwrap();
        let hits = t.search(&rect(0.0, 0.0, 3.0, 3.0)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, b"b");
        // tombstone survives its own flush
        t.flush().unwrap();
        let hits = t.search(&rect(0.0, 0.0, 3.0, 3.0)).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn reinsert_after_delete_revives() {
        let (cache, _d) = setup();
        let mut t = LsmRTree::new(cache, config("s"));
        t.insert(pt(1.0, 1.0), b"a".to_vec()).unwrap();
        t.flush().unwrap();
        t.delete(&pt(1.0, 1.0), b"a").unwrap();
        t.insert(pt(5.0, 5.0), b"a".to_vec()).unwrap(); // moved object
        let hits = t.search(&rect(0.0, 0.0, 10.0, 10.0)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mbr, pt(5.0, 5.0), "new position wins");
    }

    #[test]
    fn merge_compacts_components_and_applies_tombstones() {
        let (cache, _d) = setup();
        let mut t = LsmRTree::new(cache, config("s"));
        for i in 0..100 {
            t.insert(pt(i as f64, 0.0), format!("k{i}").into_bytes()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..50 {
            t.delete(&pt(i as f64, 0.0), format!("k{i}").as_bytes()).unwrap();
        }
        t.flush().unwrap();
        assert!(t.component_count() >= 2);
        let n = t.component_count();
        t.merge_newest(n).unwrap();
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.count().unwrap(), 50);
        let hits = t.search(&rect(0.0, 0.0, 49.0, 0.0)).unwrap();
        assert!(hits.is_empty(), "deleted half gone after merge");
    }

    #[test]
    fn automatic_merge_with_constant_policy() {
        let (cache, _d) = setup();
        let mut cfg = config("s");
        cfg.merge_policy = MergePolicy::Constant { max_components: 2 };
        let mut t = LsmRTree::new(cache, cfg);
        for i in 0..3_000 {
            t.insert(
                pt((i % 100) as f64, (i / 100) as f64),
                format!("k{i}").into_bytes(),
            )
            .unwrap();
        }
        t.flush().unwrap();
        assert!(t.component_count() <= 3);
        assert_eq!(t.count().unwrap(), 3_000);
    }
}
