//! I/O and cache statistics.
//!
//! The paper's storage arguments (Graefe's B-tree-vs-hashing point in §V-C,
//! the sorted-PK-fetch trick of §V-B) are phrased in terms of *physical I/O
//! under a modest memory allocation*. These counters make that measurable:
//! every physical page read/write and every buffer-cache hit is counted.
//!
//! [`IoStats`] now also surfaces through the shared observability registry
//! ([`asterix_obs::MetricsRegistry`]): the counters stay plain inline
//! atomics (the buffer-cache hit path is tight enough that even one extra
//! pointer chase per hit shows up on `repro hotpath`), and each field is
//! registered as an *observed* `storage.io.*` counter that the registry
//! reads only at snapshot time. Node-level metric snapshots see storage
//! I/O without any storage-specific glue, while every existing
//! `count_*`/`snapshot`/`reset` call site compiles unchanged.

use crate::compaction::LsmMetricsHub;
use asterix_obs::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Shared, thread-safe I/O counters. Cheap to clone (an `Arc` handle).
///
/// Each field is mirrored into the registry returned by
/// [`IoStats::registry`] as an observed counter; reading through either
/// view sees the same atomics.
#[derive(Debug)]
pub struct IoStats {
    registry: Arc<MetricsRegistry>,
    /// Node-wide LSM amplification hub shared by every tree on this device
    /// (registered as `storage.lsm.*` metrics alongside the I/O counters).
    lsm: Arc<LsmMetricsHub>,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
    readaheads: AtomicU64,
    coalesced_waits: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl IoStats {
    /// Creates a fresh zeroed counter set behind an `Arc`, registered in a
    /// private registry (reachable via [`IoStats::registry`]).
    pub fn new() -> Arc<Self> {
        Self::with_registry(&Arc::new(MetricsRegistry::new()))
    }

    /// Creates a counter set surfaced in `registry` under `storage.io.*`
    /// names. The registry holds only weak snapshot-time readers, so it
    /// never extends the stats' lifetime, and hot-path updates never touch
    /// it.
    pub fn with_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
        let stats = Arc::new(IoStats {
            registry: Arc::clone(registry),
            lsm: Arc::new(LsmMetricsHub::default()),
            physical_reads: AtomicU64::new(0),
            physical_writes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            readaheads: AtomicU64::new(0),
            coalesced_waits: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        });
        let observe = |name: &str, read: fn(&IoStats) -> u64| {
            let weak: Weak<IoStats> = Arc::downgrade(&stats);
            registry.observed_counter(name, move || weak.upgrade().map_or(0, |s| read(&s)));
        };
        observe("storage.io.physical_reads", IoStats::physical_reads);
        observe("storage.io.physical_writes", IoStats::physical_writes);
        observe("storage.io.cache_hits", IoStats::cache_hits);
        observe("storage.io.cache_misses", IoStats::cache_misses);
        observe("storage.io.evictions", IoStats::evictions);
        observe("storage.io.readaheads", IoStats::readaheads);
        // Registered under the cache-level name (not `storage.io.*`): the
        // counter measures request coalescing in the buffer cache, and the
        // serving-layer dashboards key on `cache.coalesced_waits`.
        observe("cache.coalesced_waits", IoStats::coalesced_waits);
        observe("storage.io.bytes_written", IoStats::bytes_written);
        observe("storage.io.bytes_read", IoStats::bytes_read);
        stats.lsm.register(registry);
        stats
    }

    /// The LSM amplification hub every tree sharing these stats reports to.
    pub fn lsm(&self) -> &Arc<LsmMetricsHub> {
        &self.lsm
    }

    /// The registry these counters are observed by (for node-level
    /// snapshots).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub(crate) fn count_physical_read(&self, bytes: u64) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_physical_write(&self, bytes: u64) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_readahead(&self) {
        self.readaheads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_coalesced_wait(&self) {
        self.coalesced_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of physical page reads performed.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Number of physical page writes performed.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes.load(Ordering::Relaxed)
    }

    /// Buffer-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Buffer-cache misses (each implies a physical read).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Buffer-cache evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Pages brought in by sequential readahead (beyond the demanded page).
    pub fn readaheads(&self) -> u64 {
        self.readaheads.load(Ordering::Relaxed)
    }

    /// Cache misses that parked on another requester's in-flight physical
    /// read instead of issuing a duplicate one (request coalescing).
    pub fn coalesced_waits(&self) -> u64 {
        self.coalesced_waits.load(Ordering::Relaxed)
    }

    /// Total bytes physically written (write-amplification numerator).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes physically read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Resets all I/O counters to zero (between experiment phases). The LSM
    /// hub is deliberately untouched: its space counters are deltas against
    /// per-tree marks, and zeroing one side would desynchronize them.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.readaheads.store(0, Ordering::Relaxed);
        self.coalesced_waits.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the counters as a plain struct.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads(),
            physical_writes: self.physical_writes(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            evictions: self.evictions(),
            readaheads: self.readaheads(),
            coalesced_waits: self.coalesced_waits(),
            bytes_written: self.bytes_written(),
            bytes_read: self.bytes_read(),
        }
    }
}

/// A point-in-time copy of [`IoStats`], subtractable for per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub evictions: u64,
    pub readaheads: u64,
    pub coalesced_waits: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

/// A point-in-time copy of one buffer-cache shard's counters (returned by
/// `BufferCache::shard_snapshots`). Per-shard hit/miss skew is how lock
/// contention and hash imbalance are diagnosed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardSnapshot {
    pub capacity: usize,
    pub resident: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub readaheads: u64,
    pub coalesced_waits: u64,
}

/// Checks snapshot monotonicity in debug builds: subtracting a *later*
/// snapshot from an earlier one is always a caller bug (e.g. a `reset()`
/// slipped between the two), and the saturated zero would silently hide it.
macro_rules! delta_field {
    ($what:literal, $newer:expr, $older:expr) => {{
        debug_assert!(
            $newer >= $older,
            concat!(
                "non-monotonic snapshot delta for ",
                $what,
                ": newer={} < older={} (reset between snapshots?)"
            ),
            $newer,
            $older,
        );
        $newer.saturating_sub($older)
    }};
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;

    /// Per-phase delta. Saturates at zero instead of wrapping when the
    /// subtrahend is newer (counters only ever grow between snapshots, so a
    /// wrapped delta of ~2^64 was pure garbage); debug builds assert
    /// monotonicity instead of hiding the misuse.
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: delta_field!("physical_reads", self.physical_reads, rhs.physical_reads),
            physical_writes: delta_field!(
                "physical_writes",
                self.physical_writes,
                rhs.physical_writes
            ),
            cache_hits: delta_field!("cache_hits", self.cache_hits, rhs.cache_hits),
            cache_misses: delta_field!("cache_misses", self.cache_misses, rhs.cache_misses),
            evictions: delta_field!("evictions", self.evictions, rhs.evictions),
            readaheads: delta_field!("readaheads", self.readaheads, rhs.readaheads),
            coalesced_waits: delta_field!(
                "coalesced_waits",
                self.coalesced_waits,
                rhs.coalesced_waits
            ),
            bytes_written: delta_field!("bytes_written", self.bytes_written, rhs.bytes_written),
            bytes_read: delta_field!("bytes_read", self.bytes_read, rhs.bytes_read),
        }
    }
}

impl std::ops::Sub for CacheShardSnapshot {
    type Output = CacheShardSnapshot;

    /// Delta of the monotonic counters; `capacity`/`resident` are levels, not
    /// counters, so the newer (left-hand) values are carried through as-is.
    fn sub(self, rhs: CacheShardSnapshot) -> CacheShardSnapshot {
        CacheShardSnapshot {
            capacity: self.capacity,
            resident: self.resident,
            hits: delta_field!("shard hits", self.hits, rhs.hits),
            misses: delta_field!("shard misses", self.misses, rhs.misses),
            evictions: delta_field!("shard evictions", self.evictions, rhs.evictions),
            readaheads: delta_field!("shard readaheads", self.readaheads, rhs.readaheads),
            coalesced_waits: delta_field!(
                "shard coalesced_waits",
                self.coalesced_waits,
                rhs.coalesced_waits
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.count_physical_read(8192);
        s.count_physical_read(8192);
        s.count_physical_write(8192);
        s.count_cache_hit();
        s.count_cache_miss();
        s.count_eviction();
        assert_eq!(s.physical_reads(), 2);
        assert_eq!(s.physical_writes(), 1);
        assert_eq!(s.bytes_read(), 16384);
        assert_eq!(s.cache_hits(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.evictions, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.count_physical_read(100);
        let before = s.snapshot();
        s.count_physical_read(100);
        s.count_physical_read(100);
        let delta = s.snapshot() - before;
        assert_eq!(delta.physical_reads, 2);
        assert_eq!(delta.bytes_read, 200);
    }

    #[test]
    fn counters_surface_through_the_registry() {
        let s = IoStats::new();
        s.count_physical_read(4096);
        s.count_cache_hit();
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("storage.io.physical_reads"), Some(1));
        assert_eq!(snap.counter("storage.io.bytes_read"), Some(4096));
        assert_eq!(snap.counter("storage.io.cache_hits"), Some(1));
        assert_eq!(snap.counter("storage.io.cache_misses"), Some(0));
        assert_eq!(snap.counter("cache.coalesced_waits"), Some(0));
        s.count_coalesced_wait();
        assert_eq!(s.registry().snapshot().counter("cache.coalesced_waits"), Some(1));
    }

    #[test]
    fn shared_registry_is_the_same_counters() {
        let reg = Arc::new(asterix_obs::MetricsRegistry::new());
        let s = IoStats::with_registry(&reg);
        s.count_physical_write(512);
        assert_eq!(reg.snapshot().counter("storage.io.physical_writes"), Some(1));
        assert_eq!(reg.snapshot().counter("storage.io.bytes_written"), Some(512));
    }

    // In release builds the delta saturates at zero instead of wrapping to
    // ~2^64; in debug builds the same misuse trips the monotonicity assert.
    #[cfg(not(debug_assertions))]
    #[test]
    fn reversed_delta_saturates_in_release() {
        let newer = IoSnapshot { physical_reads: 5, ..IoSnapshot::default() };
        let older = IoSnapshot { physical_reads: 9, ..IoSnapshot::default() };
        let delta = newer - older;
        assert_eq!(delta.physical_reads, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn reversed_delta_asserts_in_debug() {
        let newer = IoSnapshot { physical_reads: 5, ..IoSnapshot::default() };
        let older = IoSnapshot { physical_reads: 9, ..IoSnapshot::default() };
        let panicked = std::panic::catch_unwind(|| newer - older).is_err();
        assert!(panicked, "debug delta of reversed snapshots must assert");
    }

    #[test]
    fn shard_snapshot_delta_keeps_levels() {
        let older = CacheShardSnapshot { capacity: 64, resident: 10, hits: 5, ..Default::default() };
        let newer =
            CacheShardSnapshot { capacity: 64, resident: 32, hits: 25, misses: 4, ..Default::default() };
        let delta = newer - older;
        assert_eq!(delta.hits, 20);
        assert_eq!(delta.misses, 4);
        assert_eq!(delta.capacity, 64);
        assert_eq!(delta.resident, 32);
    }
}
