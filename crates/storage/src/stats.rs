//! I/O and cache statistics.
//!
//! The paper's storage arguments (Graefe's B-tree-vs-hashing point in §V-C,
//! the sorted-PK-fetch trick of §V-B) are phrased in terms of *physical I/O
//! under a modest memory allocation*. These counters make that measurable:
//! every physical page read/write and every buffer-cache hit is counted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters. Cheap to clone (an `Arc` handle).
#[derive(Debug, Default)]
pub struct IoStats {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    evictions: AtomicU64,
    readaheads: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl IoStats {
    /// Creates a fresh zeroed counter set behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(IoStats::default())
    }

    pub(crate) fn count_physical_read(&self, bytes: u64) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_physical_write(&self, bytes: u64) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_readahead(&self) {
        self.readaheads.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of physical page reads performed.
    pub fn physical_reads(&self) -> u64 {
        self.physical_reads.load(Ordering::Relaxed)
    }

    /// Number of physical page writes performed.
    pub fn physical_writes(&self) -> u64 {
        self.physical_writes.load(Ordering::Relaxed)
    }

    /// Buffer-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Buffer-cache misses (each implies a physical read).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Buffer-cache evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Pages brought in by sequential readahead (beyond the demanded page).
    pub fn readaheads(&self) -> u64 {
        self.readaheads.load(Ordering::Relaxed)
    }

    /// Total bytes physically written (write-amplification numerator).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes physically read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Resets all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.readaheads.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the counters as a plain struct.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads(),
            physical_writes: self.physical_writes(),
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            evictions: self.evictions(),
            readaheads: self.readaheads(),
            bytes_written: self.bytes_written(),
            bytes_read: self.bytes_read(),
        }
    }
}

/// A point-in-time copy of [`IoStats`], subtractable for per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub physical_reads: u64,
    pub physical_writes: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub evictions: u64,
    pub readaheads: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

/// A point-in-time copy of one buffer-cache shard's counters (returned by
/// `BufferCache::shard_snapshots`). Per-shard hit/miss skew is how lock
/// contention and hash imbalance are diagnosed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardSnapshot {
    pub capacity: usize,
    pub resident: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub readaheads: u64,
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads - rhs.physical_reads,
            physical_writes: self.physical_writes - rhs.physical_writes,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            evictions: self.evictions - rhs.evictions,
            readaheads: self.readaheads - rhs.readaheads,
            bytes_written: self.bytes_written - rhs.bytes_written,
            bytes_read: self.bytes_read - rhs.bytes_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.count_physical_read(8192);
        s.count_physical_read(8192);
        s.count_physical_write(8192);
        s.count_cache_hit();
        s.count_cache_miss();
        s.count_eviction();
        assert_eq!(s.physical_reads(), 2);
        assert_eq!(s.physical_writes(), 1);
        assert_eq!(s.bytes_read(), 16384);
        assert_eq!(s.cache_hits(), 1);
        let snap = s.snapshot();
        assert_eq!(snap.evictions, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.count_physical_read(100);
        let before = s.snapshot();
        s.count_physical_read(100);
        s.count_physical_read(100);
        let delta = s.snapshot() - before;
        assert_eq!(delta.physical_reads, 2);
        assert_eq!(delta.bytes_read, 200);
    }
}
