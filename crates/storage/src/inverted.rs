//! LSM inverted keyword index (`CREATE INDEX ... TYPE KEYWORD`, paper
//! Figure 3(a) and Section III item 8).
//!
//! Indexes the tokens of a string (or the elements of a string collection)
//! to the record's primary key. Physically it is an [`LsmTree`] over the
//! composite key `(token, pk)` — LSM-ifying the inverted index exactly the
//! way AsterixDB does (secondary indexes reuse the LSM machinery).

use crate::cache::BufferCache;
use crate::error::Result;
use crate::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_adm::binary::{decode_key, encode_key};
use asterix_adm::Value;
use std::ops::Bound;
use std::sync::Arc;

/// Splits text into lowercase alphanumeric word tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// An LSM-based inverted keyword index mapping tokens to primary keys.
pub struct InvertedIndex {
    tree: LsmTree,
}

impl InvertedIndex {
    /// Creates an inverted index with its own LSM tree.
    pub fn new(cache: Arc<BufferCache>, name: impl Into<String>) -> Self {
        let mut config = LsmConfig::new(name);
        config.merge_policy = MergePolicy::Prefix {
            max_mergable_bytes: 16 << 20,
            max_tolerance_components: 4,
        };
        InvertedIndex { tree: LsmTree::new(cache, config) }
    }

    /// Creates with a custom LSM configuration.
    pub fn with_config(cache: Arc<BufferCache>, config: LsmConfig) -> Self {
        InvertedIndex { tree: LsmTree::new(cache, config) }
    }

    fn entry_key(token: &str, pk: &[Value]) -> Vec<u8> {
        let mut parts = Vec::with_capacity(1 + pk.len());
        parts.push(Value::from(token));
        parts.extend(pk.iter().cloned());
        encode_key(&parts)
    }

    /// Indexes `text` under primary key `pk`.
    pub fn insert_text(&mut self, text: &str, pk: &[Value]) -> Result<()> {
        let mut tokens = tokenize(text);
        tokens.sort_unstable();
        tokens.dedup();
        for tok in tokens {
            self.tree.upsert(Self::entry_key(&tok, pk), Vec::new())?;
        }
        Ok(())
    }

    /// Removes the postings of `text` for `pk` (on delete/update).
    pub fn delete_text(&mut self, text: &str, pk: &[Value]) -> Result<()> {
        let mut tokens = tokenize(text);
        tokens.sort_unstable();
        tokens.dedup();
        for tok in tokens {
            self.tree.delete(Self::entry_key(&tok, pk))?;
        }
        Ok(())
    }

    /// Primary keys of records containing `token` (case-insensitive).
    pub fn search_token(&self, token: &str) -> Result<Vec<Vec<Value>>> {
        let token = token.to_lowercase();
        let lo = encode_key(&[Value::from(token.as_str())]);
        // All composite keys whose first part equals `token` sort directly
        // after the 1-part prefix key and before the next token.
        let mut out = Vec::new();
        for (k, _) in self
            .tree
            .range(Bound::Included(lo.as_slice()), Bound::Unbounded)?
        {
            let parts = decode_key(&k)?;
            match parts.first() {
                Some(Value::String(s)) if *s == token => {
                    out.push(parts[1..].to_vec());
                }
                _ => break,
            }
        }
        Ok(out)
    }

    /// Primary keys of records containing *all* the query's tokens
    /// (conjunctive keyword search).
    pub fn search_all(&self, query: &str) -> Result<Vec<Vec<Value>>> {
        let mut tokens = tokenize(query);
        tokens.sort_unstable();
        tokens.dedup();
        let mut result: Option<Vec<Vec<Value>>> = None;
        for tok in tokens {
            let pks = self.search_token(&tok)?;
            result = Some(match result {
                None => pks,
                Some(prev) => prev
                    .into_iter()
                    .filter(|pk| pks.contains(pk))
                    .collect(),
            });
            if matches!(&result, Some(r) if r.is_empty()) {
                break;
            }
        }
        Ok(result.unwrap_or_default())
    }

    /// Forces a flush of the underlying LSM tree.
    pub fn flush(&mut self) -> Result<()> {
        self.tree.flush()
    }

    /// Disk components of the underlying tree.
    pub fn component_count(&self) -> usize {
        self.tree.component_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;

    fn setup() -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, 64), dir)
    }

    #[test]
    fn tokenizer() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(tokenize("  a--b_c 42 "), vec!["a", "b", "c", "42"]);
        assert_eq!(tokenize("ÜBER straße"), vec!["über", "straße"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn index_and_search() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("the quick brown fox", &[Value::Int(1)]).unwrap();
        idx.insert_text("the lazy dog", &[Value::Int(2)]).unwrap();
        idx.insert_text("quick quick dog", &[Value::Int(3)]).unwrap();
        let hits = idx.search_token("quick").unwrap();
        assert_eq!(hits, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        let hits = idx.search_token("THE").unwrap();
        assert_eq!(hits.len(), 2, "case-insensitive");
        assert!(idx.search_token("cat").unwrap().is_empty());
    }

    #[test]
    fn conjunctive_search() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("big data management system", &[Value::Int(1)]).unwrap();
        idx.insert_text("big active data", &[Value::Int(2)]).unwrap();
        idx.insert_text("little data", &[Value::Int(3)]).unwrap();
        let hits = idx.search_all("big data").unwrap();
        assert_eq!(hits, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let hits = idx.search_all("big data management").unwrap();
        assert_eq!(hits, vec![vec![Value::Int(1)]]);
        assert!(idx.search_all("big cats").unwrap().is_empty());
    }

    #[test]
    fn search_spans_flushes() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("alpha beta", &[Value::Int(1)]).unwrap();
        idx.flush().unwrap();
        idx.insert_text("beta gamma", &[Value::Int(2)]).unwrap();
        let hits = idx.search_token("beta").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(idx.component_count() >= 1);
    }

    #[test]
    fn delete_removes_postings() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("hello world", &[Value::Int(1)]).unwrap();
        idx.insert_text("hello there", &[Value::Int(2)]).unwrap();
        idx.flush().unwrap();
        idx.delete_text("hello world", &[Value::Int(1)]).unwrap();
        let hits = idx.search_token("hello").unwrap();
        assert_eq!(hits, vec![vec![Value::Int(2)]]);
        assert!(idx.search_token("world").unwrap().is_empty());
    }

    #[test]
    fn duplicate_tokens_in_one_text() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("spam spam spam", &[Value::Int(7)]).unwrap();
        let hits = idx.search_token("spam").unwrap();
        assert_eq!(hits.len(), 1, "deduplicated postings");
    }

    #[test]
    fn string_primary_keys() {
        let (cache, _d) = setup();
        let mut idx = InvertedIndex::new(cache, "kw");
        idx.insert_text("msg one", &[Value::from("userA"), Value::Int(1)]).unwrap();
        idx.insert_text("msg two", &[Value::from("userB"), Value::Int(2)]).unwrap();
        let hits = idx.search_token("msg").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], vec![Value::from("userA"), Value::Int(1)]);
    }
}
