//! Linear hashing — the §V-C baseline.
//!
//! The paper recounts Goetz Graefe's answer to "why do most real database
//! systems stop after offering B+ trees?" even though hashing is O(1):
//! (1) *it is well-known how to efficiently load a B+ tree; it is not known
//! how to do the same for linear hashing*, and (2) *given a modest allocation
//! of memory, their I/O costs in practice will be the same.* Experiment E3
//! measures both claims against this implementation.
//!
//! Classic Litwin linear hashing: buckets are page chains, a split pointer
//! `s` and level `L` grow the table one bucket at a time. All page access
//! flows through the buffer cache so physical I/O is measured under a
//! configurable memory budget. The bucket directory is kept in memory (the
//! structure is a benchmark subject, not a recoverable store — exactly the
//! "prerequisites never figured out" point the paper makes).

use crate::cache::BufferCache;
use crate::error::{Result, StorageError};
use crate::io::{FileId, PAGE_SIZE};
use std::hash::Hasher;
use std::sync::Arc;

const NO_OVERFLOW: u64 = u64::MAX;
const HEADER: usize = 10; // n u16 + next u64

fn hash_key(key: &[u8]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write(key);
    h.finish()
}

struct BucketPage {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    next: u64,
}

impl BucketPage {
    fn empty() -> Self {
        BucketPage { entries: Vec::new(), next: NO_OVERFLOW }
    }

    fn parse(page: &[u8]) -> Result<Self> {
        let n = crate::le::u16_at(page, 0) as usize;
        let next = crate::le::u64_at(page, 2);
        let mut entries = Vec::with_capacity(n);
        let mut r = HEADER;
        for _ in 0..n {
            if r + 4 > page.len() {
                return Err(StorageError::Corrupt("truncated hash bucket".into()));
            }
            let klen = crate::le::try_u16_at(page, r)? as usize;
            r += 2;
            let key = crate::le::try_bytes_at(page, r, klen)?.to_vec();
            r += klen;
            let vlen = crate::le::try_u16_at(page, r)? as usize;
            r += 2;
            let val = crate::le::try_bytes_at(page, r, vlen)?.to_vec();
            r += vlen;
            entries.push((key, val));
        }
        Ok(BucketPage { entries, next })
    }

    fn used(&self) -> usize {
        HEADER
            + self
                .entries
                .iter()
                .map(|(k, v)| 4 + k.len() + v.len())
                .sum::<usize>()
    }

    fn fits(&self, k: &[u8], v: &[u8]) -> bool {
        self.used() + 4 + k.len() + v.len() <= PAGE_SIZE
    }

    fn emit(&self) -> Vec<u8> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0..2].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        page[2..10].copy_from_slice(&self.next.to_le_bytes());
        let mut w = HEADER;
        for (k, v) in &self.entries {
            page[w..w + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
            w += 2;
            page[w..w + k.len()].copy_from_slice(k);
            w += k.len();
            page[w..w + 2].copy_from_slice(&(v.len() as u16).to_le_bytes());
            w += 2;
            page[w..w + v.len()].copy_from_slice(v);
            w += v.len();
        }
        page
    }
}

/// Counters specific to linear hashing.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashStats {
    pub splits: u64,
    pub overflow_pages: u64,
    pub entries: u64,
}

/// A linear hash table over encoded keys, with page chains per bucket.
pub struct LinearHash {
    cache: Arc<BufferCache>,
    file: FileId,
    /// Head page of each bucket's chain (bucket index → page number).
    directory: Vec<u64>,
    /// Initial bucket count (N₀).
    base: u64,
    /// Doubling level.
    level: u32,
    /// Split pointer.
    split: u64,
    /// Next free page number in the file.
    next_page: u64,
    /// Average entries per bucket that triggers a split.
    fill_target: usize,
    stats: HashStats,
}

impl LinearHash {
    /// Creates a fresh table in file `name`. `fill_target` is the mean
    /// entries-per-bucket threshold that triggers bucket splits.
    pub fn create(
        cache: Arc<BufferCache>,
        name: &str,
        initial_buckets: u64,
        fill_target: usize,
    ) -> Result<Self> {
        let file = cache.manager().create(name)?;
        let base = initial_buckets.max(1);
        let mut lh = LinearHash {
            cache,
            file,
            directory: Vec::new(),
            base,
            level: 0,
            split: 0,
            next_page: 0,
            fill_target: fill_target.max(1),
            stats: HashStats::default(),
        };
        for _ in 0..base {
            let page_no = lh.alloc_page()?;
            lh.directory.push(page_no);
        }
        Ok(lh)
    }

    fn alloc_page(&mut self) -> Result<u64> {
        let no = self.next_page;
        self.next_page += 1;
        self.cache.put(self.file, no, BucketPage::empty().emit())?;
        Ok(no)
    }

    /// Current number of buckets.
    pub fn buckets(&self) -> u64 {
        self.directory.len() as u64
    }

    /// Statistics.
    pub fn stats(&self) -> HashStats {
        self.stats
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        let h = hash_key(key);
        let n = self.base << self.level;
        let mut b = h % n;
        if b < self.split {
            b = h % (n << 1);
        }
        b as usize
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page_no = self.directory[self.bucket_of(key)];
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let bucket = BucketPage::parse(&page)?;
            for (k, v) in &bucket.entries {
                if k == key {
                    return Ok(Some(v.clone()));
                }
            }
            if bucket.next == NO_OVERFLOW {
                return Ok(None);
            }
            page_no = bucket.next;
        }
    }

    /// Inserts or replaces a key.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if 4 + key.len() + value.len() > PAGE_SIZE - HEADER {
            return Err(StorageError::RecordTooLarge {
                size: key.len() + value.len(),
                max: PAGE_SIZE - HEADER - 4,
            });
        }
        let bucket = self.bucket_of(key);
        if self.insert_into_chain(self.directory[bucket], key, value)? {
            self.stats.entries += 1;
            // split check: mean occupancy
            if self.stats.entries as usize > self.fill_target * self.directory.len() {
                self.split_one()?;
            }
        }
        Ok(())
    }

    /// Returns true when a *new* key was inserted (false = replaced).
    fn insert_into_chain(&mut self, head: u64, key: &[u8], value: &[u8]) -> Result<bool> {
        // pass 1: replace existing key anywhere in the chain
        let mut page_no = head;
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let mut bucket = BucketPage::parse(&page)?;
            if let Some(slot) = bucket.entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value.to_vec();
                self.cache.put(self.file, page_no, bucket.emit())?;
                return Ok(false);
            }
            if bucket.next == NO_OVERFLOW {
                break;
            }
            page_no = bucket.next;
        }
        // pass 2: append to the first page with room, else chain an overflow
        let mut page_no = head;
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let mut bucket = BucketPage::parse(&page)?;
            if bucket.fits(key, value) {
                bucket.entries.push((key.to_vec(), value.to_vec()));
                self.cache.put(self.file, page_no, bucket.emit())?;
                return Ok(true);
            }
            if bucket.next == NO_OVERFLOW {
                let new_page = self.alloc_page()?;
                self.stats.overflow_pages += 1;
                bucket.next = new_page;
                self.cache.put(self.file, page_no, bucket.emit())?;
                let mut fresh = BucketPage::empty();
                fresh.entries.push((key.to_vec(), value.to_vec()));
                self.cache.put(self.file, new_page, fresh.emit())?;
                return Ok(true);
            }
            page_no = bucket.next;
        }
    }

    /// Removes a key; returns whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> Result<bool> {
        let mut page_no = self.directory[self.bucket_of(key)];
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let mut bucket = BucketPage::parse(&page)?;
            if let Some(pos) = bucket.entries.iter().position(|(k, _)| k == key) {
                bucket.entries.remove(pos);
                self.cache.put(self.file, page_no, bucket.emit())?;
                self.stats.entries -= 1;
                return Ok(true);
            }
            if bucket.next == NO_OVERFLOW {
                return Ok(false);
            }
            page_no = bucket.next;
        }
    }

    /// Splits the bucket at the split pointer (the linear-hashing growth
    /// step): rehashes its chain into `s` and its buddy `s + N`.
    fn split_one(&mut self) -> Result<()> {
        let n = self.base << self.level;
        let old_bucket = self.split as usize;
        let buddy_page = self.alloc_page()?;
        self.directory.push(buddy_page);
        let new_index = self.directory.len() - 1;
        // drain the old chain
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut page_no = self.directory[old_bucket];
        loop {
            let page = self.cache.get(self.file, page_no)?;
            let bucket = BucketPage::parse(&page)?;
            entries.extend(bucket.entries);
            if bucket.next == NO_OVERFLOW {
                break;
            }
            page_no = bucket.next;
        }
        // reset the old chain to a single empty page (overflow pages of the
        // old chain leak in the file; acceptable for a benchmark structure)
        let head = self.directory[old_bucket];
        self.cache.put(self.file, head, BucketPage::empty().emit())?;
        // advance split state before rehashing so bucket_of sees the new table
        self.split += 1;
        if self.split == n {
            self.level += 1;
            self.split = 0;
        }
        self.stats.splits += 1;
        let prior = self.stats.entries;
        for (k, v) in entries {
            let b = self.bucket_of(&k);
            debug_assert!(b == old_bucket || b == new_index, "split rehash stays in pair");
            self.insert_into_chain(self.directory[b], &k, &v)?;
        }
        self.stats.entries = prior; // rehash does not change the count
        Ok(())
    }

    /// Flushes dirty pages (for I/O accounting boundaries in experiments).
    pub fn flush(&self) -> Result<()> {
        self.cache.flush_file(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;

    fn setup(cache_pages: usize) -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, cache_pages), dir)
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn put_get_many() {
        let (cache, _d) = setup(256);
        let mut h = LinearHash::create(cache, "h.lh", 4, 50).unwrap();
        for i in 0..5_000u64 {
            h.put(&key(i), format!("val-{i}").as_bytes()).unwrap();
        }
        assert!(h.buckets() > 4, "table grew: {} buckets", h.buckets());
        assert!(h.stats().splits > 0);
        for i in (0..5_000).step_by(101) {
            assert_eq!(h.get(&key(i)).unwrap().unwrap(), format!("val-{i}").into_bytes());
        }
        assert!(h.get(b"absent").unwrap().is_none());
        assert_eq!(h.stats().entries, 5_000);
    }

    #[test]
    fn replace_and_remove() {
        let (cache, _d) = setup(64);
        let mut h = LinearHash::create(cache, "h.lh", 4, 50).unwrap();
        h.put(b"k", b"v1").unwrap();
        h.put(b"k", b"v2").unwrap();
        assert_eq!(h.get(b"k").unwrap().unwrap(), b"v2");
        assert_eq!(h.stats().entries, 1, "replace does not double-count");
        assert!(h.remove(b"k").unwrap());
        assert!(!h.remove(b"k").unwrap());
        assert!(h.get(b"k").unwrap().is_none());
    }

    #[test]
    fn survives_tiny_cache() {
        // with a 4-page cache everything spills through writeback constantly
        let (cache, _d) = setup(4);
        let mut h = LinearHash::create(Arc::clone(&cache), "h.lh", 2, 20).unwrap();
        for i in 0..1_000u64 {
            h.put(&key(i), b"v").unwrap();
        }
        h.flush().unwrap();
        for i in 0..1_000u64 {
            assert!(h.get(&key(i)).unwrap().is_some(), "key {i} lost");
        }
        assert!(cache.stats().evictions() > 0);
    }

    #[test]
    fn overflow_chains_work() {
        let (cache, _d) = setup(64);
        // fill target absurdly high so no splits happen → chains must absorb
        let mut h = LinearHash::create(cache, "h.lh", 1, usize::MAX / 2).unwrap();
        let big_val = vec![b'x'; 1024];
        for i in 0..100u64 {
            h.put(&key(i), &big_val).unwrap();
        }
        assert_eq!(h.buckets(), 1);
        assert!(h.stats().overflow_pages > 0);
        for i in 0..100u64 {
            assert_eq!(h.get(&key(i)).unwrap().unwrap(), big_val);
        }
    }

    #[test]
    fn rejects_oversized() {
        let (cache, _d) = setup(8);
        let mut h = LinearHash::create(cache, "h.lh", 2, 10).unwrap();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            h.put(b"k", &huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }
}
