//! Background LSM compaction: jobs, executors, and amplification accounting.
//!
//! Merging disk components used to run *foreground*, inside
//! [`crate::lsm::LsmTree::flush`], stalling the write path for the whole
//! merge. This module moves the merge onto an external executor while
//! keeping the crate dependency one-way: storage defines a narrow
//! [`BackgroundExecutor`] trait and the runtime layer (hyracks' worker
//! pool) implements it. With no executor installed every merge still runs
//! inline, so single-threaded tests and benches stay deterministic.
//!
//! A merge is a [`MergeJob`]: a resumable k-way merge that advances one
//! *morsel* of entries ([`MERGE_MORSEL_ENTRIES`]) per [`BackgroundJob::step`]
//! call, so cancellation latency and scheduling quanta are bounded exactly
//! like query morsels. The owning tree tracks the job through a small state
//! machine ([`CompactionState`]: idle → merging → retiring → idle); reads
//! and flushes proceed against the pre-merge component list until the merged
//! component atomically swaps in.
//!
//! Retirement ordering invariant (the data-loss fix this module pins): the
//! merged component is inserted into the live list *before* the inputs'
//! files are deleted, and a failed retirement delete is non-fatal cleanup —
//! counted in `storage.lsm` metrics, never able to un-publish merged
//! entries. Old component files are unlinked only when the last reader
//! drops its snapshot reference, so in-flight scans never observe a
//! vanishing file.
//!
//! The [`LsmMetricsHub`] aggregates the classic LSM cost triad across every
//! tree of a node and surfaces it through the shared `obs` registry as
//! `storage.lsm.{write_amp,read_amp,space_amp,merge_inflight,merge_stall_ns}`.

use crate::error::Result;
use crate::lsm::{DiskComponent, LsmShared, MergeRun};
use asterix_obs::Gauge;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Entries merged per scheduling step: the compaction morsel. Mirrors the
/// scheduler's tuple morsel so a merge task shares the pool fairly with
/// query tasks and honors cancellation within one morsel.
pub const MERGE_MORSEL_ENTRIES: usize = 1024;

// ---------------------------------------------------------------------------
// The narrow storage → runtime trait pair
// ---------------------------------------------------------------------------

/// Outcome of one bounded job step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStep {
    /// More work remains; schedule another step.
    Again,
    /// The job is finished (completed, aborted, or cancelled).
    Done,
}

/// A resumable background task: the storage side of the compaction
/// off-loading contract. Implementations must make every `step` bounded
/// (one morsel of work) and must tolerate `cancel` at any point between
/// steps.
pub trait BackgroundJob: Send + Sync {
    /// Run one bounded quantum of work.
    fn step(&self) -> JobStep;
    /// Request cooperative cancellation; the next `step` observes it,
    /// aborts cleanly, and returns [`JobStep::Done`].
    fn cancel(&self);
}

/// Something that can run [`BackgroundJob`]s off the submitting thread.
/// The runtime layer implements this over its worker pool; storage never
/// learns what a worker is, keeping the crate dependency one-way.
pub trait BackgroundExecutor: Send + Sync {
    /// Accept `job` and drive its `step` to [`JobStep::Done`] eventually.
    fn offload(&self, job: Arc<dyn BackgroundJob>);
}

/// Cloneable, `Debug`-able handle around a [`BackgroundExecutor`] so plain
/// config structs can carry one.
#[derive(Clone)]
pub struct CompactionExec(Arc<dyn BackgroundExecutor>);

impl CompactionExec {
    /// Wraps an executor implementation.
    pub fn new(exec: Arc<dyn BackgroundExecutor>) -> Self {
        CompactionExec(exec)
    }

    /// Hands a job to the wrapped executor.
    pub fn offload(&self, job: Arc<dyn BackgroundJob>) {
        self.0.offload(job);
    }
}

impl std::fmt::Debug for CompactionExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CompactionExec(..)")
    }
}

/// A minimal executor that services each job on its own detached thread.
/// Storage-level tests (and anything without a worker pool) get true
/// background merges from it; production wiring uses the pool-backed
/// executor in the runtime crate instead.
#[derive(Debug, Default)]
pub struct ThreadExecutor;

impl BackgroundExecutor for ThreadExecutor {
    fn offload(&self, job: Arc<dyn BackgroundJob>) {
        std::thread::spawn(move || while job.step() == JobStep::Again {});
    }
}

impl ThreadExecutor {
    /// Convenience: a ready-to-install handle.
    pub fn handle() -> CompactionExec {
        CompactionExec::new(Arc::new(ThreadExecutor))
    }
}

// ---------------------------------------------------------------------------
// Per-tree compaction state machine
// ---------------------------------------------------------------------------

/// Where a tree's (single) compaction slot currently is. Exactly one merge
/// is in flight per tree; flushes and reads never wait on it.
pub(crate) enum CompactionState {
    /// No merge in flight.
    Idle,
    /// A merge over the components with these ids is running.
    Merging {
        ids: Vec<u64>,
        cancel: Arc<AtomicBool>,
    },
    /// The merged component is published; input files are being retired.
    Retiring,
}

impl CompactionState {
    /// Short state name for diagnostics and tests.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            CompactionState::Idle => "idle",
            CompactionState::Merging { .. } => "merging",
            CompactionState::Retiring => "retiring",
        }
    }

    /// Ids of the components covered by the in-flight merge, if any.
    pub(crate) fn merging_ids(&self) -> Option<&[u64]> {
        match self {
            CompactionState::Merging { ids, .. } => Some(ids),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The merge job
// ---------------------------------------------------------------------------

/// A scheduled merge of a snapshot of components. The snapshot stays valid
/// for the job's whole lifetime because flushes only ever *prepend* newer
/// components and the state machine admits one merge at a time.
pub(crate) struct MergeJob {
    shared: Arc<LsmShared>,
    /// Input components, newest first. Taken (emptied) on completion so the
    /// swapped-out components can retire as soon as readers let go.
    comps: Mutex<Vec<Arc<DiskComponent>>>,
    includes_oldest: bool,
    cancel: Arc<AtomicBool>,
    /// Background jobs cascade: on completion they re-run the policy and
    /// schedule the next merge. Foreground callers loop themselves.
    cascade: bool,
    run: Mutex<Option<MergeRun>>,
}

impl MergeJob {
    pub(crate) fn new(
        shared: Arc<LsmShared>,
        comps: Vec<Arc<DiskComponent>>,
        includes_oldest: bool,
        cancel: Arc<AtomicBool>,
        cascade: bool,
    ) -> Self {
        MergeJob {
            shared,
            comps: Mutex::new(comps),
            includes_oldest,
            cancel,
            cascade,
            run: Mutex::new(None),
        }
    }

    /// One morsel of merging; errors are surfaced to foreground callers
    /// (background steps record them and finish quietly).
    pub(crate) fn advance(&self) -> Result<JobStep> {
        match self.try_advance() {
            Ok(step) => Ok(step),
            Err(e) => {
                self.shared.merge_aborted();
                Err(e)
            }
        }
    }

    fn try_advance(&self) -> Result<JobStep> {
        if self.cancel.load(Ordering::Acquire) {
            self.run.lock().take();
            self.shared.merge_aborted();
            return Ok(JobStep::Done);
        }
        let mut run = self.run.lock(); // xlint: lock(lsm_merge_run)
        if run.is_none() {
            let comps = self.comps.lock().clone(); // xlint: lock(lsm_merge_inputs)
            *run = Some(self.shared.merge_open(&comps)?);
        }
        let Some(active) = run.as_mut() else { return Ok(JobStep::Done) };
        let exhausted =
            self.shared.merge_step(active, MERGE_MORSEL_ENTRIES, self.includes_oldest)?;
        if !exhausted {
            return Ok(JobStep::Again);
        }
        let Some(finished) = run.take() else { return Ok(JobStep::Done) };
        drop(run);
        let written = finished.written();
        let new_comp = self.shared.merge_finish(finished)?;
        let comps = std::mem::take(&mut *self.comps.lock()); // xlint: lock(lsm_merge_inputs)
        self.shared.complete_merge(comps, new_comp, written, self.cascade);
        Ok(JobStep::Done)
    }
}

impl BackgroundJob for MergeJob {
    fn step(&self) -> JobStep {
        // Background execution swallows the error after recording it in the
        // tree's failure counters: a failed merge leaves the pre-merge
        // component list untouched and the tree fully serviceable.
        self.advance().unwrap_or(JobStep::Done)
    }

    fn cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Node-wide LSM amplification accounting
// ---------------------------------------------------------------------------

/// Aggregated LSM cost metrics for every tree sharing one [`crate::IoStats`].
///
/// Ratios are exported through the `obs` registry at snapshot time in
/// **milli-units** (amplification × 1000, so `1.0` reads as `1000`): the
/// registry's observed counters are integral, and three decimal places is
/// plenty for dashboarding the read/write/space trade-off.
#[derive(Debug, Default)]
pub struct LsmMetricsHub {
    entries_written: AtomicU64,
    entries_ingested: AtomicU64,
    reads: AtomicU64,
    read_probes: AtomicU64,
    disk_bytes_total: AtomicU64,
    disk_bytes_live: AtomicU64,
    merge_stall_ns: AtomicU64,
    retire_failures: AtomicU64,
    merge_inflight: AtomicI64,
    gauge: OnceLock<Gauge>,
}

impl LsmMetricsHub {
    /// Binds the `storage.lsm.merge_inflight` gauge handle (once, at
    /// registry wiring time). Earlier in-flight deltas are replayed into it.
    pub(crate) fn bind_gauge(&self, gauge: Gauge) {
        gauge.set(self.merge_inflight.load(Ordering::Acquire));
        let _ = self.gauge.set(gauge);
    }

    pub(crate) fn count_ingested(&self, n: u64) {
        self.entries_ingested.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_written(&self, n: u64) {
        self.entries_written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_read(&self, probes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if probes > 0 {
            self.read_probes.fetch_add(probes, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_stall_ns(&self, ns: u64) {
        self.merge_stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn count_retire_failure(&self) {
        self.retire_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Applies a tree's change in (total bytes, live bytes) contribution.
    /// Deltas may be negative (components retired); sums stay non-negative
    /// because every tree reports consistent before/after pairs.
    pub(crate) fn adjust_space(&self, d_total: i64, d_live: i64) {
        self.disk_bytes_total.fetch_add(d_total as u64, Ordering::Relaxed);
        self.disk_bytes_live.fetch_add(d_live as u64, Ordering::Relaxed);
    }

    pub(crate) fn merge_started(&self) {
        self.merge_inflight.fetch_add(1, Ordering::AcqRel);
        if let Some(g) = self.gauge.get() {
            g.add(1);
        }
    }

    pub(crate) fn merge_finished(&self) {
        self.merge_inflight.fetch_add(-1, Ordering::AcqRel);
        if let Some(g) = self.gauge.get() {
            g.add(-1);
        }
    }

    fn ratio_milli(num: u64, den: u64) -> u64 {
        num.saturating_mul(1000).checked_div(den).unwrap_or(0)
    }

    /// Write amplification ×1000: disk entries written per ingested entry.
    pub fn write_amp_milli(&self) -> u64 {
        Self::ratio_milli(
            self.entries_written.load(Ordering::Relaxed),
            self.entries_ingested.load(Ordering::Relaxed),
        )
    }

    /// Read amplification ×1000: disk components probed per point lookup.
    pub fn read_amp_milli(&self) -> u64 {
        Self::ratio_milli(
            self.read_probes.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
        )
    }

    /// Space amplification ×1000: total component bytes over an estimate of
    /// the live data size (each tree's largest component).
    pub fn space_amp_milli(&self) -> u64 {
        Self::ratio_milli(
            self.disk_bytes_total.load(Ordering::Relaxed),
            self.disk_bytes_live.load(Ordering::Relaxed),
        )
    }

    /// Cumulative write-path stall attributable to merging, in nanoseconds.
    pub fn merge_stall_ns(&self) -> u64 {
        self.merge_stall_ns.load(Ordering::Relaxed)
    }

    /// Retirement deletes that failed (non-fatal cleanup, see module docs).
    pub fn retire_failures(&self) -> u64 {
        self.retire_failures.load(Ordering::Relaxed)
    }

    /// Merges currently in flight across all trees of this node.
    pub fn merge_inflight(&self) -> i64 {
        self.merge_inflight.load(Ordering::Acquire)
    }

    /// Registers the amplification metrics in `registry` as observed
    /// (snapshot-time) readers plus the in-flight gauge. Called from
    /// [`crate::IoStats::with_registry`]; holds only weak references, so it
    /// never extends the hub's lifetime.
    pub(crate) fn register(self: &Arc<Self>, registry: &asterix_obs::MetricsRegistry) {
        let observe = |name: &str, read: fn(&LsmMetricsHub) -> u64| {
            let weak = Arc::downgrade(self);
            registry.observed_counter(name, move || weak.upgrade().map_or(0, |h| read(&h)));
        };
        observe("storage.lsm.write_amp", LsmMetricsHub::write_amp_milli);
        observe("storage.lsm.read_amp", LsmMetricsHub::read_amp_milli);
        observe("storage.lsm.space_amp", LsmMetricsHub::space_amp_milli);
        observe("storage.lsm.merge_stall_ns", LsmMetricsHub::merge_stall_ns);
        observe("storage.lsm.retire_failures", LsmMetricsHub::retire_failures);
        self.bind_gauge(registry.gauge("storage.lsm.merge_inflight")); // xlint: allow(metric, "gauge is driven through the hub's bound handle: bind_gauge replays accumulated deltas and merge_started/merge_finished apply live ones")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_milli_scaled_and_zero_safe() {
        let hub = LsmMetricsHub::default();
        assert_eq!(hub.write_amp_milli(), 0, "no ingest yet: ratio is 0, not a panic");
        hub.count_ingested(100);
        hub.count_written(150);
        assert_eq!(hub.write_amp_milli(), 1500);
        hub.count_read(3);
        hub.count_read(0);
        assert_eq!(hub.read_amp_milli(), 1500, "3 probes over 2 reads");
        hub.adjust_space(4000, 2000);
        assert_eq!(hub.space_amp_milli(), 2000);
        hub.adjust_space(-2000, 0);
        assert_eq!(hub.space_amp_milli(), 1000);
    }

    #[test]
    fn inflight_gauge_replays_earlier_deltas_on_bind() {
        let hub = Arc::new(LsmMetricsHub::default());
        hub.merge_started();
        hub.merge_started();
        hub.merge_finished();
        let registry = asterix_obs::MetricsRegistry::new();
        hub.bind_gauge(registry.gauge("storage.lsm.merge_inflight"));
        assert_eq!(registry.snapshot().gauge("storage.lsm.merge_inflight"), Some(1));
        hub.merge_finished();
        assert_eq!(registry.snapshot().gauge("storage.lsm.merge_inflight"), Some(0));
        assert_eq!(hub.merge_inflight(), 0);
    }

    #[test]
    fn registered_metrics_surface_in_snapshots() {
        let hub = Arc::new(LsmMetricsHub::default());
        let registry = asterix_obs::MetricsRegistry::new();
        hub.register(&registry);
        hub.count_ingested(10);
        hub.count_written(25);
        hub.add_stall_ns(42);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.lsm.write_amp"), Some(2500));
        assert_eq!(snap.counter("storage.lsm.merge_stall_ns"), Some(42));
        assert_eq!(snap.counter("storage.lsm.retire_failures"), Some(0));
        assert_eq!(snap.gauge("storage.lsm.merge_inflight"), Some(0));
    }
}
