//! Page-file layer: fixed-size pages in ordinary files, managed per
//! "I/O device" directory (paper Figure 2 shows multiple I/O devices per
//! node, each holding LSM components).
//!
//! All physical reads/writes are counted in [`IoStats`]. Immutable component
//! files are written once with a sequential [`PageFileWriter`] and then only
//! read (through the buffer cache); mutable structures (linear hashing, WAL)
//! use in-place page writes.

use crate::error::{Result, StorageError};
use crate::faults::{FaultInjector, WritePlan};
use crate::stats::IoStats;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Size of one storage page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of an open page file within a [`FileManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

struct OpenFile {
    file: File,
    path: PathBuf,
    pages: u64,
    writable: bool,
}

/// Manages the page files under one device directory.
///
/// Files are created, opened, read page-wise, and deleted here; every
/// physical access increments the shared [`IoStats`].
pub struct FileManager {
    dir: PathBuf,
    stats: Arc<IoStats>,
    next_id: AtomicU32,
    files: RwLock<HashMap<FileId, Arc<RwLock<OpenFile>>>>,
    faults: Option<Arc<FaultInjector>>,
}

impl FileManager {
    /// Opens (creating if needed) a device directory.
    pub fn new(dir: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Arc<Self>> {
        FileManager::with_faults(dir, stats, None)
    }

    /// Opens a device directory whose physical I/O consults `faults`.
    pub fn with_faults( // xlint: allow(blocking, "storage-env setup I/O; runs at open, before jobs are served")
        dir: impl AsRef<Path>,
        stats: Arc<IoStats>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Arc<Self>> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(Arc::new(FileManager {
            dir: dir.as_ref().to_path_buf(),
            stats,
            next_id: AtomicU32::new(1),
            files: RwLock::new(HashMap::new()),
            faults,
        }))
    }

    /// The fault injector wired into this manager, if any.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The device directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn register(&self, file: File, path: PathBuf, pages: u64, writable: bool) -> FileId {
        let id = FileId(self.next_id.fetch_add(1, Ordering::Relaxed)); // xlint: ordering(file-id allocation; registration is published by the files-map lock)
        self.files
            .write()
            .insert(id, Arc::new(RwLock::new(OpenFile { file, path, pages, writable })));
        id
    }

    /// Creates a new, empty, writable page file with the given name.
    pub fn create(&self, name: &str) -> Result<FileId> { // xlint: allow(blocking, "synchronous page I/O is the storage contract; per-call work is one file create")
        if let Some(f) = &self.faults {
            f.check_alive(name)?;
        }
        let path = self.dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(self.register(file, path, 0, true))
    }

    /// Opens an existing file read-only (e.g. a component found at recovery).
    pub fn open(&self, name: &str) -> Result<FileId> { // xlint: allow(blocking, "synchronous page I/O is the storage contract; per-call work is one file open")
        if let Some(f) = &self.faults {
            f.check_alive(name)?;
        }
        let path = self.dir.join(name);
        let file = OpenOptions::new().read(true).open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StorageError::NotFound(format!("file {}", path.display()))
            } else {
                StorageError::Io(e)
            }
        })?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file {} length {len} is not page-aligned",
                path.display()
            )));
        }
        Ok(self.register(file, path, len / PAGE_SIZE as u64, false))
    }

    fn handle(&self, id: FileId) -> Result<Arc<RwLock<OpenFile>>> {
        self.files
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("file id {id:?}")))
    }

    /// Number of pages in the file.
    pub fn page_count(&self, id: FileId) -> Result<u64> {
        Ok(self.handle(id)?.read().pages)
    }

    /// Reads one physical page.
    pub fn read_page(&self, id: FileId, page_no: u64) -> Result<Vec<u8>> { // xlint: allow(blocking, "one-page read; morsel budgets account it via storage.io.physical_reads")
        let handle = self.handle(id)?;
        let guard = handle.read();
        if page_no >= guard.pages {
            return Err(StorageError::Corrupt(format!(
                "read of page {page_no} past end ({} pages) in {}",
                guard.pages,
                guard.path.display()
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        guard.file.read_exact_at(&mut buf, page_no * PAGE_SIZE as u64)?;
        if let Some(f) = &self.faults {
            // crash point / silent bit corruption; on crash the data read is
            // discarded, as if the process died before consuming it
            f.on_read(&format!("{}:{page_no}", crate::faults::target_name(&guard.path)), &mut buf)?;
        }
        self.stats.count_physical_read(PAGE_SIZE as u64);
        Ok(buf)
    }

    /// Reads `n` contiguous physical pages starting at `start` in one
    /// operation (sequential readahead). Fault checks and stats apply per
    /// page, in page order, exactly as `n` single-page reads would.
    pub fn read_pages(&self, id: FileId, start: u64, n: usize) -> Result<Vec<Vec<u8>>> { // xlint: allow(blocking, "batched sequential read, bounded by the readahead window")
        let handle = self.handle(id)?;
        let guard = handle.read();
        let n = n.max(1);
        if start + n as u64 > guard.pages {
            return Err(StorageError::Corrupt(format!(
                "batched read of pages {start}..{} past end ({} pages) in {}",
                start + n as u64,
                guard.pages,
                guard.path.display()
            )));
        }
        let mut buf = vec![0u8; n * PAGE_SIZE];
        guard.file.read_exact_at(&mut buf, start * PAGE_SIZE as u64)?;
        let mut out = Vec::with_capacity(n);
        for (i, chunk) in buf.chunks_exact(PAGE_SIZE).enumerate() {
            let mut page = chunk.to_vec();
            if let Some(f) = &self.faults {
                f.on_read(
                    &format!("{}:{}", crate::faults::target_name(&guard.path), start + i as u64),
                    &mut page,
                )?;
            }
            self.stats.count_physical_read(PAGE_SIZE as u64);
            out.push(page);
        }
        Ok(out)
    }

    /// Writes one physical page in place, extending the file if `page_no`
    /// is the next page.
    pub fn write_page(&self, id: FileId, page_no: u64, data: &[u8]) -> Result<()> { // xlint: allow(blocking, "one-page write; bounded and accounted in storage.io.physical_writes")
        if data.len() != PAGE_SIZE {
            return Err(StorageError::Invalid(format!(
                "write_page requires exactly {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let handle = self.handle(id)?;
        let mut guard = handle.write();
        if !guard.writable {
            return Err(StorageError::Invalid(format!(
                "file {} is read-only",
                guard.path.display()
            )));
        }
        if let Some(f) = &self.faults {
            let target = format!("{}:{page_no}", crate::faults::target_name(&guard.path));
            match f.on_write(&target, PAGE_SIZE)? {
                WritePlan::Full => {}
                WritePlan::Torn { kept } | WritePlan::Short { kept } => {
                    // persist only a prefix of the page — a torn page write
                    if kept > 0 {
                        guard.file.write_all_at(&data[..kept], page_no * PAGE_SIZE as u64)?;
                    }
                    return Err(f.write_failed(&target));
                }
            }
        }
        // Writes past the current end extend the file (sparse holes read as
        // zeros); needed because a buffer cache may write back dirty pages
        // out of allocation order.
        guard.file.write_all_at(data, page_no * PAGE_SIZE as u64)?;
        guard.pages = guard.pages.max(page_no + 1);
        self.stats.count_physical_write(PAGE_SIZE as u64);
        Ok(())
    }

    /// Appends a page at the end, returning its page number.
    pub fn append_page(&self, id: FileId, data: &[u8]) -> Result<u64> {
        let page_no = self.page_count(id)?;
        self.write_page(id, page_no, data)?;
        Ok(page_no)
    }

    /// Forces file contents to stable storage.
    pub fn sync(&self, id: FileId) -> Result<()> { // xlint: allow(blocking, "fdatasync is the durability point; callers batch via group commit")
        let handle = self.handle(id)?;
        let guard = handle.read();
        if let Some(f) = &self.faults {
            f.on_sync(&crate::faults::target_name(&guard.path))?;
        }
        guard.file.sync_data()?;
        Ok(())
    }

    /// Closes and deletes a file (e.g. merged-away LSM components). The
    /// failpoint is consulted *before* the handle is dropped, so an injected
    /// delete failure leaves both the open handle and the file intact —
    /// callers may retry or defer the cleanup.
    pub fn delete(&self, id: FileId) -> Result<()> { // xlint: allow(blocking, "component delete during recovery/merge retirement; bounded by one unlink")
        if let Some(f) = &self.faults {
            let target = crate::faults::target_name(&self.handle(id)?.read().path);
            f.on_delete(&target)?;
        }
        let handle = self
            .files
            .write()
            .remove(&id)
            .ok_or_else(|| StorageError::NotFound(format!("file id {id:?}")))?;
        let guard = handle.read();
        std::fs::remove_file(&guard.path)?;
        Ok(())
    }

    /// Sequential bulk writer for building an immutable component file.
    /// Pages written through it are counted when [`PageFileWriter::finish`]
    /// flushes.
    pub fn bulk_writer(self: &Arc<Self>, name: &str) -> Result<PageFileWriter> { // xlint: allow(blocking, "bulk writer creation for flush/merge output; one file create")
        if let Some(f) = &self.faults {
            f.check_alive(name)?;
        }
        let path = self.dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(PageFileWriter {
            manager: Arc::clone(self),
            writer: Some(BufWriter::with_capacity(64 * PAGE_SIZE, file)),
            path,
            pages: 0,
        })
    }

    /// Lists files currently open under this manager (name → id).
    pub fn open_files(&self) -> Vec<(String, FileId)> {
        self.files
            .read()
            .iter()
            .map(|(id, f)| {
                let f = f.read();
                let name = f.path.file_name().unwrap_or(f.path.as_os_str());
                (name.to_string_lossy().into_owned(), *id)
            })
            .collect()
    }
}

/// Buffered sequential page writer used by bulk loads (B+ tree / R-tree
/// component construction). Call [`PageFileWriter::finish`] to flush, sync,
/// and register the file read-only with the manager.
pub struct PageFileWriter {
    manager: Arc<FileManager>,
    writer: Option<BufWriter<File>>,
    path: PathBuf,
    pages: u64,
}

impl PageFileWriter {
    /// Appends one page (must be exactly [`PAGE_SIZE`] bytes), returning its
    /// page number.
    pub fn append(&mut self, data: &[u8]) -> Result<u64> { // xlint: allow(blocking, "bulk append on the flush/merge path; page-sized writes")
        if data.len() != PAGE_SIZE {
            return Err(StorageError::Invalid(format!(
                "append requires exactly {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| StorageError::Invalid("writer already finished".into()))?;
        if let Some(f) = self.manager.faults.clone() {
            let target = format!("{}:{}", crate::faults::target_name(&self.path), self.pages);
            match f.on_write(&target, PAGE_SIZE)? {
                WritePlan::Full => {}
                WritePlan::Torn { kept } | WritePlan::Short { kept } => {
                    // flush what was buffered, then persist only a prefix of
                    // this page — the bulk file ends mid-page
                    w.write_all(&data[..kept])?;
                    w.flush()?;
                    return Err(f.write_failed(&target));
                }
            }
        }
        w.write_all(data)?;
        self.manager.stats.count_physical_write(PAGE_SIZE as u64);
        let no = self.pages;
        self.pages += 1;
        Ok(no)
    }

    /// Pages appended so far.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// Flushes, syncs, and registers the file; returns its [`FileId`].
    pub fn finish(mut self) -> Result<FileId> { // xlint: allow(blocking, "bulk-writer finish syncs the new component once before publish")
        let mut w = self
            .writer
            .take()
            .ok_or_else(|| StorageError::Invalid("writer already finished".into()))?;
        w.flush()?;
        let file = w.into_inner().map_err(|e| StorageError::Io(e.into_error()))?;
        if let Some(f) = &self.manager.faults {
            f.on_sync(&crate::faults::target_name(&self.path))?;
        }
        file.sync_data()?;
        Ok(self.manager.register(file, self.path.clone(), self.pages, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::TempDir;

    fn temp_manager() -> (Arc<FileManager>, TempDir) {
        let dir = TempDir::new();
        let stats = IoStats::new();
        let fm = FileManager::new(dir.path(), stats).unwrap();
        (fm, dir)
    }

    #[test]
    fn write_read_pages() {
        let (fm, _d) = temp_manager();
        let id = fm.create("t.pf").unwrap();
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 42;
        assert_eq!(fm.append_page(id, &page).unwrap(), 0);
        page[0] = 43;
        assert_eq!(fm.append_page(id, &page).unwrap(), 1);
        assert_eq!(fm.read_page(id, 0).unwrap()[0], 42);
        assert_eq!(fm.read_page(id, 1).unwrap()[0], 43);
        assert_eq!(fm.page_count(id).unwrap(), 2);
        assert_eq!(fm.stats().physical_writes(), 2);
        assert_eq!(fm.stats().physical_reads(), 2);
    }

    #[test]
    fn in_place_update() {
        let (fm, _d) = temp_manager();
        let id = fm.create("t.pf").unwrap();
        let mut page = vec![1u8; PAGE_SIZE];
        fm.append_page(id, &page).unwrap();
        page[100] = 99;
        fm.write_page(id, 0, &page).unwrap();
        assert_eq!(fm.read_page(id, 0).unwrap()[100], 99);
        assert_eq!(fm.page_count(id).unwrap(), 1);
    }

    #[test]
    fn bounds_and_validation() {
        let (fm, _d) = temp_manager();
        let id = fm.create("t.pf").unwrap();
        assert!(fm.read_page(id, 0).is_err(), "read past end");
        assert!(fm.write_page(id, 0, &[0; 10]).is_err(), "bad size");
        // out-of-order writes extend the file with sparse holes
        fm.write_page(id, 5, &vec![7u8; PAGE_SIZE]).unwrap();
        assert_eq!(fm.page_count(id).unwrap(), 6);
        assert_eq!(fm.read_page(id, 5).unwrap()[0], 7);
        assert_eq!(fm.read_page(id, 2).unwrap()[0], 0, "hole reads as zeros");
    }

    #[test]
    fn bulk_writer_then_reopen() {
        let (fm, d) = temp_manager();
        {
            let mut w = fm.bulk_writer("comp.pf").unwrap();
            for i in 0..5u8 {
                let mut p = vec![i; PAGE_SIZE];
                p[0] = i;
                w.append(&p).unwrap();
            }
            let id = w.finish().unwrap();
            assert_eq!(fm.page_count(id).unwrap(), 5);
            assert_eq!(fm.read_page(id, 3).unwrap()[0], 3);
            // bulk files are read-only after finish
            assert!(fm.write_page(id, 0, &vec![0; PAGE_SIZE]).is_err());
        }
        // a second manager can re-open the persisted file
        let fm2 = FileManager::new(d.path(), IoStats::new()).unwrap();
        let id2 = fm2.open("comp.pf").unwrap();
        assert_eq!(fm2.page_count(id2).unwrap(), 5);
        assert_eq!(fm2.read_page(id2, 4).unwrap()[0], 4);
    }

    #[test]
    fn delete_removes_file() {
        let (fm, d) = temp_manager();
        let id = fm.create("gone.pf").unwrap();
        fm.append_page(id, &vec![0; PAGE_SIZE]).unwrap();
        fm.delete(id).unwrap();
        assert!(!d.path().join("gone.pf").exists());
        assert!(fm.read_page(id, 0).is_err());
    }

    #[test]
    fn open_missing_file_is_not_found() {
        let (fm, _d) = temp_manager();
        match fm.open("nope.pf") {
            Err(StorageError::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
    }
}
