//! The LSM (Log-Structured Merge) index framework (paper Figure 2, Section
//! III item 5): every dataset partition is an LSM B+ tree; secondary indexes
//! are LSM-ified variants sharing this machinery.
//!
//! Writes go to an in-memory component ([`MemComponent`]); when it exceeds its
//! ingestion-buffer budget it is *flushed* — bulk-loaded into an immutable
//! on-disk B+ tree component. Deletes insert tombstones ("anti-matter").
//! Reads consult the memory component and then disk components newest-first,
//! with per-component bloom filters short-circuiting point lookups. A
//! pluggable [`MergePolicy`] decides when to merge disk components
//! (experiment E8 compares the policies).
//!
//! Merging is decoupled from the write path (see [`crate::compaction`]):
//! `flush` publishes the new component and *schedules* a merge — run inline
//! when no executor is installed, or handed to a background executor one
//! morsel at a time. The component list and compaction state live in a
//! shared structure ([`LsmShared`]) so reads and flushes proceed against the
//! pre-merge component list until the merged component atomically swaps in.
//!
//! Retirement ordering invariant: the merged component is inserted into the
//! live list *before* any input file is deleted, and input files are
//! unlinked lazily — when the last snapshot reader drops its reference — so
//! a failed delete is non-fatal cleanup (counted, retried by restart
//! recovery's orphan sweep), never data loss.

use crate::btree::{BTreeBuilder, BTreeRangeIter, DiskBTree};
use crate::cache::BufferCache;
use crate::compaction::{CompactionExec, CompactionState, JobStep, LsmMetricsHub, MergeJob};
use crate::error::{Result, StorageError};
use asterix_adm::binary::compare_keys;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Key wrapper ordering encoded keys by the ADM total order
// ---------------------------------------------------------------------------

/// Encoded composite key ordered by `asterix_adm::binary::compare_keys`
/// (the ADM total order), so `Int(2)` and `Double(2.0)` collide as intended.
#[derive(Debug, Clone)]
pub struct KeyBytes(pub Vec<u8>);

impl PartialEq for KeyBytes {
    fn eq(&self, other: &Self) -> bool {
        compare_keys(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for KeyBytes {}
impl PartialOrd for KeyBytes {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyBytes {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_keys(&self.0, &other.0)
    }
}

// ---------------------------------------------------------------------------
// Entries & memory component
// ---------------------------------------------------------------------------

/// A versioned entry: a value or a delete marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    Put(Vec<u8>),
    Tombstone,
}

impl Entry {
    /// On-disk encoding: marker byte + payload.
    fn encode(&self) -> Vec<u8> {
        match self {
            Entry::Put(v) => {
                let mut out = Vec::with_capacity(v.len() + 1);
                out.push(0);
                out.extend_from_slice(v);
                out
            }
            Entry::Tombstone => vec![1],
        }
    }

    fn decode(buf: &[u8]) -> Result<Entry> {
        match buf.first() {
            Some(0) => Ok(Entry::Put(buf[1..].to_vec())),
            Some(1) => Ok(Entry::Tombstone),
            _ => Err(StorageError::Corrupt("bad LSM entry marker".into())),
        }
    }
}

/// The in-memory (ingestion-buffer) component: an ordered map plus a byte
/// budget (Figure 2's "LSM memory components" slice of node memory).
#[derive(Debug, Default)]
pub struct MemComponent {
    map: BTreeMap<KeyBytes, Entry>,
    bytes: usize,
}

impl MemComponent {
    /// Creates an empty memory component.
    pub fn new() -> Self {
        MemComponent::default()
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate buffered bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Inserts/overwrites a key.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.bytes += key.len() + value.len() + 32;
        self.map.insert(KeyBytes(key), Entry::Put(value));
    }

    /// Inserts a tombstone.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.bytes += key.len() + 32;
        self.map.insert(KeyBytes(key), Entry::Tombstone);
    }

    /// Latest entry for `key`, if buffered here.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(&KeyBytes(key.to_vec()))
    }

    /// Ordered iteration over all buffered entries.
    pub fn iter(&self) -> impl Iterator<Item = (&KeyBytes, &Entry)> {
        self.map.iter()
    }

    /// Ordered iteration over a key range.
    pub fn range(
        &self,
        lo: Bound<Vec<u8>>,
        hi: Bound<Vec<u8>>,
    ) -> impl Iterator<Item = (&KeyBytes, &Entry)> {
        self.map.range((lo.map(KeyBytes), hi.map(KeyBytes)))
    }
}

// ---------------------------------------------------------------------------
// Merge policies
// ---------------------------------------------------------------------------

/// Internal fanout of the [`MergePolicy::Leveled`] policy: a component may
/// absorb the run of older components whose cumulative size stays within
/// this multiple of the run so far (geometric levels, ratio ~10).
const LEVELED_FANOUT: u64 = 10;

/// When to merge disk components (paper §III item 5; experiment E8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergePolicy {
    /// Never merge: cheapest writes, reads degrade with component count.
    NoMerge,
    /// Keep at most `max_components` disk components; merge all into one when
    /// exceeded (AsterixDB's "constant" policy).
    Constant { max_components: usize },
    /// AsterixDB's default "prefix" policy: merge the run of newest
    /// components that are each smaller than `max_mergable_bytes` once the
    /// run is longer than `max_tolerance_components`.
    Prefix {
        max_mergable_bytes: u64,
        max_tolerance_components: usize,
    },
    /// Read-optimized: merge greedily so component sizes form geometric
    /// levels (fanout 10). Few, large components keep read amplification
    /// near 1 at the cost of rewriting data on most flushes.
    Leveled,
    /// Write-optimized: accumulate `size_ratio` similar-sized components
    /// before merging them into the next tier (RocksDB "universal" shape).
    /// Bigger ratios mean cheaper writes and more components to read.
    Tiered { size_ratio: u64 },
}

impl MergePolicy {
    /// Given newest-first component sizes, returns the index range
    /// `[0, n)` of newest components to merge, or `None`.
    pub fn pick_merge(&self, sizes: &[u64]) -> Option<usize> {
        if sizes.len() < 2 {
            return None;
        }
        match *self {
            MergePolicy::NoMerge => None,
            MergePolicy::Constant { max_components } => {
                (sizes.len() > max_components.max(1)).then_some(sizes.len())
            }
            MergePolicy::Prefix { max_mergable_bytes, max_tolerance_components } => {
                let mut run = 0usize;
                let mut total = 0u64;
                for &s in sizes {
                    if s < max_mergable_bytes && total + s <= max_mergable_bytes.saturating_mul(2)
                    {
                        run += 1;
                        total += s;
                    } else {
                        break;
                    }
                }
                (run >= 2 && run > max_tolerance_components).then_some(run)
            }
            MergePolicy::Leveled => {
                let mut total = sizes[0];
                let mut run = 1usize;
                for &s in &sizes[1..] {
                    if s <= total.saturating_mul(LEVELED_FANOUT) {
                        run += 1;
                        total = total.saturating_add(s);
                    } else {
                        break;
                    }
                }
                (run >= 2).then_some(run)
            }
            MergePolicy::Tiered { size_ratio } => {
                let t = size_ratio.max(2);
                let mut lo = sizes[0].max(1);
                let mut hi = lo;
                let mut run = 1usize;
                for &s in &sizes[1..] {
                    let s = s.max(1);
                    let nlo = lo.min(s);
                    let nhi = hi.max(s);
                    if nhi < nlo.saturating_mul(t) {
                        run += 1;
                        lo = nlo;
                        hi = nhi;
                    } else {
                        break;
                    }
                }
                (run as u64 >= t && run >= 2).then_some(run)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration & statistics
// ---------------------------------------------------------------------------

/// Configuration of one LSM index.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Component-file name prefix (unique per index per partition).
    pub name: String,
    /// Memory-component budget in bytes; exceeding it triggers a flush.
    pub mem_budget: usize,
    /// Merge policy.
    pub merge_policy: MergePolicy,
    /// Attach bloom filters to disk components.
    pub bloom: bool,
    /// Compress values in disk components (paper §VII's storage compression).
    pub compress_values: bool,
}

impl LsmConfig {
    /// A sensible default configuration for tests and examples.
    pub fn new(name: impl Into<String>) -> Self {
        LsmConfig {
            name: name.into(),
            mem_budget: 1 << 20,
            merge_policy: MergePolicy::Prefix {
                max_mergable_bytes: 16 << 20,
                max_tolerance_components: 4,
            },
            bloom: true,
            compress_values: false,
        }
    }
}

/// Lifetime counters for an LSM index.
#[derive(Debug, Default, Clone, Copy)]
pub struct LsmStats {
    pub flushes: u64,
    pub merges: u64,
    /// Merges that were cancelled or failed; the pre-merge component list
    /// stays live, so an abort costs wasted work, never correctness.
    pub merges_aborted: u64,
    /// Entries written to disk across flushes and merges (write-amp numerator).
    pub entries_written: u64,
    /// Entries ingested by the application (write-amp denominator).
    pub entries_ingested: u64,
    /// Write-path time spent inside flush-triggered merge scheduling (for
    /// foreground merges, the whole merge), in nanoseconds.
    pub merge_stall_ns: u64,
    /// Retirement deletes that failed (non-fatal cleanup; restart recovery
    /// sweeps the orphaned files).
    pub retire_failures: u64,
}

impl LsmStats {
    /// Write amplification: disk entries written per ingested entry.
    pub fn write_amplification(&self) -> f64 {
        if self.entries_ingested == 0 {
            0.0
        } else {
            self.entries_written as f64 / self.entries_ingested as f64
        }
    }
}

/// Atomic backing for [`LsmStats`], shared between the tree handle and
/// in-flight background merge jobs.
#[derive(Debug)]
struct SharedStats {
    flushes: AtomicU64,
    merges: AtomicU64,
    merges_aborted: AtomicU64,
    entries_written: AtomicU64,
    entries_ingested: AtomicU64,
    merge_stall_ns: AtomicU64,
    reads: AtomicU64,
    retire_failures: Arc<AtomicU64>,
}

impl Default for SharedStats {
    fn default() -> Self {
        SharedStats {
            flushes: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merges_aborted: AtomicU64::new(0),
            entries_written: AtomicU64::new(0),
            entries_ingested: AtomicU64::new(0),
            merge_stall_ns: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            retire_failures: Arc::new(AtomicU64::new(0)),
        }
    }
}

// ---------------------------------------------------------------------------
// Disk components
// ---------------------------------------------------------------------------

/// One immutable on-disk component. Shared (`Arc`) between the live list and
/// any read snapshots or in-flight merges; once marked retired, the backing
/// file is closed and deleted when the **last** holder drops its reference,
/// so readers never observe a vanishing file and a failed delete can only
/// ever leak a file, not published data.
pub(crate) struct DiskComponent {
    pub(crate) id: u64,
    pub(crate) tree: DiskBTree,
    pub(crate) size_bytes: u64,
    cache: Arc<BufferCache>,
    retire: AtomicBool,
    retire_failures: Arc<AtomicU64>,
    hub: Arc<LsmMetricsHub>,
}

impl DiskComponent {
    /// Marks the component merged-away: its file is deleted on last drop.
    fn mark_retired(&self) {
        self.retire.store(true, AtomicOrdering::Release);
    }
}

impl Drop for DiskComponent {
    fn drop(&mut self) {
        if !self.retire.load(AtomicOrdering::Acquire) {
            return;
        }
        self.cache.close_file(self.tree.file());
        if self.cache.manager().delete(self.tree.file()).is_err() {
            // Non-fatal cleanup failure: the merged data is already
            // published; the orphaned file is reclaimed by restart
            // recovery's component sweep.
            self.retire_failures.fetch_add(1, AtomicOrdering::Relaxed);
            self.hub.count_retire_failure();
        }
    }
}

// ---------------------------------------------------------------------------
// Resumable merge state
// ---------------------------------------------------------------------------

/// In-progress k-way merge: iterator heads plus the output builder. Owned by
/// a [`MergeJob`] and advanced one morsel at a time.
pub(crate) struct MergeRun {
    /// Pre-allocated id of the output component.
    id: u64,
    iters: Vec<std::iter::Peekable<BTreeRangeIter>>,
    builder: Option<BTreeBuilder>,
    written: u64,
}

impl MergeRun {
    /// Entries emitted into the output component so far.
    pub(crate) fn written(&self) -> u64 {
        self.written
    }
}

// ---------------------------------------------------------------------------
// Shared tree state
// ---------------------------------------------------------------------------

/// Window of (reads + ingests) between autotuner policy decisions.
pub const AUTO_TUNE_WINDOW: u64 = 1024;

/// State shared between the [`LsmTree`] handle and background merge jobs:
/// the component list, the compaction state machine, the active policy, and
/// the counters. Lock order: `state` may be taken before `disk`; `policy`,
/// `exec`, and the mark mutexes are leaves. No I/O and no component drops
/// happen while holding `state` or `disk`.
pub(crate) struct LsmShared {
    cache: Arc<BufferCache>,
    config: LsmConfig,
    /// The active policy; starts as `config.merge_policy`, possibly swapped
    /// by the autotuner or `set_merge_policy`.
    policy: Mutex<MergePolicy>,
    /// Disk components, newest first.
    disk: Mutex<Vec<Arc<DiskComponent>>>,
    state: Mutex<CompactionState>,
    state_changed: Condvar,
    next_component_id: AtomicU64,
    stats: SharedStats,
    exec: Mutex<Option<CompactionExec>>,
    auto_tune: AtomicBool,
    /// (reads, entries_ingested) at the last autotune decision.
    tune_mark: Mutex<(u64, u64)>,
    /// Whether this tree currently contributes to the hub's in-flight gauge.
    inflight: AtomicBool,
    /// (total bytes, live bytes) last reported to the hub's space counters.
    space_mark: Mutex<(u64, u64)>,
    hub: Arc<LsmMetricsHub>,
}

impl LsmShared {
    fn new_component(&self, id: u64, tree: DiskBTree, size_bytes: u64) -> DiskComponent {
        DiskComponent {
            id,
            tree,
            size_bytes,
            cache: Arc::clone(&self.cache),
            retire: AtomicBool::new(false),
            retire_failures: Arc::clone(&self.stats.retire_failures),
            hub: Arc::clone(&self.hub),
        }
    }

    /// Applies the optional value compression at the disk boundary.
    fn encode_disk(&self, raw: &[u8]) -> Vec<u8> {
        if self.config.compress_values {
            crate::compress::compress(raw)
        } else {
            raw.to_vec()
        }
    }

    /// Reverses [`LsmShared::encode_disk`].
    fn decode_disk(&self, raw: &[u8]) -> Result<Vec<u8>> {
        if self.config.compress_values {
            crate::compress::decompress(raw).map_err(StorageError::Corrupt)
        } else {
            Ok(raw.to_vec())
        }
    }

    /// Snapshot of the live component list (cheap `Arc` clones).
    fn snapshot(&self) -> Vec<Arc<DiskComponent>> {
        self.disk.lock().clone()
    }

    /// Re-reports this tree's space contribution to the hub. Called with the
    /// `disk` guard held by the caller (the list must not move underneath).
    fn refresh_space(&self, disk: &[Arc<DiskComponent>]) {
        let total: u64 = disk.iter().map(|c| c.size_bytes).sum();
        let live: u64 = disk.iter().map(|c| c.size_bytes).max().unwrap_or(0);
        let mut mark = self.space_mark.lock();
        self.hub.adjust_space(total as i64 - mark.0 as i64, live as i64 - mark.1 as i64);
        *mark = (total, live);
    }

    /// Runs the active policy over the current list; returns the newest-run
    /// snapshot to merge and whether it includes the oldest component.
    fn pick_candidate(
        &self,
        disk: &[Arc<DiskComponent>],
    ) -> Option<(Vec<Arc<DiskComponent>>, bool)> {
        let sizes: Vec<u64> = disk.iter().map(|c| c.size_bytes).collect();
        let n = self.policy.lock().pick_merge(&sizes)?;
        let n = n.min(disk.len());
        if n < 2 {
            return None;
        }
        Some((disk[..n].to_vec(), n == disk.len()))
    }

    /// The autotuner: once a window of traffic accumulates, pick the policy
    /// that matches the observed read/write mix — read-heavy gets `Leveled`,
    /// write-heavy gets `Tiered`, mixed falls back to the configured policy.
    fn maybe_autotune(&self) {
        if !self.auto_tune.load(AtomicOrdering::Acquire) {
            return;
        }
        let reads = self.stats.reads.load(AtomicOrdering::Relaxed);
        let writes = self.stats.entries_ingested.load(AtomicOrdering::Relaxed);
        let mut mark = self.tune_mark.lock(); // xlint: lock(lsm_tune_mark)
        let dr = reads.saturating_sub(mark.0);
        let dw = writes.saturating_sub(mark.1);
        if dr + dw < AUTO_TUNE_WINDOW {
            return;
        }
        *mark = (reads, writes);
        drop(mark);
        let next = if dr >= dw.saturating_mul(3) {
            MergePolicy::Leveled
        } else if dw >= dr.saturating_mul(3) {
            MergePolicy::Tiered { size_ratio: 4 }
        } else {
            self.config.merge_policy
        };
        *self.policy.lock() = next; // xlint: lock(lsm_policy)
    }

    /// Runs the policy and, when it fires, transitions idle → merging and
    /// either submits the job to the installed executor or drives it inline.
    /// Inline mode loops until the policy is satisfied (the cascade fix);
    /// background jobs cascade by re-invoking this on completion.
    pub(crate) fn schedule_merge(self: &Arc<Self>) -> Result<()> {
        loop {
            self.maybe_autotune();
            let exec = self.exec.lock().clone();
            let job = {
                let mut st = self.state.lock(); // xlint: lock(lsm_state)
                if !matches!(*st, CompactionState::Idle) {
                    return Ok(()); // one merge in flight per tree
                }
                let disk = self.disk.lock(); // xlint: lock(lsm_disk)
                let Some((comps, includes_oldest)) = self.pick_candidate(&disk) else {
                    return Ok(());
                };
                drop(disk);
                let cancel = Arc::new(AtomicBool::new(false));
                *st = CompactionState::Merging {
                    ids: comps.iter().map(|c| c.id).collect(),
                    cancel: Arc::clone(&cancel),
                };
                if !self.inflight.swap(true, AtomicOrdering::AcqRel) {
                    self.hub.merge_started();
                }
                Arc::new(MergeJob::new(
                    Arc::clone(self),
                    comps,
                    includes_oldest,
                    cancel,
                    exec.is_some(),
                ))
            };
            match exec {
                Some(e) => {
                    e.offload(job);
                    return Ok(());
                }
                None => {
                    while job.advance()? == JobStep::Again {}
                }
            }
        }
    }

    /// Opens a merge over `comps`: allocates the output component and the
    /// per-input scan iterators. Pure I/O setup; holds no tree locks.
    pub(crate) fn merge_open(&self, comps: &[Arc<DiskComponent>]) -> Result<MergeRun> {
        let id = self.next_component_id.fetch_add(1, AtomicOrdering::Relaxed); // xlint: ordering(component-id allocation; uniqueness only, publication via the disk-list lock)
        let name = format!("{}_c{}.btree", self.config.name, id);
        let writer = self.cache.manager().bulk_writer(&name)?;
        let expected: u64 = comps.iter().map(|c| c.tree.len()).sum();
        let builder =
            BTreeBuilder::new(writer, if self.config.bloom { expected as usize } else { 0 });
        let mut iters = Vec::with_capacity(comps.len());
        for comp in comps {
            iters.push(comp.tree.scan()?.peekable());
        }
        Ok(MergeRun { id, iters, builder: Some(builder), written: 0 })
    }

    /// Advances the k-way merge by up to `budget` input keys (newest rank
    /// wins on duplicates; dead tombstones dropped when the run includes the
    /// oldest component). Returns `true` once every input is exhausted.
    pub(crate) fn merge_step(
        &self,
        run: &mut MergeRun,
        budget: usize,
        includes_oldest: bool,
    ) -> Result<bool> {
        let MergeRun { iters, builder, written, .. } = run;
        let builder = builder
            .as_mut()
            .ok_or_else(|| StorageError::Invalid("merge already finished".into()))?;
        for _ in 0..budget.max(1) {
            // find the smallest key among iterator heads; prefer lowest rank
            let mut best: Option<(usize, Vec<u8>)> = None;
            for (rank, it) in iters.iter_mut().enumerate() {
                let head = match it.peek() {
                    None => continue,
                    Some(Err(_)) => {
                        // surface the error
                        return Err(match it.next() {
                            Some(Err(e)) => e,
                            _ => StorageError::Corrupt(
                                "merge iterator lost its error head".into(),
                            ),
                        });
                    }
                    Some(Ok((k, _))) => k.clone(),
                };
                best = match best {
                    None => Some((rank, head)),
                    Some((brank, bkey)) => {
                        if compare_keys(&head, &bkey) == Ordering::Less {
                            Some((rank, head))
                        } else {
                            Some((brank, bkey))
                        }
                    }
                };
            }
            let Some((winner_rank, winner_key)) = best else { return Ok(true) };
            // consume the winner's entry and any duplicates in older comps
            let Some(winner) = iters[winner_rank].next() else {
                return Err(StorageError::Corrupt(
                    "merge winner iterator emptied between peek and next".into(),
                ));
            };
            let (_, raw) = winner?;
            for (rank, it) in iters.iter_mut().enumerate() {
                if rank == winner_rank {
                    continue;
                }
                while matches!(it.peek(), Some(Ok((k, _))) if compare_keys(k, &winner_key) == Ordering::Equal)
                {
                    it.next();
                }
            }
            let entry = Entry::decode(&self.decode_disk(&raw)?)?;
            if matches!(entry, Entry::Tombstone) && includes_oldest {
                continue; // drop dead tombstones (still costs budget)
            }
            // stored bytes move as-is: merges never recompress
            builder.add(&winner_key, &raw)?;
            *written += 1;
        }
        Ok(false)
    }

    /// Seals the merge output into a new disk component (not yet published).
    pub(crate) fn merge_finish(&self, mut run: MergeRun) -> Result<Arc<DiskComponent>> {
        let builder = run
            .builder
            .take()
            .ok_or_else(|| StorageError::Invalid("merge already finished".into()))?;
        let built = builder.finish()?;
        let size_bytes = self.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let tree = DiskBTree::from_built(Arc::clone(&self.cache), built);
        Ok(Arc::new(self.new_component(run.id, tree, size_bytes)))
    }

    /// Atomically swaps the merged component in for its inputs, then retires
    /// the inputs. Publish-first is the data-loss fix: by the time any input
    /// file can be deleted, the merged entries are already in the live list.
    pub(crate) fn complete_merge(
        self: &Arc<Self>,
        inputs: Vec<Arc<DiskComponent>>,
        new_comp: Arc<DiskComponent>,
        written: u64,
        cascade: bool,
    ) {
        let ids: Vec<u64> = inputs.iter().map(|c| c.id).collect();
        {
            let mut disk = self.disk.lock();
            // Flushes only ever prepend, so the inputs still sit contiguously
            // wherever the newest of them now is.
            let pos = disk
                .iter()
                .position(|c| ids.contains(&c.id))
                .unwrap_or(disk.len());
            disk.retain(|c| !ids.contains(&c.id));
            let pos = pos.min(disk.len());
            disk.insert(pos, new_comp);
            self.refresh_space(&disk);
        }
        {
            let mut st = self.state.lock();
            *st = CompactionState::Retiring;
        }
        for comp in &inputs {
            comp.mark_retired();
        }
        // The input files unlink here unless a read snapshot still holds
        // them; a failed delete is counted, never propagated.
        drop(inputs);
        self.stats.merges.fetch_add(1, AtomicOrdering::Relaxed);
        self.stats.entries_written.fetch_add(written, AtomicOrdering::Relaxed);
        self.hub.count_written(written);
        self.to_idle();
        if cascade {
            // Background mode: re-run the policy over the post-merge list.
            // Errors surface through merges_aborted, not the write path.
            let _ = self.schedule_merge();
        }
    }

    /// Records an aborted/cancelled/failed merge and returns to idle. The
    /// partial output file (if any) is an orphan; restart recovery's
    /// component sweep removes it.
    pub(crate) fn merge_aborted(&self) {
        self.stats.merges_aborted.fetch_add(1, AtomicOrdering::Relaxed);
        self.to_idle();
    }

    fn to_idle(&self) {
        {
            let mut st = self.state.lock();
            *st = CompactionState::Idle;
            self.state_changed.notify_all();
        }
        if self.inflight.swap(false, AtomicOrdering::AcqRel) {
            self.hub.merge_finished();
        }
    }

    /// Blocks until the state machine is idle or `deadline` passes.
    fn wait_idle_until(&self, deadline: Instant) -> bool { // xlint: allow(blocking, "deadline-bounded quiesce wait; only called from foreground merge/drop paths, never from a pool worker")
        let mut st = self.state.lock();
        while !matches!(*st, CompactionState::Idle) {
            let Some(left) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                return false;
            };
            if self.state_changed.wait_for(&mut st, left).timed_out() {
                return matches!(*st, CompactionState::Idle);
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// The LSM tree
// ---------------------------------------------------------------------------

/// An LSM B+ tree index over encoded composite keys.
pub struct LsmTree {
    shared: Arc<LsmShared>,
    mem: MemComponent,
}

impl LsmTree {
    /// Creates an empty LSM tree. Amplification counters feed the node-wide
    /// hub reachable through the cache's [`crate::IoStats`].
    pub fn new(cache: Arc<BufferCache>, config: LsmConfig) -> Self {
        let hub = Arc::clone(cache.stats().lsm());
        let shared = Arc::new(LsmShared {
            policy: Mutex::new(config.merge_policy),
            cache,
            config,
            disk: Mutex::new(Vec::new()),
            state: Mutex::new(CompactionState::Idle),
            state_changed: Condvar::new(),
            next_component_id: AtomicU64::new(1),
            stats: SharedStats::default(),
            exec: Mutex::new(None),
            auto_tune: AtomicBool::new(false),
            tune_mark: Mutex::new((0, 0)),
            inflight: AtomicBool::new(false),
            space_mark: Mutex::new((0, 0)),
            hub,
        });
        LsmTree { shared, mem: MemComponent::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.shared.config
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> LsmStats {
        let s = &self.shared.stats;
        LsmStats {
            flushes: s.flushes.load(AtomicOrdering::Relaxed),
            merges: s.merges.load(AtomicOrdering::Relaxed),
            merges_aborted: s.merges_aborted.load(AtomicOrdering::Relaxed),
            entries_written: s.entries_written.load(AtomicOrdering::Relaxed),
            entries_ingested: s.entries_ingested.load(AtomicOrdering::Relaxed),
            merge_stall_ns: s.merge_stall_ns.load(AtomicOrdering::Relaxed),
            retire_failures: s.retire_failures.load(AtomicOrdering::Relaxed),
        }
    }

    /// Installs a background executor: from now on scheduled merges run off
    /// the write path, one morsel per step.
    pub fn set_executor(&self, exec: CompactionExec) {
        *self.shared.exec.lock() = Some(exec);
    }

    /// Enables/disables the merge-policy autotuner (see
    /// [`AUTO_TUNE_WINDOW`]).
    pub fn set_auto_tune(&self, on: bool) {
        self.shared.auto_tune.store(on, AtomicOrdering::Release);
    }

    /// Replaces the active merge policy (what the autotuner does internally).
    /// Takes effect at the next scheduling point; a long backlog converges
    /// because scheduling loops until the policy is satisfied.
    pub fn set_merge_policy(&self, policy: MergePolicy) {
        *self.shared.policy.lock() = policy;
    }

    /// The currently active merge policy (configured or autotuned).
    pub fn current_policy(&self) -> MergePolicy {
        *self.shared.policy.lock()
    }

    /// Name of the compaction state machine's current state
    /// (`idle`/`merging`/`retiring`), for diagnostics and tests.
    pub fn compaction_state(&self) -> &'static str {
        self.shared.state.lock().name()
    }

    /// Component ids covered by the in-flight merge (empty when no merge is
    /// running): the `merging{range}` half of the state machine.
    pub fn merging_range(&self) -> Vec<u64> {
        self.shared
            .state
            .lock()
            .merging_ids()
            .map(<[u64]>::to_vec)
            .unwrap_or_default()
    }

    /// Blocks until no merge is in flight **and** the policy has no more
    /// work, scheduling as needed (quiesce for benches/tests). Returns
    /// `false` on timeout or if a merge aborts while waiting.
    pub fn wait_merges_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let aborted0 = self.shared.stats.merges_aborted.load(AtomicOrdering::Relaxed);
        loop {
            if !self.shared.wait_idle_until(deadline) {
                return false;
            }
            if self.shared.stats.merges_aborted.load(AtomicOrdering::Relaxed) > aborted0 {
                return false;
            }
            {
                let disk = self.shared.disk.lock();
                if self.shared.pick_candidate(&disk).is_none() {
                    return true;
                }
            }
            if self.shared.schedule_merge().is_err() {
                return false;
            }
        }
    }

    /// Number of disk components.
    pub fn component_count(&self) -> usize {
        self.shared.disk.lock().len()
    }

    /// Entries currently buffered in memory.
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }

    /// Inserts or replaces `key`. Flushes automatically past the budget.
    pub fn upsert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.shared.stats.entries_ingested.fetch_add(1, AtomicOrdering::Relaxed);
        self.shared.hub.count_ingested(1);
        self.mem.put(key, value);
        self.maybe_flush()
    }

    /// Deletes `key` (tombstone insert).
    pub fn delete(&mut self, key: Vec<u8>) -> Result<()> {
        self.shared.stats.entries_ingested.fetch_add(1, AtomicOrdering::Relaxed);
        self.shared.hub.count_ingested(1);
        self.mem.delete(key);
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem.bytes() > self.shared.config.mem_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// Point lookup: memory component, then disk components newest-first.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shared.stats.reads.fetch_add(1, AtomicOrdering::Relaxed);
        match self.mem.get(key) {
            Some(Entry::Put(v)) => {
                self.shared.hub.count_read(0);
                return Ok(Some(v.clone()));
            }
            Some(Entry::Tombstone) => {
                self.shared.hub.count_read(0);
                return Ok(None);
            }
            None => {}
        }
        let disk = self.shared.snapshot();
        let mut probes = 0u64;
        let mut found = None;
        for comp in &disk {
            if !comp.tree.may_contain(key) {
                continue;
            }
            probes += 1;
            if let Some(raw) = comp.tree.get(key)? {
                found = Some(raw);
                break;
            }
        }
        self.shared.hub.count_read(probes);
        match found {
            None => Ok(None),
            Some(raw) => {
                let raw = self.shared.decode_disk(&raw)?;
                match Entry::decode(&raw)? {
                    Entry::Put(v) => Ok(Some(v)),
                    Entry::Tombstone => Ok(None),
                }
            }
        }
    }

    /// Forces the memory component to disk as a new component, then
    /// *schedules* merging: with a background executor installed the write
    /// path only pays the scheduling cost (measured into `merge_stall_ns`);
    /// without one the merge runs inline, as before.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let shared = &self.shared;
        let id = shared.next_component_id.fetch_add(1, AtomicOrdering::Relaxed); // xlint: ordering(component-id allocation; uniqueness only, publication via the disk-list lock)
        let name = format!("{}_c{}.btree", shared.config.name, id);
        let writer = shared.cache.manager().bulk_writer(&name)?;
        let expected = if shared.config.bloom { self.mem.len() } else { 0 };
        let mut builder = BTreeBuilder::new(writer, expected);
        let mut written = 0u64;
        for (k, e) in self.mem.iter() {
            let raw = shared.encode_disk(&e.encode());
            builder.add(&k.0, &raw)?;
            written += 1;
        }
        let built = builder.finish()?;
        let size_bytes = shared.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let tree = DiskBTree::from_built(Arc::clone(&shared.cache), built);
        let comp = Arc::new(shared.new_component(id, tree, size_bytes));
        {
            let mut disk = shared.disk.lock();
            disk.insert(0, comp);
            shared.refresh_space(&disk);
        }
        self.mem = MemComponent::new();
        shared.stats.flushes.fetch_add(1, AtomicOrdering::Relaxed);
        shared.stats.entries_written.fetch_add(written, AtomicOrdering::Relaxed);
        shared.hub.count_written(written);
        let start = Instant::now();
        let result = self.shared.schedule_merge();
        let stall = start.elapsed().as_nanos() as u64;
        shared.stats.merge_stall_ns.fetch_add(stall, AtomicOrdering::Relaxed);
        shared.hub.add_stall_ns(stall);
        result
    }

    /// Merges the `n` newest disk components into one, inline on this
    /// thread (waits for any background merge to drain first).
    pub fn merge_newest(&mut self, n: usize) -> Result<()> {
        let shared = Arc::clone(&self.shared);
        if !shared.wait_idle_until(Instant::now() + Duration::from_secs(60)) {
            return Err(StorageError::Invalid(
                "merge_newest timed out waiting for the in-flight merge".into(),
            ));
        }
        let job = {
            let mut st = shared.state.lock(); // xlint: lock(lsm_state)
            if !matches!(*st, CompactionState::Idle) {
                return Ok(());
            }
            let disk = shared.disk.lock(); // xlint: lock(lsm_disk)
            let n = n.min(disk.len());
            if n < 2 {
                return Ok(());
            }
            let comps: Vec<Arc<DiskComponent>> = disk[..n].to_vec();
            let includes_oldest = n == disk.len();
            drop(disk);
            let cancel = Arc::new(AtomicBool::new(false));
            *st = CompactionState::Merging {
                ids: comps.iter().map(|c| c.id).collect(),
                cancel: Arc::clone(&cancel),
            };
            if !shared.inflight.swap(true, AtomicOrdering::AcqRel) {
                shared.hub.merge_started();
            }
            MergeJob::new(shared.clone(), comps, includes_oldest, cancel, false)
        };
        let start = Instant::now();
        let result = (|| {
            while job.advance()? == JobStep::Again {}
            Ok(())
        })();
        let stall = start.elapsed().as_nanos() as u64;
        shared.stats.merge_stall_ns.fetch_add(stall, AtomicOrdering::Relaxed);
        shared.hub.add_stall_ns(stall);
        result
    }

    /// Ordered scan over `[lo, hi]`, resolving versions (newest wins) and
    /// dropping tombstones. Returns materialized pairs.
    pub fn range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Snapshot the component list: the scan sees a consistent pre- or
        // post-merge view, and snapshot refs keep retired files alive.
        let disk = self.shared.snapshot();
        // Collect per-source ordered streams: rank 0 = memory (newest).
        type EntryStream<'a> = Box<dyn Iterator<Item = Result<(Vec<u8>, Entry)>> + 'a>;
        let mut streams: Vec<EntryStream<'_>> = Vec::new();
        let mem_lo = match lo {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mem_hi = match hi {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        streams.push(Box::new(
            self.mem
                .range(mem_lo, mem_hi)
                .map(|(k, e)| Ok((k.0.clone(), e.clone()))),
        ));
        for comp in &disk {
            let hi_owned = match hi {
                Bound::Included(k) => Bound::Included(k.to_vec()),
                Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
                Bound::Unbounded => Bound::Unbounded,
            };
            let it = comp.tree.range(lo, hi_owned)?;
            let compressed = self.shared.config.compress_values;
            streams.push(Box::new(it.map(move |r| {
                r.and_then(|(k, raw)| {
                    let raw = if compressed {
                        crate::compress::decompress(&raw).map_err(StorageError::Corrupt)?
                    } else {
                        raw
                    };
                    Ok((k, Entry::decode(&raw)?))
                })
            })));
        }
        // K-way merge with rank preference.
        let mut iters: Vec<_> = streams.into_iter().map(|s| s.peekable()).collect();
        let mut out = Vec::new();
        loop {
            let mut best: Option<(usize, Vec<u8>)> = None;
            for (rank, it) in iters.iter_mut().enumerate() {
                let head = match it.peek() {
                    None => continue,
                    Some(Err(_)) => {
                        return Err(match it.next() {
                            Some(Err(e)) => e,
                            _ => StorageError::Corrupt(
                                "range iterator lost its error head".into(),
                            ),
                        })
                    }
                    Some(Ok((k, _))) => k.clone(),
                };
                best = match best.take() {
                    None => Some((rank, head)),
                    Some((brank, bkey)) => {
                        if compare_keys(&head, &bkey) == Ordering::Less {
                            Some((rank, head))
                        } else {
                            Some((brank, bkey))
                        }
                    }
                };
            }
            let Some((winner_rank, winner_key)) = best else { break };
            let Some(winner) = iters[winner_rank].next() else {
                return Err(StorageError::Corrupt(
                    "range winner iterator emptied between peek and next".into(),
                ));
            };
            let (_, entry) = winner?;
            for (rank, it) in iters.iter_mut().enumerate() {
                if rank == winner_rank {
                    continue;
                }
                while matches!(it.peek(), Some(Ok((k, _))) if compare_keys(k, &winner_key) == Ordering::Equal)
                {
                    it.next();
                }
            }
            if let Entry::Put(v) = entry {
                out.push((winner_key, v));
            }
        }
        Ok(out)
    }

    /// Full ordered scan (tombstones resolved).
    pub fn scan(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Live entry count (scans; intended for tests and small datasets).
    pub fn count(&self) -> Result<usize> {
        Ok(self.scan()?.len())
    }
}

impl Drop for LsmTree {
    fn drop(&mut self) {
        // Ask any in-flight background merge to stop at its next morsel; the
        // job holds its own `Arc<LsmShared>`, so this is a courtesy, not a
        // correctness requirement.
        if let CompactionState::Merging { cancel, .. } = &*self.shared.state.lock() {
            cancel.store(true, AtomicOrdering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::{BackgroundExecutor, BackgroundJob, ThreadExecutor};
    use crate::faults::{FaultConfig, FaultInjector};
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;
    use asterix_adm::binary::encode_key;
    use asterix_adm::Value;

    fn setup() -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, 256), dir)
    }

    fn setup_faulty(config: FaultConfig) -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::with_faults(dir.path(), IoStats::new(), Some(FaultInjector::new(config)))
            .unwrap();
        (BufferCache::new(fm, 256), dir)
    }

    fn k(i: i64) -> Vec<u8> {
        encode_key(&[Value::Int(i)])
    }

    fn small_config(name: &str, policy: MergePolicy) -> LsmConfig {
        LsmConfig {
            name: name.into(),
            mem_budget: 4 << 10, // tiny: force frequent flushes
            merge_policy: policy,
            bloom: true,
            compress_values: false,
        }
    }

    /// A config that never auto-flushes, for tests shaping components by hand.
    fn manual_config(name: &str, policy: MergePolicy) -> LsmConfig {
        LsmConfig { mem_budget: 1 << 30, ..small_config(name, policy) }
    }

    #[test]
    fn upsert_get_across_flushes() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..2_000 {
            t.upsert(k(i), format!("v{i}").into_bytes()).unwrap();
        }
        assert!(t.component_count() > 1, "flushes happened");
        for i in (0..2_000).step_by(97) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), format!("v{i}").into_bytes());
        }
        assert!(t.get(&k(5_000)).unwrap().is_none());
    }

    #[test]
    fn newest_version_wins() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        t.upsert(k(1), b"old".to_vec()).unwrap();
        t.flush().unwrap();
        t.upsert(k(1), b"new".to_vec()).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"new");
        t.flush().unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"new");
        assert_eq!(t.scan().unwrap().len(), 1);
    }

    #[test]
    fn tombstones_mask_older_components() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..50 {
            t.delete(k(i)).unwrap();
        }
        assert!(t.get(&k(10)).unwrap().is_none());
        assert_eq!(t.get(&k(60)).unwrap().unwrap(), b"v");
        t.flush().unwrap();
        assert!(t.get(&k(10)).unwrap().is_none(), "tombstone flushed");
        assert_eq!(t.count().unwrap(), 50);
    }

    #[test]
    fn range_resolves_versions_and_tombstones() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v1".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in (0..100).step_by(2) {
            t.upsert(k(i), b"v2".to_vec()).unwrap();
        }
        for i in (1..100).step_by(10) {
            t.delete(k(i)).unwrap();
        }
        let lo = k(0);
        let hi = k(20);
        let items = t.range(Bound::Included(&lo), Bound::Included(&hi)).unwrap();
        // keys 0..=20, minus deleted 1 and 11
        assert_eq!(items.len(), 19);
        assert_eq!(items[0], (k(0), b"v2".to_vec()));
        assert!(items.iter().all(|(key, _)| key != &k(1) && key != &k(11)));
        let even_val = items.iter().find(|(key, _)| key == &k(2)).unwrap();
        assert_eq!(even_val.1, b"v2");
        let odd_val = items.iter().find(|(key, _)| key == &k(3)).unwrap();
        assert_eq!(odd_val.1, b"v1");
    }

    #[test]
    fn constant_policy_bounds_components() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(
            cache,
            small_config("t", MergePolicy::Constant { max_components: 3 }),
        );
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.component_count() <= 3 + 1, "constant policy holds");
        assert!(t.stats().merges > 0);
        assert_eq!(t.count().unwrap(), 5_000);
    }

    #[test]
    fn no_merge_policy_never_merges() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..3_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.component_count() > 4);
        assert_eq!(t.stats().merges, 0);
        t.flush().unwrap();
        // with no merging, every ingested entry is written to disk exactly once
        assert!((t.stats().write_amplification() - 1.0).abs() < 0.01);
    }

    #[test]
    fn prefix_policy_merges_small_runs() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(
            cache,
            small_config(
                "t",
                MergePolicy::Prefix {
                    max_mergable_bytes: 1 << 20,
                    max_tolerance_components: 2,
                },
            ),
        );
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.stats().merges > 0, "prefix policy merged");
        assert!(t.component_count() <= 4);
        assert_eq!(t.count().unwrap(), 5_000);
        assert!(t.stats().write_amplification() > 1.0, "merging costs write amp");
    }

    #[test]
    fn merge_all_drops_tombstones() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..100 {
            t.delete(k(i)).unwrap();
        }
        t.flush().unwrap();
        let n = t.component_count();
        t.merge_newest(n).unwrap();
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.count().unwrap(), 0);
        // everything annihilated: component holds zero live entries
        assert_eq!(t.scan().unwrap().len(), 0);
    }

    #[test]
    fn bloom_filters_skip_components_on_point_misses() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache.clone(), small_config("t", MergePolicy::NoMerge));
        for i in 0..2_000 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        // probe far-away keys: min/max or bloom pruning means ~0 physical reads
        cache.stats().reset();
        for i in 100_000..100_200 {
            assert!(t.get(&k(i)).unwrap().is_none());
        }
        assert_eq!(cache.stats().physical_reads(), 0);
    }

    #[test]
    fn mixed_type_keys_order_correctly() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        t.upsert(encode_key(&[Value::Int(2)]), b"int2".to_vec()).unwrap();
        t.upsert(encode_key(&[Value::Double(2.5)]), b"d2.5".to_vec()).unwrap();
        t.upsert(encode_key(&[Value::from("apple")]), b"s".to_vec()).unwrap();
        t.flush().unwrap();
        // Double(2.0) must hit the Int(2) entry (ADM equality)
        assert_eq!(
            t.get(&encode_key(&[Value::Double(2.0)])).unwrap().unwrap(),
            b"int2"
        );
        let all = t.scan().unwrap();
        assert_eq!(all.len(), 3);
        // numbers before strings
        assert_eq!(all[0].1, b"int2");
        assert_eq!(all[1].1, b"d2.5");
        assert_eq!(all[2].1, b"s");
    }

    // -- background compaction, new policies, and the retirement fix --------

    #[test]
    fn leveled_policy_merges_greedily() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::Leveled));
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.stats().merges > 0, "leveled policy merged");
        assert!(t.component_count() <= 2, "reads see few, large components");
        assert_eq!(t.count().unwrap(), 5_000);
        assert!(t.stats().write_amplification() > 1.0);
    }

    #[test]
    fn tiered_policy_merges_similar_sized_bands() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::Tiered { size_ratio: 2 }));
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.stats().merges > 0, "tiered policy merged");
        assert_eq!(t.count().unwrap(), 5_000);
        assert!(t.stats().write_amplification() > 1.0);
    }

    #[test]
    fn merge_cascade_converges_after_policy_switch() {
        // Regression for the single-pick bug: one flush used to run the
        // policy exactly once, so a backlog built under one policy never
        // converged after a switch. Build geometric components under
        // NoMerge, switch to Tiered, and one more flush must cascade all
        // the way down.
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, manual_config("t", MergePolicy::NoMerge));
        for i in 0..4_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        for i in 4_000..6_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        for i in 6_000..7_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.component_count(), 3);
        assert_eq!(t.stats().merges, 0);
        t.set_merge_policy(MergePolicy::Tiered { size_ratio: 2 });
        for i in 7_000..8_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.component_count(), 1, "cascade converged in one flush");
        assert!(t.stats().merges >= 2, "required more than one policy pick");
        assert_eq!(t.count().unwrap(), 8_000);
    }

    #[test]
    fn retirement_delete_failure_never_loses_merged_data() {
        // Regression for the retirement-ordering data loss: old components
        // were deleted *before* the merged component was inserted, so an
        // injected delete failure un-published the merged entries. Now the
        // merged component publishes first and failed deletes are counted
        // cleanup.
        let (cache, _d) = setup_faulty(FaultConfig {
            seed: 9,
            delete_fail_prob: 1.0,
            ..FaultConfig::default()
        });
        let mut t = LsmTree::new(cache.clone(), manual_config("t", MergePolicy::NoMerge));
        for i in 0..500 {
            t.upsert(k(i), vec![b'x'; 32]).unwrap();
        }
        t.flush().unwrap();
        for i in 500..1_000 {
            t.upsert(k(i), vec![b'x'; 32]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.component_count(), 2);
        t.merge_newest(2).expect("retirement failures are non-fatal");
        assert_eq!(t.component_count(), 1, "merged component is live");
        assert_eq!(t.count().unwrap(), 1_000, "no entry lost");
        assert_eq!(t.get(&k(0)).unwrap().unwrap(), vec![b'x'; 32]);
        assert_eq!(t.stats().retire_failures, 2, "both input deletes failed");
        assert_eq!(cache.stats().lsm().retire_failures(), 2);
    }

    #[test]
    fn background_executor_merges_off_the_write_path() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(
            cache,
            small_config("t", MergePolicy::Constant { max_components: 3 }),
        );
        t.set_executor(ThreadExecutor::handle());
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.wait_merges_idle(Duration::from_secs(30)), "merges drained");
        assert_eq!(t.compaction_state(), "idle");
        assert!(t.stats().merges > 0);
        assert!(t.component_count() <= 3 + 1);
        assert_eq!(t.count().unwrap(), 5_000);
        for i in (0..5_000).step_by(131) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), vec![b'x'; 64]);
        }
    }

    /// Executor that parks jobs for the test to drive by hand.
    #[derive(Default)]
    struct ParkedExecutor(Mutex<Vec<Arc<dyn BackgroundJob>>>);

    impl BackgroundExecutor for ParkedExecutor {
        fn offload(&self, job: Arc<dyn BackgroundJob>) {
            self.0.lock().push(job);
        }
    }

    #[test]
    fn reads_and_flushes_proceed_while_merging_and_cancel_aborts_cleanly() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, manual_config("t", MergePolicy::NoMerge));
        for i in 0..600 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 600..1_200 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        let parked = Arc::new(ParkedExecutor::default());
        t.set_executor(CompactionExec::new(parked.clone()));
        t.set_merge_policy(MergePolicy::Constant { max_components: 1 });
        // this flush schedules (but does not run) the merge
        t.upsert(k(1_200), b"v".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(t.compaction_state(), "merging");
        assert_eq!(t.merging_range().len(), 3, "all three components in range");
        let job = parked.0.lock().pop().expect("merge scheduled");
        // reads and flushes still serve against the pre-merge list
        assert_eq!(t.get(&k(0)).unwrap().unwrap(), b"v");
        let before = t.component_count();
        t.upsert(k(1_201), b"v".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(t.component_count(), before + 1, "flush during merge");
        // partial progress, then cancellation
        assert_eq!(job.step(), JobStep::Again, "one morsel merged");
        job.cancel();
        assert_eq!(job.step(), JobStep::Done, "cancel honored at morsel edge");
        assert_eq!(t.compaction_state(), "idle");
        assert_eq!(t.stats().merges, 0);
        assert_eq!(t.stats().merges_aborted, 1);
        assert_eq!(t.component_count(), before + 1, "list untouched by abort");
        assert_eq!(t.count().unwrap(), 1_202);
    }

    #[test]
    fn autotuner_picks_policy_from_read_write_mix() {
        // read-heavy window → Leveled
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, manual_config("t", MergePolicy::NoMerge));
        t.set_auto_tune(true);
        for i in 0..100 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for _ in 0..40 {
            for i in 0..100 {
                let _ = t.get(&k(i)).unwrap();
            }
        }
        t.upsert(k(100), b"v".to_vec()).unwrap();
        t.flush().unwrap();
        assert_eq!(t.current_policy(), MergePolicy::Leveled, "read-heavy");

        // write-heavy window → Tiered
        let (cache2, _d2) = setup();
        let mut w = LsmTree::new(cache2, manual_config("w", MergePolicy::NoMerge));
        w.set_auto_tune(true);
        for i in 0..2_000 {
            w.upsert(k(i), b"v".to_vec()).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(
            w.current_policy(),
            MergePolicy::Tiered { size_ratio: 4 },
            "write-heavy"
        );
    }

    #[test]
    fn amplification_metrics_flow_to_the_hub() {
        let (cache, _d) = setup();
        let hub = Arc::clone(cache.stats().lsm());
        let mut t = LsmTree::new(cache, manual_config("t", MergePolicy::NoMerge));
        for i in 0..1_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        for i in 1_000..2_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(hub.write_amp_milli(), 1000, "flush-only: write amp 1.0");
        t.merge_newest(2).unwrap();
        assert_eq!(hub.write_amp_milli(), 2000, "full rewrite doubles it");
        assert!(hub.space_amp_milli() >= 1000, "total >= live");
        let _ = t.get(&k(1)).unwrap();
        assert!(hub.read_amp_milli() >= 1000, "post-merge point read probes 1 comp");
        assert_eq!(hub.merge_inflight(), 0);
        assert_eq!(t.stats().merge_stall_ns, hub.merge_stall_ns());
        assert!(t.stats().merge_stall_ns > 0, "inline merge time is stall time");
    }
}
