//! The LSM (Log-Structured Merge) index framework (paper Figure 2, Section
//! III item 5): every dataset partition is an LSM B+ tree; secondary indexes
//! are LSM-ified variants sharing this machinery.
//!
//! Writes go to an in-memory component ([`MemComponent`]); when it exceeds its
//! ingestion-buffer budget it is *flushed* — bulk-loaded into an immutable
//! on-disk B+ tree component. Deletes insert tombstones ("anti-matter").
//! Reads consult the memory component and then disk components newest-first,
//! with per-component bloom filters short-circuiting point lookups. A
//! pluggable [`MergePolicy`] decides when to merge disk components
//! (experiment E8 compares the policies).

use crate::btree::{BTreeBuilder, BTreeRangeIter, DiskBTree};
use crate::cache::BufferCache;
use crate::error::{Result, StorageError};
use asterix_adm::binary::compare_keys;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Key wrapper ordering encoded keys by the ADM total order
// ---------------------------------------------------------------------------

/// Encoded composite key ordered by `asterix_adm::binary::compare_keys`
/// (the ADM total order), so `Int(2)` and `Double(2.0)` collide as intended.
#[derive(Debug, Clone)]
pub struct KeyBytes(pub Vec<u8>);

impl PartialEq for KeyBytes {
    fn eq(&self, other: &Self) -> bool {
        compare_keys(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for KeyBytes {}
impl PartialOrd for KeyBytes {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for KeyBytes {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_keys(&self.0, &other.0)
    }
}

// ---------------------------------------------------------------------------
// Entries & memory component
// ---------------------------------------------------------------------------

/// A versioned entry: a value or a delete marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    Put(Vec<u8>),
    Tombstone,
}

impl Entry {
    /// On-disk encoding: marker byte + payload.
    fn encode(&self) -> Vec<u8> {
        match self {
            Entry::Put(v) => {
                let mut out = Vec::with_capacity(v.len() + 1);
                out.push(0);
                out.extend_from_slice(v);
                out
            }
            Entry::Tombstone => vec![1],
        }
    }

    fn decode(buf: &[u8]) -> Result<Entry> {
        match buf.first() {
            Some(0) => Ok(Entry::Put(buf[1..].to_vec())),
            Some(1) => Ok(Entry::Tombstone),
            _ => Err(StorageError::Corrupt("bad LSM entry marker".into())),
        }
    }
}

/// The in-memory (ingestion-buffer) component: an ordered map plus a byte
/// budget (Figure 2's "LSM memory components" slice of node memory).
#[derive(Debug, Default)]
pub struct MemComponent {
    map: BTreeMap<KeyBytes, Entry>,
    bytes: usize,
}

impl MemComponent {
    /// Creates an empty memory component.
    pub fn new() -> Self {
        MemComponent::default()
    }

    /// Number of entries (tombstones included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate buffered bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Inserts/overwrites a key.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.bytes += key.len() + value.len() + 32;
        self.map.insert(KeyBytes(key), Entry::Put(value));
    }

    /// Inserts a tombstone.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.bytes += key.len() + 32;
        self.map.insert(KeyBytes(key), Entry::Tombstone);
    }

    /// Latest entry for `key`, if buffered here.
    pub fn get(&self, key: &[u8]) -> Option<&Entry> {
        self.map.get(&KeyBytes(key.to_vec()))
    }

    /// Ordered iteration over all buffered entries.
    pub fn iter(&self) -> impl Iterator<Item = (&KeyBytes, &Entry)> {
        self.map.iter()
    }

    /// Ordered iteration over a key range.
    pub fn range(
        &self,
        lo: Bound<Vec<u8>>,
        hi: Bound<Vec<u8>>,
    ) -> impl Iterator<Item = (&KeyBytes, &Entry)> {
        self.map.range((lo.map(KeyBytes), hi.map(KeyBytes)))
    }
}

// ---------------------------------------------------------------------------
// Merge policies
// ---------------------------------------------------------------------------

/// When to merge disk components (paper §III item 5; experiment E8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergePolicy {
    /// Never merge: cheapest writes, reads degrade with component count.
    NoMerge,
    /// Keep at most `max_components` disk components; merge all into one when
    /// exceeded (AsterixDB's "constant" policy).
    Constant { max_components: usize },
    /// AsterixDB's default "prefix" policy: merge the run of newest
    /// components that are each smaller than `max_mergable_bytes` once the
    /// run is longer than `max_tolerance_components`.
    Prefix {
        max_mergable_bytes: u64,
        max_tolerance_components: usize,
    },
}

impl MergePolicy {
    /// Given newest-first component sizes, returns the index range
    /// `[0, n)` of newest components to merge, or `None`.
    fn pick_merge(&self, sizes: &[u64]) -> Option<usize> {
        match *self {
            MergePolicy::NoMerge => None,
            MergePolicy::Constant { max_components } => {
                (sizes.len() > max_components.max(1)).then_some(sizes.len())
            }
            MergePolicy::Prefix { max_mergable_bytes, max_tolerance_components } => {
                let mut run = 0usize;
                let mut total = 0u64;
                for &s in sizes {
                    if s < max_mergable_bytes && total + s <= max_mergable_bytes.saturating_mul(2)
                    {
                        run += 1;
                        total += s;
                    } else {
                        break;
                    }
                }
                (run >= 2 && run > max_tolerance_components).then_some(run)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The LSM tree
// ---------------------------------------------------------------------------

/// Configuration of one LSM index.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Component-file name prefix (unique per index per partition).
    pub name: String,
    /// Memory-component budget in bytes; exceeding it triggers a flush.
    pub mem_budget: usize,
    /// Merge policy.
    pub merge_policy: MergePolicy,
    /// Attach bloom filters to disk components.
    pub bloom: bool,
    /// Compress values in disk components (paper §VII's storage compression).
    pub compress_values: bool,
}

impl LsmConfig {
    /// A sensible default configuration for tests and examples.
    pub fn new(name: impl Into<String>) -> Self {
        LsmConfig {
            name: name.into(),
            mem_budget: 1 << 20,
            merge_policy: MergePolicy::Prefix {
                max_mergable_bytes: 16 << 20,
                max_tolerance_components: 4,
            },
            bloom: true,
            compress_values: false,
        }
    }
}

struct DiskComponent {
    tree: DiskBTree,
    size_bytes: u64,
}

/// Lifetime counters for an LSM index.
#[derive(Debug, Default, Clone, Copy)]
pub struct LsmStats {
    pub flushes: u64,
    pub merges: u64,
    /// Entries written to disk across flushes and merges (write-amp numerator).
    pub entries_written: u64,
    /// Entries ingested by the application (write-amp denominator).
    pub entries_ingested: u64,
}

impl LsmStats {
    /// Write amplification: disk entries written per ingested entry.
    pub fn write_amplification(&self) -> f64 {
        if self.entries_ingested == 0 {
            0.0
        } else {
            self.entries_written as f64 / self.entries_ingested as f64
        }
    }
}

/// An LSM B+ tree index over encoded composite keys.
pub struct LsmTree {
    cache: Arc<BufferCache>,
    config: LsmConfig,
    mem: MemComponent,
    /// Newest first.
    disk: Vec<DiskComponent>,
    next_component_id: AtomicU64,
    stats: LsmStats,
}

impl LsmTree {
    /// Creates an empty LSM tree.
    pub fn new(cache: Arc<BufferCache>, config: LsmConfig) -> Self {
        LsmTree {
            cache,
            config,
            mem: MemComponent::new(),
            disk: Vec::new(),
            next_component_id: AtomicU64::new(1),
            stats: LsmStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// Number of disk components.
    pub fn component_count(&self) -> usize {
        self.disk.len()
    }

    /// Entries currently buffered in memory.
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }

    /// Inserts or replaces `key`. Flushes automatically past the budget.
    pub fn upsert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.stats.entries_ingested += 1;
        self.mem.put(key, value);
        self.maybe_flush()
    }

    /// Deletes `key` (tombstone insert).
    pub fn delete(&mut self, key: Vec<u8>) -> Result<()> {
        self.stats.entries_ingested += 1;
        self.mem.delete(key);
        self.maybe_flush()
    }

    /// Applies the optional value compression at the disk boundary.
    fn encode_disk(&self, raw: &[u8]) -> Vec<u8> {
        if self.config.compress_values {
            crate::compress::compress(raw)
        } else {
            raw.to_vec()
        }
    }

    /// Reverses [`LsmTree::encode_disk`].
    fn decode_disk(&self, raw: &[u8]) -> Result<Vec<u8>> {
        if self.config.compress_values {
            crate::compress::decompress(raw).map_err(StorageError::Corrupt)
        } else {
            Ok(raw.to_vec())
        }
    }

    fn maybe_flush(&mut self) -> Result<()> {
        if self.mem.bytes() > self.config.mem_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// Point lookup: memory component, then disk components newest-first.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.mem.get(key) {
            Some(Entry::Put(v)) => return Ok(Some(v.clone())),
            Some(Entry::Tombstone) => return Ok(None),
            None => {}
        }
        for comp in &self.disk {
            if !comp.tree.may_contain(key) {
                continue;
            }
            if let Some(raw) = comp.tree.get(key)? {
                let raw = self.decode_disk(&raw)?;
                return match Entry::decode(&raw)? {
                    Entry::Put(v) => Ok(Some(v)),
                    Entry::Tombstone => Ok(None),
                };
            }
        }
        Ok(None)
    }

    /// Forces the memory component to disk as a new component.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let id = self.next_component_id.fetch_add(1, AtomicOrdering::Relaxed); // xlint: ordering(component-id allocation under the lsm_component lock; uniqueness only)
        let name = format!("{}_c{}.btree", self.config.name, id);
        let writer = self.cache.manager().bulk_writer(&name)?;
        let expected = if self.config.bloom { self.mem.len() } else { 0 };
        let mut builder = BTreeBuilder::new(writer, expected);
        let mut written = 0u64;
        for (k, e) in self.mem.iter() {
            let raw = self.encode_disk(&e.encode());
            builder.add(&k.0, &raw)?;
            written += 1;
        }
        let built = builder.finish()?;
        let size_bytes = self.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let tree = DiskBTree::from_built(Arc::clone(&self.cache), built);
        self.disk.insert(0, DiskComponent { tree, size_bytes });
        self.mem = MemComponent::new();
        self.stats.flushes += 1;
        self.stats.entries_written += written;
        self.maybe_merge()
    }

    fn maybe_merge(&mut self) -> Result<()> {
        let sizes: Vec<u64> = self.disk.iter().map(|c| c.size_bytes).collect();
        if let Some(n) = self.config.merge_policy.pick_merge(&sizes) {
            self.merge_newest(n)?;
        }
        Ok(())
    }

    /// Merges the `n` newest disk components into one.
    pub fn merge_newest(&mut self, n: usize) -> Result<()> {
        let n = n.min(self.disk.len());
        if n < 2 {
            return Ok(());
        }
        // When the merge includes the oldest component, tombstones can be
        // dropped; otherwise they must be preserved (they may mask entries in
        // older components).
        let includes_oldest = n == self.disk.len();
        let id = self.next_component_id.fetch_add(1, AtomicOrdering::Relaxed); // xlint: ordering(component-id allocation under the lsm_component lock; uniqueness only)
        let name = format!("{}_c{}.btree", self.config.name, id);
        let writer = self.cache.manager().bulk_writer(&name)?;
        let expected: u64 = self.disk[..n].iter().map(|c| c.tree.len()).sum();
        let mut builder =
            BTreeBuilder::new(writer, if self.config.bloom { expected as usize } else { 0 });
        // K-way merge, newest (rank 0) wins on duplicate keys.
        let mut iters: Vec<std::iter::Peekable<BTreeRangeIter>> = Vec::with_capacity(n);
        for comp in &self.disk[..n] {
            iters.push(comp.tree.scan()?.peekable());
        }
        let mut written = 0u64;
        loop {
            // find the smallest key among iterator heads; prefer lowest rank
            let mut best: Option<(usize, Vec<u8>)> = None;
            for (rank, it) in iters.iter_mut().enumerate() {
                let head = match it.peek() {
                    None => continue,
                    Some(Err(_)) => {
                        // surface the error
                        return Err(match it.next() {
                            Some(Err(e)) => e,
                            _ => StorageError::Corrupt(
                                "merge iterator lost its error head".into(),
                            ),
                        });
                    }
                    Some(Ok((k, _))) => k.clone(),
                };
                best = match best {
                    None => Some((rank, head)),
                    Some((brank, bkey)) => {
                        if compare_keys(&head, &bkey) == Ordering::Less {
                            Some((rank, head))
                        } else {
                            Some((brank, bkey))
                        }
                    }
                };
            }
            let Some((winner_rank, winner_key)) = best else { break };
            // consume the winner's entry and any duplicates in older comps
            let Some(winner) = iters[winner_rank].next() else {
                return Err(StorageError::Corrupt(
                    "merge winner iterator emptied between peek and next".into(),
                ));
            };
            let (_, raw) = winner?;
            for (rank, it) in iters.iter_mut().enumerate() {
                if rank == winner_rank {
                    continue;
                }
                while matches!(it.peek(), Some(Ok((k, _))) if compare_keys(k, &winner_key) == Ordering::Equal)
                {
                    it.next();
                }
            }
            let entry = Entry::decode(&self.decode_disk(&raw)?)?;
            if matches!(entry, Entry::Tombstone) && includes_oldest {
                continue; // drop dead tombstones
            }
            // stored bytes move as-is: merges never recompress
            builder.add(&winner_key, &raw)?;
            written += 1;
        }
        let built = builder.finish()?;
        let size_bytes = self.cache.manager().page_count(built.file)? * crate::io::PAGE_SIZE as u64;
        let tree = DiskBTree::from_built(Arc::clone(&self.cache), built);
        // retire merged components
        let removed: Vec<DiskComponent> = self.disk.drain(..n).collect();
        for comp in removed {
            self.cache.close_file(comp.tree.file());
            self.cache.manager().delete(comp.tree.file())?;
        }
        self.disk.insert(0, DiskComponent { tree, size_bytes });
        self.stats.merges += 1;
        self.stats.entries_written += written;
        Ok(())
    }

    /// Ordered scan over `[lo, hi]`, resolving versions (newest wins) and
    /// dropping tombstones. Returns materialized pairs.
    pub fn range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Collect per-source ordered streams: rank 0 = memory (newest).
        type EntryStream<'a> = Box<dyn Iterator<Item = Result<(Vec<u8>, Entry)>> + 'a>;
        let mut streams: Vec<EntryStream<'_>> = Vec::new();
        let mem_lo = match lo {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mem_hi = match hi {
            Bound::Included(k) => Bound::Included(k.to_vec()),
            Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
            Bound::Unbounded => Bound::Unbounded,
        };
        streams.push(Box::new(
            self.mem
                .range(mem_lo, mem_hi)
                .map(|(k, e)| Ok((k.0.clone(), e.clone()))),
        ));
        for comp in &self.disk {
            let hi_owned = match hi {
                Bound::Included(k) => Bound::Included(k.to_vec()),
                Bound::Excluded(k) => Bound::Excluded(k.to_vec()),
                Bound::Unbounded => Bound::Unbounded,
            };
            let it = comp.tree.range(lo, hi_owned)?;
            let compressed = self.config.compress_values;
            streams.push(Box::new(it.map(move |r| {
                r.and_then(|(k, raw)| {
                    let raw = if compressed {
                        crate::compress::decompress(&raw).map_err(StorageError::Corrupt)?
                    } else {
                        raw
                    };
                    Ok((k, Entry::decode(&raw)?))
                })
            })));
        }
        // K-way merge with rank preference.
        let mut iters: Vec<_> = streams.into_iter().map(|s| s.peekable()).collect();
        let mut out = Vec::new();
        loop {
            let mut best: Option<(usize, Vec<u8>)> = None;
            for (rank, it) in iters.iter_mut().enumerate() {
                let head = match it.peek() {
                    None => continue,
                    Some(Err(_)) => {
                        return Err(match it.next() {
                            Some(Err(e)) => e,
                            _ => StorageError::Corrupt(
                                "range iterator lost its error head".into(),
                            ),
                        })
                    }
                    Some(Ok((k, _))) => k.clone(),
                };
                best = match best.take() {
                    None => Some((rank, head)),
                    Some((brank, bkey)) => {
                        if compare_keys(&head, &bkey) == Ordering::Less {
                            Some((rank, head))
                        } else {
                            Some((brank, bkey))
                        }
                    }
                };
            }
            let Some((winner_rank, winner_key)) = best else { break };
            let Some(winner) = iters[winner_rank].next() else {
                return Err(StorageError::Corrupt(
                    "range winner iterator emptied between peek and next".into(),
                ));
            };
            let (_, entry) = winner?;
            for (rank, it) in iters.iter_mut().enumerate() {
                if rank == winner_rank {
                    continue;
                }
                while matches!(it.peek(), Some(Ok((k, _))) if compare_keys(k, &winner_key) == Ordering::Equal)
                {
                    it.next();
                }
            }
            if let Entry::Put(v) = entry {
                out.push((winner_key, v));
            }
        }
        Ok(out)
    }

    /// Full ordered scan (tombstones resolved).
    pub fn scan(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Live entry count (scans; intended for tests and small datasets).
    pub fn count(&self) -> Result<usize> {
        Ok(self.scan()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;
    use asterix_adm::binary::encode_key;
    use asterix_adm::Value;

    fn setup() -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, 256), dir)
    }

    fn k(i: i64) -> Vec<u8> {
        encode_key(&[Value::Int(i)])
    }

    fn small_config(name: &str, policy: MergePolicy) -> LsmConfig {
        LsmConfig {
            name: name.into(),
            mem_budget: 4 << 10, // tiny: force frequent flushes
            merge_policy: policy,
            bloom: true,
                compress_values: false
        }
    }

    #[test]
    fn upsert_get_across_flushes() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..2_000 {
            t.upsert(k(i), format!("v{i}").into_bytes()).unwrap();
        }
        assert!(t.component_count() > 1, "flushes happened");
        for i in (0..2_000).step_by(97) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), format!("v{i}").into_bytes());
        }
        assert!(t.get(&k(5_000)).unwrap().is_none());
    }

    #[test]
    fn newest_version_wins() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        t.upsert(k(1), b"old".to_vec()).unwrap();
        t.flush().unwrap();
        t.upsert(k(1), b"new".to_vec()).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"new");
        t.flush().unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"new");
        assert_eq!(t.scan().unwrap().len(), 1);
    }

    #[test]
    fn tombstones_mask_older_components() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..50 {
            t.delete(k(i)).unwrap();
        }
        assert!(t.get(&k(10)).unwrap().is_none());
        assert_eq!(t.get(&k(60)).unwrap().unwrap(), b"v");
        t.flush().unwrap();
        assert!(t.get(&k(10)).unwrap().is_none(), "tombstone flushed");
        assert_eq!(t.count().unwrap(), 50);
    }

    #[test]
    fn range_resolves_versions_and_tombstones() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v1".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in (0..100).step_by(2) {
            t.upsert(k(i), b"v2".to_vec()).unwrap();
        }
        for i in (1..100).step_by(10) {
            t.delete(k(i)).unwrap();
        }
        let lo = k(0);
        let hi = k(20);
        let items = t.range(Bound::Included(&lo), Bound::Included(&hi)).unwrap();
        // keys 0..=20, minus deleted 1 and 11
        assert_eq!(items.len(), 19);
        assert_eq!(items[0], (k(0), b"v2".to_vec()));
        assert!(items.iter().all(|(key, _)| key != &k(1) && key != &k(11)));
        let even_val = items.iter().find(|(key, _)| key == &k(2)).unwrap();
        assert_eq!(even_val.1, b"v2");
        let odd_val = items.iter().find(|(key, _)| key == &k(3)).unwrap();
        assert_eq!(odd_val.1, b"v1");
    }

    #[test]
    fn constant_policy_bounds_components() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(
            cache,
            small_config("t", MergePolicy::Constant { max_components: 3 }),
        );
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.component_count() <= 3 + 1, "constant policy holds");
        assert!(t.stats().merges > 0);
        assert_eq!(t.count().unwrap(), 5_000);
    }

    #[test]
    fn no_merge_policy_never_merges() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..3_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.component_count() > 4);
        assert_eq!(t.stats().merges, 0);
        t.flush().unwrap();
        // with no merging, every ingested entry is written to disk exactly once
        assert!((t.stats().write_amplification() - 1.0).abs() < 0.01);
    }

    #[test]
    fn prefix_policy_merges_small_runs() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(
            cache,
            small_config(
                "t",
                MergePolicy::Prefix {
                    max_mergable_bytes: 1 << 20,
                    max_tolerance_components: 2,
                },
            ),
        );
        for i in 0..5_000 {
            t.upsert(k(i), vec![b'x'; 64]).unwrap();
        }
        assert!(t.stats().merges > 0, "prefix policy merged");
        assert!(t.component_count() <= 4);
        assert_eq!(t.count().unwrap(), 5_000);
        assert!(t.stats().write_amplification() > 1.0, "merging costs write amp");
    }

    #[test]
    fn merge_all_drops_tombstones() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        for i in 0..100 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        for i in 0..100 {
            t.delete(k(i)).unwrap();
        }
        t.flush().unwrap();
        let n = t.component_count();
        t.merge_newest(n).unwrap();
        assert_eq!(t.component_count(), 1);
        assert_eq!(t.count().unwrap(), 0);
        // everything annihilated: component holds zero live entries
        assert_eq!(t.scan().unwrap().len(), 0);
    }

    #[test]
    fn bloom_filters_skip_components_on_point_misses() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache.clone(), small_config("t", MergePolicy::NoMerge));
        for i in 0..2_000 {
            t.upsert(k(i), b"v".to_vec()).unwrap();
        }
        t.flush().unwrap();
        // probe far-away keys: min/max or bloom pruning means ~0 physical reads
        cache.stats().reset();
        for i in 100_000..100_200 {
            assert!(t.get(&k(i)).unwrap().is_none());
        }
        assert_eq!(cache.stats().physical_reads(), 0);
    }

    #[test]
    fn mixed_type_keys_order_correctly() {
        let (cache, _d) = setup();
        let mut t = LsmTree::new(cache, small_config("t", MergePolicy::NoMerge));
        t.upsert(encode_key(&[Value::Int(2)]), b"int2".to_vec()).unwrap();
        t.upsert(encode_key(&[Value::Double(2.5)]), b"d2.5".to_vec()).unwrap();
        t.upsert(encode_key(&[Value::from("apple")]), b"s".to_vec()).unwrap();
        t.flush().unwrap();
        // Double(2.0) must hit the Int(2) entry (ADM equality)
        assert_eq!(
            t.get(&encode_key(&[Value::Double(2.0)])).unwrap().unwrap(),
            b"int2"
        );
        let all = t.scan().unwrap();
        assert_eq!(all.len(), 3);
        // numbers before strings
        assert_eq!(all[0].1, b"int2");
        assert_eq!(all[1].1, b"d2.5");
        assert_eq!(all[2].1, b"s");
    }
}
