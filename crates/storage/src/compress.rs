//! Storage compression (paper §VII: "recent examples include storage
//! compression and much-improved parallel sorting" among the open-source
//! contributions that flowed into the commercial system).
//!
//! A small, dependency-free LZSS-style byte compressor used for LSM
//! component values when [`crate::lsm::LsmConfig::compress_values`] is set.
//! Format: a leading flag byte (0 = stored raw, 1 = compressed + u32
//! original length), then a token stream — control bytes whose bits select
//! literal (0) or back-reference (1) items; back-references are
//! `(offset: u16, len: u8)` into the previous 64 KiB window with lengths
//! 4..=258. Record payloads are small, so the match table is a simple
//! 4-byte-hash head table — fast enough for the write path, and decompression
//! is a tight copy loop.

/// Compression never helps below this size.
const MIN_INPUT: usize = 16;
/// Minimum match length worth encoding (3 bytes would break even).
const MIN_MATCH: usize = 4;
/// Maximum encodable match length (`u8::MAX as usize + MIN_MATCH - 1`).
const MAX_MATCH: usize = 258;
/// Back-reference window (u16 offsets).
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 13;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. Falls back to stored-raw framing when compression
/// would not shrink the payload, so output is never more than 1 byte larger.
pub fn compress(input: &[u8]) -> Vec<u8> {
    if input.len() >= MIN_INPUT {
        if let Some(c) = try_compress(input) {
            return c;
        }
    }
    let mut out = Vec::with_capacity(input.len() + 1);
    out.push(0u8);
    out.extend_from_slice(input);
    out
}

fn try_compress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(1u8);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    let mut heads = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut control_pos = out.len();
    out.push(0);
    let mut control_bits = 0u8;
    let mut n_items = 0u8;
    macro_rules! flush_control {
        () => {
            out[control_pos] = control_bits;
            control_pos = out.len();
            out.push(0);
            control_bits = 0;
            n_items = 0;
        };
    }
    while i < input.len() {
        let mut emitted_ref = false;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let cand = heads[h];
            heads[h] = i;
            if cand != usize::MAX && i - cand <= WINDOW && input[cand..cand + 4] == input[i..i + 4]
            {
                // extend the match
                let mut len = 4usize;
                let max = (input.len() - i).min(MAX_MATCH);
                while len < max && input[cand + len] == input[i + len] {
                    len += 1;
                }
                let offset = (i - cand) as u16;
                control_bits |= 1 << n_items;
                out.extend_from_slice(&offset.to_le_bytes());
                out.push((len - MIN_MATCH + 1) as u8);
                // seed hashes inside the match so later data can reference it
                let seed_end = (i + len).min(input.len().saturating_sub(MIN_MATCH));
                let mut j = i + 1;
                while j < seed_end {
                    heads[hash4(&input[j..])] = j;
                    j += 1;
                }
                i += len;
                emitted_ref = true;
            }
        }
        if !emitted_ref {
            out.push(input[i]);
            i += 1;
        }
        n_items += 1;
        if n_items == 8 {
            flush_control!();
        }
    }
    out[control_pos] = control_bits;
    if n_items == 0 {
        out.pop(); // unused trailing control byte
    }
    (out.len() < input.len()).then_some(out)
}

/// Decompresses a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, String> {
    match data.first() {
        Some(0) => Ok(data[1..].to_vec()),
        Some(1) => {
            if data.len() < 5 {
                return Err("truncated compressed header".into());
            }
            let orig_len = crate::le::u32_at(data, 1) as usize;
            let mut out = Vec::with_capacity(orig_len);
            let mut i = 5usize;
            while out.len() < orig_len {
                if i >= data.len() {
                    return Err("truncated compressed stream".into());
                }
                let control = data[i];
                i += 1;
                for bit in 0..8 {
                    if out.len() >= orig_len {
                        break;
                    }
                    if control & (1 << bit) != 0 {
                        if i + 3 > data.len() {
                            return Err("truncated back-reference".into());
                        }
                        let offset = crate::le::u16_at(data, i) as usize;
                        let len = data[i + 2] as usize + MIN_MATCH - 1;
                        i += 3;
                        if offset == 0 || offset > out.len() {
                            return Err("back-reference out of range".into());
                        }
                        let start = out.len() - offset;
                        for k in 0..len {
                            let b = out[start + k];
                            out.push(b);
                        }
                    } else {
                        if i >= data.len() {
                            return Err("truncated literal".into());
                        }
                        out.push(data[i]);
                        i += 1;
                    }
                }
            }
            if out.len() != orig_len {
                return Err(format!("length mismatch: {} vs {orig_len}", out.len()));
            }
            Ok(out)
        }
        _ => Err("bad compression flag".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
        roundtrip(&[0u8; 1000]);
        roundtrip("the quick brown fox jumps over the lazy dog".repeat(20).as_bytes());
        let mixed: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        roundtrip(&mixed);
    }

    #[test]
    fn compresses_redundant_data() {
        let data = b"abcdefgh".repeat(100);
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn incompressible_data_costs_one_byte() {
        // pseudo-random bytes: no 4-byte repeats within the window
        let data: Vec<u8> = (0..512u64)
            .flat_map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15)).to_le_bytes())
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + 1);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_references() {
        // runs force overlapping copies (offset < len)
        let data = vec![b'x'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "run-length-ish case: {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[9, 1, 2]).is_err());
        assert!(decompress(&[1, 200, 0, 0, 0, 0b1, 5, 0, 1]).is_err(), "offset > produced");
    }
}
