//! Error type for the storage layer.

use std::fmt;

/// Result alias used throughout `asterix-storage`.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A persisted structure failed an integrity check.
    Corrupt(String),
    /// An entry exceeds what a page can hold.
    RecordTooLarge { size: usize, max: usize },
    /// A referenced file/component does not exist.
    NotFound(String),
    /// Data-model error bubbling up from key decoding.
    Adm(asterix_adm::AdmError),
    /// Misuse of the API (e.g. unsorted bulk-load input).
    Invalid(String),
    /// A deterministic injected fault (crash point, short write, failed
    /// fsync) from [`crate::faults::FaultInjector`]. Never produced in
    /// production configurations; test harnesses match on it to tell a
    /// scheduled crash from a real failure.
    Injected(String),
    /// A coalesced page load failed: this requester parked on another
    /// thread's in-flight physical read (see `BufferCache`), and that leader
    /// read failed. Carries the page key and the leader's rendered error so
    /// every waiter sees the cause; the in-flight slot is cleared, so the
    /// next request for the page retries the read fresh.
    CoalescedLoad { file: crate::io::FileId, page: u64, cause: String },
    /// Truncating a torn/corrupt WAL tail at reopen failed. Carries the log
    /// path and both offsets so the operator knows exactly which file to
    /// repair and where the valid prefix ends.
    WalTruncate {
        path: std::path::PathBuf,
        valid_len: u64,
        file_len: u64,
        source: std::io::Error,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage structure: {m}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::NotFound(m) => write!(f, "not found: {m}"),
            StorageError::Adm(e) => write!(f, "data-model error in storage: {e}"),
            StorageError::Invalid(m) => write!(f, "invalid storage operation: {m}"),
            StorageError::Injected(m) => write!(f, "injected fault: {m}"),
            StorageError::CoalescedLoad { file, page, cause } => write!(
                f,
                "coalesced load of file {file:?} page {page} failed in the \
                 leading reader: {cause}"
            ),
            StorageError::WalTruncate { path, valid_len, file_len, source } => write!(
                f,
                "failed to truncate torn WAL tail of {} at offset {valid_len} \
                 (file length {file_len}): {source}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Adm(e) => Some(e),
            StorageError::WalTruncate { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<asterix_adm::AdmError> for StorageError {
    fn from(e: asterix_adm::AdmError) -> Self {
        StorageError::Adm(e)
    }
}
