#![forbid(unsafe_code)]
//! # Storage — partitioned, LSM-based native storage and indexing
//!
//! This crate implements the storage half of the AsterixDB architecture
//! (paper Figures 1–2 and Section III, items 5 and 8):
//!
//! * a page/file layer with explicit I/O accounting ([`io`], [`stats`]) and a
//!   node-level **buffer cache** with clock eviction ([`cache`]) — Figure 2's
//!   "Buffer Cache" box;
//! * immutable, bulk-loaded on-disk **B+ trees** ([`btree`]) — the building
//!   block of every LSM disk component;
//! * the **LSM framework** ([`lsm`]): in-memory components, flush, component
//!   stacks, bloom filters ([`bloom`]), and pluggable merge policies;
//! * **LSM R-trees** ([`rtree`], [`lsm_rtree`]) with STR-packed disk
//!   components, delete handling via a companion key B+ tree, and the paper's
//!   point-MBR storage optimization (§V-B);
//! * **LSM inverted keyword indexes** ([`inverted`]) for `TYPE KEYWORD`
//!   secondary indexes;
//! * spatial-key linearization alternatives ([`spatial_keys`]) — Hilbert,
//!   Z-order, and static grid — the comparison subjects of the §V-B study
//!   (experiment E2);
//! * **linear hashing** ([`linear_hash`]) as the §V-C baseline (experiment
//!   E3: Graefe's B-trees-versus-hashing argument);
//! * a **write-ahead log** with recovery ([`wal`]) for the record-level
//!   transaction story (Section III, item 9);
//! * optional **storage compression** of LSM component values
//!   ([`compress`]) — §VII's "recent examples include storage compression";
//! * a deterministic, seedable **fault-injection layer** ([`faults`]) wired
//!   into the I/O and WAL paths, driving the crash-recovery test harness
//!   (see DESIGN.md, "Fault injection & recovery guarantees").
//!
//! All reads of immutable component files flow through the buffer cache, so
//! experiments can measure *physical* I/O under a configurable memory budget —
//! the metric the paper's storage arguments are phrased in.

pub mod bloom;
pub mod btree;
pub mod cache;
pub mod compaction;
pub mod compress;
pub mod error;
pub mod faults;
pub mod inverted;
pub mod io;
pub mod le;
pub mod linear_hash;
pub mod lock_order;
pub mod lsm;
pub mod lsm_rtree;
pub mod rtree;
pub mod spatial_keys;
pub mod stats;
#[cfg(test)]
pub(crate) mod testutil;
pub mod wal;

pub use cache::BufferCache;
pub use compaction::{BackgroundExecutor, BackgroundJob, CompactionExec, JobStep, ThreadExecutor};
pub use error::{Result, StorageError};
pub use faults::{FaultConfig, FaultEvent, FaultInjector};
pub use io::{FileId, FileManager, PAGE_SIZE};
pub use stats::IoStats;
