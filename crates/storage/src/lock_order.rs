//! Runtime lock-order enforcement (debug/test builds only).
//!
//! The workspace declares one canonical lock order (see DESIGN.md
//! "Correctness tooling" and the static checker in `crates/xlint`):
//!
//! ```text
//! scheduler -> catalog -> lock_manager -> lsm_component -> cache_inflight -> cache_shard -> wal
//! ```
//!
//! A thread may acquire locks left-to-right (skipping levels is fine) and
//! may nest within one level (e.g. two shared `catalog` reads in one
//! statement), but acquiring a *lower-ranked* level while holding a
//! higher-ranked one is an inversion — the shape that deadlocks the moment
//! two threads interleave the opposite way. Under `debug_assertions` every
//! acquisition pushes onto a thread-local stack and inversions panic
//! immediately with the full held-lock stack plus a captured backtrace; a
//! global order matrix records every cross-level edge ever observed so
//! tests can assert the dynamic graph stays within the declared order. In
//! release builds the whole module compiles to no-ops.
//!
//! Use [`OrderedMutex`] / [`OrderedRwLock`] where a lock maps 1:1 to a
//! level, or [`acquire`] for manual RAII scoping around locks with more
//! complicated guard flow (e.g. `LockManager`'s condvar loop).

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::ops::{Deref, DerefMut};

/// The canonical lock levels, lowest rank (acquired first) to highest.
///
/// `scheduler` is the admission-queue lock of the serving layer (held only
/// for queue bookkeeping, never across query execution, but execution takes
/// every other level — so it ranks first). `cache_inflight` is the buffer
/// cache's in-flight-load map: a miss consults it while possibly inside an
/// `lsm_component` critical section and probes the `cache_shard` under it,
/// pinning it between those two levels.
pub const LEVELS: [&str; 7] = [
    "scheduler",
    "catalog",
    "lock_manager",
    "lsm_component",
    "cache_inflight",
    "cache_shard",
    "wal",
];

/// Rank of a level name in [`LEVELS`], if declared.
pub fn rank_of(name: &str) -> Option<usize> {
    LEVELS.iter().position(|l| *l == name)
}

#[cfg(debug_assertions)]
mod imp {
    use super::{rank_of, LEVELS};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    thread_local! {
        /// (rank, level name, token id) for every lock this thread holds.
        static HELD: RefCell<Vec<(usize, &'static str, u64)>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    /// `EDGES[a][b]` — a lock of rank `b` was acquired while holding rank
    /// `a`, somewhere, since process start.
    static EDGES: [[AtomicBool; LEVELS.len()]; LEVELS.len()] =
        [const { [const { AtomicBool::new(false) }; LEVELS.len()] }; LEVELS.len()];

    pub(super) fn acquire(name: &'static str) -> u64 {
        let Some(rank) = rank_of(name) else {
            panic!( // xlint: allow(panic, "misuse of the checker itself must abort loudly in debug builds")
                "lock_order: unknown lock level `{name}` (declared levels: {})",
                LEVELS.join(" -> ")
            );
        };
        let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed); // xlint: ordering(debug token id; uniqueness only)
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top_rank, top_name, _)) = h.last() {
                EDGES[top_rank][rank].store(true, Ordering::Relaxed);
                if rank < top_rank {
                    let held: Vec<&str> = h.iter().map(|&(_, n, _)| n).collect();
                    panic!( // xlint: allow(panic, "deliberate enforcement: a lock-order inversion must abort loudly in debug builds")
                        "lock-order inversion: thread {:?} acquiring `{name}` (rank {rank}) \
                         while holding `{top_name}` (rank {top_rank})\n\
                         held-lock stack (oldest first): [{}]\n\
                         declared order: {}\n\
                         acquisition backtrace:\n{}",
                        std::thread::current().id(),
                        held.join(", "),
                        LEVELS.join(" -> "),
                        std::backtrace::Backtrace::force_capture()
                    );
                }
            }
            h.push((rank, name, id));
        });
        id
    }

    pub(super) fn release(id: u64) {
        // Guards can drop out of acquisition order; remove by token id.
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&(_, _, tid)| tid == id) {
                h.remove(pos);
            }
        });
    }

    pub(super) fn held_stack() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|&(_, n, _)| n).collect())
    }

    pub(super) fn observed_edges() -> Vec<(&'static str, &'static str)> {
        let mut out = Vec::new();
        for (a, row) in EDGES.iter().enumerate() {
            for (b, cell) in row.iter().enumerate() {
                if cell.load(Ordering::Relaxed) {
                    out.push((LEVELS[a], LEVELS[b]));
                }
            }
        }
        out
    }
}

/// RAII token for one tracked acquisition. Dropping it pops the thread's
/// held-lock stack (out-of-order drops are fine).
#[must_use = "the token must live as long as the lock guard it describes"]
pub struct LockToken {
    #[cfg(debug_assertions)]
    id: u64,
}

impl Drop for LockToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::release(self.id);
    }
}

/// Records an acquisition of `name` on this thread, panicking on a
/// lock-order inversion (debug builds). Release builds: free.
pub fn acquire(name: &'static str) -> LockToken {
    #[cfg(debug_assertions)]
    {
        LockToken { id: imp::acquire(name) }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = name;
        LockToken {}
    }
}

/// Level names this thread currently holds, oldest first (debug builds;
/// empty in release).
pub fn held_stack() -> Vec<&'static str> {
    #[cfg(debug_assertions)]
    {
        imp::held_stack()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Every cross-level edge `(held, acquired)` observed since process start
/// (debug builds; empty in release).
pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
    #[cfg(debug_assertions)]
    {
        imp::observed_edges()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// A [`parking_lot::Mutex`] pinned to a lock level.
pub struct OrderedMutex<T> {
    level: &'static str,
    inner: Mutex<T>,
}

/// Guard for [`OrderedMutex::lock`]; holds the order token alongside the
/// mutex guard.
pub struct OrderedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _token: LockToken,
}

impl<T> OrderedMutex<T> {
    pub fn new(level: &'static str, value: T) -> Self {
        debug_assert!(rank_of(level).is_some(), "unknown lock level `{level}`");
        OrderedMutex { level, inner: Mutex::new(value) }
    }

    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = acquire(self.level);
        OrderedMutexGuard { guard: self.inner.lock(), _token: token }
    }

    /// The level this mutex is pinned to.
    pub fn level(&self) -> &'static str {
        self.level
    }
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`parking_lot::RwLock`] pinned to a lock level.
pub struct OrderedRwLock<T> {
    level: &'static str,
    inner: RwLock<T>,
}

pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: LockToken,
}

pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: LockToken,
}

impl<T> OrderedRwLock<T> {
    pub fn new(level: &'static str, value: T) -> Self {
        debug_assert!(rank_of(level).is_some(), "unknown lock level `{level}`");
        OrderedRwLock { level, inner: RwLock::new(value) }
    }

    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let token = acquire(self.level);
        OrderedReadGuard { guard: self.inner.read(), _token: token }
    }

    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let token = acquire(self.level);
        OrderedWriteGuard { guard: self.inner.write(), _token: token }
    }

    /// The level this lock is pinned to.
    pub fn level(&self) -> &'static str {
        self.level
    }
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_order_is_fine() {
        let a = OrderedRwLock::new("catalog", 1u32);
        let b = OrderedMutex::new("wal", 2u32);
        let ga = a.read();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        assert_eq!(held_stack(), vec!["catalog", "wal"]);
        drop(ga);
        drop(gb);
        assert!(held_stack().is_empty());
    }

    #[test]
    fn same_level_nesting_is_fine() {
        let a = OrderedRwLock::new("catalog", 1u32);
        let g1 = a.read();
        let g2 = a.read();
        assert_eq!(*g1, *g2);
    }

    #[test]
    fn out_of_order_drop_keeps_stack_consistent() {
        let a = OrderedRwLock::new("catalog", 1u32);
        let b = OrderedMutex::new("cache_shard", 2u32);
        let ga = a.read();
        let gb = b.lock();
        drop(ga); // dropped before gb, out of acquisition order
        assert_eq!(held_stack(), vec!["cache_shard"]);
        drop(gb);
        assert!(held_stack().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "release builds do not track lock order")]
    fn inversion_panics_with_both_stacks() {
        let r = std::panic::catch_unwind(|| {
            let shard = OrderedMutex::new("cache_shard", ());
            let cat = OrderedRwLock::new("catalog", ());
            let _g1 = shard.lock();
            let _g2 = cat.read(); // cache_shard -> catalog: inversion
        });
        let err = r.expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string());
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("held-lock stack"), "{msg}");
        assert!(msg.contains("cache_shard"), "{msg}");
        assert!(msg.contains("catalog"), "{msg}");
        assert!(msg.contains("acquisition backtrace"), "{msg}");
        // The panic unwound through the guards; the stack must be clean.
        assert!(held_stack().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "release builds do not track lock order")]
    fn edges_are_recorded() {
        let a = OrderedRwLock::new("lock_manager", ());
        let b = OrderedMutex::new("lsm_component", ());
        let _ga = a.write();
        let _gb = b.lock();
        assert!(observed_edges().contains(&("lock_manager", "lsm_component")));
    }

    #[test]
    fn manual_acquire_is_raii() {
        let t = acquire("lock_manager");
        assert_eq!(held_stack(), vec!["lock_manager"]);
        drop(t);
        assert!(held_stack().is_empty());
    }
}
