//! Panic-free little-endian slice decoding.
//!
//! The on-disk formats in this crate (B+ tree pages, R-tree pages, WAL
//! frames, bloom filters, compressed blocks) are decoded from byte slices
//! whose lengths are usually guaranteed by construction (pages are always
//! [`crate::io::PAGE_SIZE`]). The xlint panic-path rule (L1) still bans
//! `try_into().unwrap()` there: a corrupt offset must not panic while the
//! reader holds a buffer-cache shard lock. Two flavors are provided:
//!
//! * `u16_at`/`u32_at`/`u64_at` — *defaulting* reads for structurally
//!   bounded offsets: out-of-range reads yield 0, which downstream code
//!   treats as an empty/terminated structure. Use only where the offset is
//!   derived from a compile-time layout over a fixed-size page.
//! * `try_u16_at`/`try_u32_at`/`try_u64_at`/`try_bytes_at` — checked reads
//!   for *data-dependent* offsets (entry tables, key lengths), returning
//!   [`StorageError::Corrupt`] so the error propagates as `Err`.

use crate::error::{Result, StorageError};

macro_rules! defaulting {
    ($name:ident, $ty:ty, $n:literal) => {
        /// Defaulting read: 0 when the slice is too short. For offsets that
        /// are in bounds by page-layout construction.
        #[inline]
        pub fn $name(b: &[u8], off: usize) -> $ty {
            match b.get(off..off + $n) {
                Some(s) => {
                    let mut a = [0u8; $n];
                    a.copy_from_slice(s);
                    <$ty>::from_le_bytes(a)
                }
                None => 0,
            }
        }
    };
}

macro_rules! checked {
    ($name:ident, $ty:ty, $n:literal) => {
        /// Checked read: `StorageError::Corrupt` when the slice is too
        /// short. For data-dependent offsets read off disk.
        #[inline]
        pub fn $name(b: &[u8], off: usize) -> Result<$ty> {
            match b.get(off..off + $n) {
                Some(s) => {
                    let mut a = [0u8; $n];
                    a.copy_from_slice(s);
                    Ok(<$ty>::from_le_bytes(a))
                }
                None => Err(StorageError::Corrupt(format!(
                    concat!("truncated ", stringify!($ty), " at offset {} (len {})"),
                    off,
                    b.len()
                ))),
            }
        }
    };
}

defaulting!(u16_at, u16, 2);
defaulting!(u32_at, u32, 4);
defaulting!(u64_at, u64, 8);
checked!(try_u16_at, u16, 2);
checked!(try_u32_at, u32, 4);
checked!(try_u64_at, u64, 8);

/// Defaulting little-endian f64 read (0.0 when the slice is too short).
#[inline]
pub fn f64_at(b: &[u8], off: usize) -> f64 {
    f64::from_bits(u64_at(b, off))
}

/// Checked little-endian f64 read.
#[inline]
pub fn try_f64_at(b: &[u8], off: usize) -> Result<f64> {
    Ok(f64::from_bits(try_u64_at(b, off)?))
}

/// Checked sub-slice: `StorageError::Corrupt` when `off + len` overruns.
#[inline]
pub fn try_bytes_at(b: &[u8], off: usize, len: usize) -> Result<&[u8]> {
    b.get(off..off + len).ok_or_else(|| {
        StorageError::Corrupt(format!(
            "truncated byte range {off}..{} (len {})",
            off + len,
            b.len()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaulting_reads() {
        let b = [0x34, 0x12, 0xff];
        assert_eq!(u16_at(&b, 0), 0x1234);
        assert_eq!(u16_at(&b, 2), 0, "short read defaults to 0");
        assert_eq!(u64_at(&b, 0), 0);
    }

    #[test]
    fn checked_reads() {
        let b = 0xDEAD_BEEFu32.to_le_bytes();
        assert_eq!(try_u32_at(&b, 0).unwrap(), 0xDEAD_BEEF);
        assert!(matches!(try_u32_at(&b, 1), Err(StorageError::Corrupt(_))));
        assert_eq!(try_bytes_at(&b, 1, 3).unwrap(), &b[1..4]);
        assert!(try_bytes_at(&b, 2, 3).is_err());
    }
}
