//! R-trees: an in-memory R-tree (LSM memory components) and STR-bulk-loaded
//! on-disk R-trees (LSM disk components).
//!
//! The paper's §V-B spatial study concluded that "the 'right' LSM-based
//! spatial index to provide was simply the R-tree, as R-trees work for both
//! point and non-point data", with one storage tweak: points are not stored
//! as "infinitely small bounding boxes in the index leaves" — leaf entries
//! carry a one-byte shape flag and point entries store 16 bytes instead of 32
//! (experiment E11 measures exactly this).
//!
//! * [`MemRTree`] — insert via least-enlargement choose-subtree and quadratic
//!   split (Guttman), linear remove; backs the LSM memory component.
//! * [`RTreeBuilder`] / [`DiskRTree`] — Sort-Tile-Recursive packing into an
//!   immutable page file with the same trailer-addressed layout as
//!   [`crate::btree`].

use crate::cache::BufferCache;
use crate::error::{Result, StorageError};
use crate::io::{FileId, PageFileWriter, PAGE_SIZE};
use asterix_adm::{Point, Rectangle};
use std::sync::Arc;

const MAGIC: u32 = 0x5254_5245; // "RTRE"
const INTERNAL_CAP: usize = 128;

// ---------------------------------------------------------------------------
// In-memory R-tree
// ---------------------------------------------------------------------------

/// One leaf entry: an MBR (possibly degenerate) plus an opaque payload
/// (typically the encoded primary key).
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialEntry {
    pub mbr: Rectangle,
    pub key: Vec<u8>,
}

enum Node {
    Leaf(Vec<SpatialEntry>),
    Internal(Vec<(Rectangle, Box<Node>)>),
}

impl Node {
    fn mbr(&self) -> Rectangle {
        match self {
            Node::Leaf(es) => es
                .iter()
                .fold(Rectangle::empty(), |acc, e| acc.union(&e.mbr)),
            Node::Internal(cs) => cs
                .iter()
                .fold(Rectangle::empty(), |acc, (r, _)| acc.union(r)),
        }
    }
}

/// A Guttman-style in-memory R-tree with quadratic split.
pub struct MemRTree {
    root: Node,
    max_entries: usize,
    len: usize,
    bytes: usize,
}

impl Default for MemRTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MemRTree {
    /// Creates an empty tree with the default node capacity.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates an empty tree with nodes holding up to `max_entries` entries.
    pub fn with_capacity(max_entries: usize) -> Self {
        MemRTree {
            root: Node::Leaf(Vec::new()),
            max_entries: max_entries.max(4),
            len: 0,
            bytes: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint (for LSM flush budgeting).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    /// Inserts an entry.
    pub fn insert(&mut self, mbr: Rectangle, key: Vec<u8>) {
        self.bytes += 48 + key.len();
        self.len += 1;
        let entry = SpatialEntry { mbr, key };
        if let Some((r1, n1, r2, n2)) = Self::insert_rec(&mut self.root, entry, self.max_entries) {
            // root split: grow the tree
            let old = std::mem::replace(&mut self.root, Node::Internal(Vec::new()));
            drop(old); // old root was moved into n1/n2 by the split
            self.root = Node::Internal(vec![(r1, n1), (r2, n2)]);
        }
    }

    /// Inserts into `node`; on overflow returns the two halves of a split.
    fn insert_rec(
        node: &mut Node,
        entry: SpatialEntry,
        cap: usize,
    ) -> Option<(Rectangle, Box<Node>, Rectangle, Box<Node>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push(entry);
                if entries.len() <= cap {
                    return None;
                }
                let (a, b) = quadratic_split(std::mem::take(entries), |e| e.mbr);
                let (ra, rb) = (
                    a.iter().fold(Rectangle::empty(), |acc, e| acc.union(&e.mbr)),
                    b.iter().fold(Rectangle::empty(), |acc, e| acc.union(&e.mbr)),
                );
                *node = Node::Leaf(Vec::new()); // will be replaced by caller
                Some((ra, Box::new(Node::Leaf(a)), rb, Box::new(Node::Leaf(b))))
            }
            Node::Internal(children) => {
                // choose subtree: least enlargement, ties by smallest area
                let mut best = 0usize;
                let mut best_cost = (f64::INFINITY, f64::INFINITY);
                for (i, (r, _)) in children.iter().enumerate() {
                    let cost = (r.enlargement(&entry.mbr), r.area());
                    if cost < best_cost {
                        best_cost = cost;
                        best = i;
                    }
                }
                let split = Self::insert_rec(&mut children[best].1, entry, cap);
                match split {
                    None => {
                        let child_mbr = children[best].1.mbr();
                        children[best].0 = child_mbr;
                        None
                    }
                    Some((r1, n1, r2, n2)) => {
                        children.remove(best);
                        children.push((r1, n1));
                        children.push((r2, n2));
                        if children.len() <= cap {
                            return None;
                        }
                        let (a, b) = quadratic_split(std::mem::take(children), |(r, _)| *r);
                        let (ra, rb) = (
                            a.iter().fold(Rectangle::empty(), |acc, (r, _)| acc.union(r)),
                            b.iter().fold(Rectangle::empty(), |acc, (r, _)| acc.union(r)),
                        );
                        *node = Node::Internal(Vec::new());
                        Some((
                            ra,
                            Box::new(Node::Internal(a)),
                            rb,
                            Box::new(Node::Internal(b)),
                        ))
                    }
                }
            }
        }
    }

    /// Removes one entry matching `(mbr, key)` exactly; returns whether an
    /// entry was removed. (No tree condensation — acceptable for short-lived
    /// memory components.)
    pub fn remove(&mut self, mbr: &Rectangle, key: &[u8]) -> bool {
        fn rec(node: &mut Node, mbr: &Rectangle, key: &[u8]) -> bool {
            match node {
                Node::Leaf(entries) => {
                    if let Some(pos) = entries
                        .iter()
                        .position(|e| e.mbr == *mbr && e.key == key)
                    {
                        entries.remove(pos);
                        true
                    } else {
                        false
                    }
                }
                Node::Internal(children) => {
                    for (r, child) in children.iter_mut() {
                        if (r.contains_rect(mbr) || r.intersects(mbr))
                            && rec(child, mbr, key) {
                                *r = child.mbr();
                                return true;
                            }
                    }
                    false
                }
            }
        }
        let removed = rec(&mut self.root, mbr, key);
        if removed {
            self.len -= 1;
            self.bytes = self.bytes.saturating_sub(48 + key.len());
        }
        removed
    }

    /// All entries whose MBR intersects `query`.
    pub fn search(&self, query: &Rectangle) -> Vec<SpatialEntry> {
        let mut out = Vec::new();
        fn rec(node: &Node, query: &Rectangle, out: &mut Vec<SpatialEntry>) {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if e.mbr.intersects(query) {
                            out.push(e.clone());
                        }
                    }
                }
                Node::Internal(children) => {
                    for (r, child) in children {
                        if r.intersects(query) {
                            rec(child, query, out);
                        }
                    }
                }
            }
        }
        rec(&self.root, query, &mut out);
        out
    }

    /// All entries, in arbitrary order (used when flushing to disk).
    pub fn entries(&self) -> Vec<SpatialEntry> {
        let mut out = Vec::with_capacity(self.len);
        fn rec(node: &Node, out: &mut Vec<SpatialEntry>) {
            match node {
                Node::Leaf(entries) => out.extend(entries.iter().cloned()),
                Node::Internal(children) => {
                    for (_, c) in children {
                        rec(c, out);
                    }
                }
            }
        }
        rec(&self.root, &mut out);
        out
    }
}

/// Guttman's quadratic split over a generic item type.
fn quadratic_split<T, F: Fn(&T) -> Rectangle>(items: Vec<T>, mbr_of: F) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    debug_assert!(n >= 2);
    let min_fill = (n / 3).max(1);
    // pick seeds: the pair wasting the most area if grouped
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in i + 1..n {
            let (ri, rj) = (mbr_of(&items[i]), mbr_of(&items[j]));
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut a: Vec<T> = Vec::new();
    let mut b: Vec<T> = Vec::new();
    let mut ra = Rectangle::empty();
    let mut rb = Rectangle::empty();
    let mut rest: Vec<T> = Vec::with_capacity(n - 2);
    for (idx, item) in items.into_iter().enumerate() {
        if idx == s1 {
            ra = mbr_of(&item);
            a.push(item);
        } else if idx == s2 {
            rb = mbr_of(&item);
            b.push(item);
        } else {
            rest.push(item);
        }
    }
    let total = rest.len() + 2;
    for item in rest {
        let r = mbr_of(&item);
        // force assignment if one side risks under-fill
        let remaining = total - a.len() - b.len();
        if a.len() + remaining <= min_fill {
            ra = ra.union(&r);
            a.push(item);
            continue;
        }
        if b.len() + remaining <= min_fill {
            rb = rb.union(&r);
            b.push(item);
            continue;
        }
        let (ca, cb) = (ra.enlargement(&r), rb.enlargement(&r));
        if ca < cb || (ca == cb && ra.area() <= rb.area()) {
            ra = ra.union(&r);
            a.push(item);
        } else {
            rb = rb.union(&r);
            b.push(item);
        }
    }
    (a, b)
}

// ---------------------------------------------------------------------------
// Disk R-tree (STR bulk load)
// ---------------------------------------------------------------------------

fn write_rect(out: &mut Vec<u8>, r: &Rectangle) {
    out.extend_from_slice(&r.min.x.to_le_bytes());
    out.extend_from_slice(&r.min.y.to_le_bytes());
    out.extend_from_slice(&r.max.x.to_le_bytes());
    out.extend_from_slice(&r.max.y.to_le_bytes());
}

fn read_rect(buf: &[u8]) -> Rectangle {
    let f = |i: usize| crate::le::f64_at(buf, i);
    Rectangle {
        min: Point::new(f(0), f(8)),
        max: Point::new(f(16), f(24)),
    }
}

/// Builds an immutable disk R-tree from a batch of entries using
/// Sort-Tile-Recursive packing.
///
/// `point_optimize` enables the paper's §V-B leaf storage optimization:
/// degenerate (point) MBRs are stored as 16 bytes + flag instead of 32.
pub struct RTreeBuilder {
    writer: PageFileWriter,
    point_optimize: bool,
}

impl RTreeBuilder {
    /// Creates a builder writing into `writer`.
    pub fn new(writer: PageFileWriter, point_optimize: bool) -> Self {
        RTreeBuilder { writer, point_optimize }
    }

    /// Packs `entries` and finalizes the file. Entry keys must fit a page.
    pub fn build(mut self, mut entries: Vec<SpatialEntry>) -> Result<BuiltRTree> {
        for e in &entries {
            if e.key.len() + 64 > PAGE_SIZE / 2 {
                return Err(StorageError::RecordTooLarge {
                    size: e.key.len(),
                    max: PAGE_SIZE / 2 - 64,
                });
            }
        }
        let n = entries.len();
        // Leaf capacity is byte-aware: the point-MBR optimization (16-byte
        // point entries instead of 32-byte rectangles) therefore packs more
        // entries per page and shrinks the component (experiment E11).
        let max_entry_bytes = entries
            .iter()
            .map(|e| {
                let mbr_bytes = if self.point_optimize && e.mbr.is_point() { 16 } else { 32 };
                1 + mbr_bytes + 2 + e.key.len()
            })
            .max()
            .unwrap_or(40);
        let leaf_cap = ((PAGE_SIZE - 3) / max_entry_bytes).clamp(2, 1024);
        // STR: sort by center-x, slice into vertical slabs, sort each by
        // center-y, pack runs of leaf_cap.
        let n_leaves = n.div_ceil(leaf_cap).max(1);
        let slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_size = n.div_ceil(slabs.max(1)).max(1);
        entries.sort_by(|a, b| {
            a.mbr
                .center()
                .x
                .total_cmp(&b.mbr.center().x)
                .then(a.mbr.center().y.total_cmp(&b.mbr.center().y))
        });
        let mut level: Vec<(Rectangle, u64)> = Vec::new();
        let mut page_no = 0u64;
        let mut i = 0usize;
        while i < n {
            let slab_end = (i + slab_size).min(n);
            let slab = &mut entries[i..slab_end];
            slab.sort_by(|a, b| a.mbr.center().y.total_cmp(&b.mbr.center().y));
            let mut j = 0usize;
            while j < slab.len() {
                let run_end = (j + leaf_cap).min(slab.len());
                let run = &slab[j..run_end];
                let page = self.emit_leaf(run)?;
                let mbr = run
                    .iter()
                    .fold(Rectangle::empty(), |acc, e| acc.union(&e.mbr));
                self.writer.append(&page)?;
                level.push((mbr, page_no));
                page_no += 1;
                j = run_end;
            }
            i = slab_end;
        }
        if level.is_empty() {
            // empty tree: emit one empty leaf so the root exists
            let page = self.emit_leaf(&[])?;
            self.writer.append(&page)?;
            level.push((Rectangle::empty(), 0));
            page_no = 1;
        }
        // internal levels
        let mut root_page = level[0].1;
        while level.len() > 1 {
            let mut upper = Vec::new();
            for chunk in level.chunks(INTERNAL_CAP) {
                let mut page = vec![0u8; PAGE_SIZE];
                page[0] = 0;
                page[1..3].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                let mut w = 3usize;
                let mut mbr = Rectangle::empty();
                for (r, child) in chunk {
                    let mut buf = Vec::with_capacity(40);
                    write_rect(&mut buf, r);
                    buf.extend_from_slice(&child.to_le_bytes());
                    page[w..w + buf.len()].copy_from_slice(&buf);
                    w += buf.len();
                    mbr = mbr.union(r);
                }
                self.writer.append(&page)?;
                upper.push((mbr, page_no));
                page_no += 1;
            }
            level = upper;
            root_page = level[0].1;
        }
        // trailer
        let mut trailer = vec![0u8; PAGE_SIZE];
        trailer[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        trailer[4..12].copy_from_slice(&root_page.to_le_bytes());
        trailer[12..20].copy_from_slice(&(n as u64).to_le_bytes());
        trailer[20] = self.point_optimize as u8;
        self.writer.append(&trailer)?;
        let data_pages = page_no;
        let file = self.writer.finish()?;
        Ok(BuiltRTree { file, root_page, entry_count: n as u64, data_pages })
    }

    fn emit_leaf(&self, run: &[SpatialEntry]) -> Result<Vec<u8>> {
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 1;
        page[1..3].copy_from_slice(&(run.len() as u16).to_le_bytes());
        let mut w = 3usize;
        for e in run {
            let mut buf = Vec::with_capacity(40 + e.key.len());
            let as_point = self.point_optimize && e.mbr.is_point();
            buf.push(as_point as u8);
            if as_point {
                buf.extend_from_slice(&e.mbr.min.x.to_le_bytes());
                buf.extend_from_slice(&e.mbr.min.y.to_le_bytes());
            } else {
                write_rect(&mut buf, &e.mbr);
            }
            buf.extend_from_slice(&(e.key.len() as u16).to_le_bytes());
            buf.extend_from_slice(&e.key);
            if w + buf.len() > PAGE_SIZE {
                return Err(StorageError::RecordTooLarge {
                    size: buf.len(),
                    max: PAGE_SIZE - 3,
                });
            }
            page[w..w + buf.len()].copy_from_slice(&buf);
            w += buf.len();
        }
        Ok(page)
    }
}

/// Result of an STR bulk load.
pub struct BuiltRTree {
    pub file: FileId,
    pub root_page: u64,
    pub entry_count: u64,
    /// Tree pages (excluding the trailer) — the component's on-disk size in
    /// pages, compared in experiment E11.
    pub data_pages: u64,
}

/// Read-only handle on a disk R-tree component.
pub struct DiskRTree {
    cache: Arc<BufferCache>,
    file: FileId,
    root_page: u64,
    entry_count: u64,
    data_pages: u64,
}

impl DiskRTree {
    /// Wraps a freshly built component.
    pub fn from_built(cache: Arc<BufferCache>, built: BuiltRTree) -> Self {
        DiskRTree {
            cache,
            file: built.file,
            root_page: built.root_page,
            entry_count: built.entry_count,
            data_pages: built.data_pages,
        }
    }

    /// Opens an existing component file via its trailer.
    pub fn open(cache: Arc<BufferCache>, file: FileId) -> Result<Self> {
        let n_pages = cache.manager().page_count(file)?;
        if n_pages == 0 {
            return Err(StorageError::Corrupt("empty rtree file".into()));
        }
        let trailer = cache.manager().read_page(file, n_pages - 1)?;
        let magic = crate::le::try_u32_at(&trailer, 0)?;
        if magic != MAGIC {
            return Err(StorageError::Corrupt("bad rtree magic".into()));
        }
        let root_page = crate::le::try_u64_at(&trailer, 4)?;
        let entry_count = crate::le::try_u64_at(&trailer, 12)?;
        Ok(DiskRTree { cache, file, root_page, entry_count, data_pages: n_pages - 1 })
    }

    /// The component file id.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entry_count
    }

    /// True when the component holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entry_count == 0
    }

    /// Tree pages on disk (E11's storage-size metric).
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// All entries intersecting `query`.
    pub fn search(&self, query: &Rectangle) -> Result<Vec<SpatialEntry>> {
        let mut out = Vec::new();
        if self.entry_count == 0 {
            return Ok(out);
        }
        self.search_page(self.root_page, query, &mut out)?;
        Ok(out)
    }

    fn search_page(
        &self,
        page_no: u64,
        query: &Rectangle,
        out: &mut Vec<SpatialEntry>,
    ) -> Result<()> {
        let page = self.cache.get(self.file, page_no)?;
        let is_leaf = page[0] == 1;
        let n = crate::le::u16_at(&page, 1) as usize;
        let mut r = 3usize;
        if is_leaf {
            for _ in 0..n {
                let as_point = crate::le::try_bytes_at(&page, r, 1)?[0] == 1;
                r += 1;
                let mbr = if as_point {
                    let x = crate::le::try_f64_at(&page, r)?;
                    let y = crate::le::try_f64_at(&page, r + 8)?;
                    r += 16;
                    Point::new(x, y).to_mbr()
                } else {
                    let rect = read_rect(crate::le::try_bytes_at(&page, r, 32)?);
                    r += 32;
                    rect
                };
                let klen = crate::le::try_u16_at(&page, r)? as usize;
                r += 2;
                let key = crate::le::try_bytes_at(&page, r, klen)?.to_vec();
                r += klen;
                if mbr.intersects(query) {
                    out.push(SpatialEntry { mbr, key });
                }
            }
        } else {
            for _ in 0..n {
                let mbr = read_rect(crate::le::try_bytes_at(&page, r, 32)?);
                r += 32;
                let child = crate::le::try_u64_at(&page, r)?;
                r += 8;
                if mbr.intersects(query) {
                    self.search_page(child, query, out)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileManager;
    use crate::stats::IoStats;
    use crate::testutil::TempDir;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rectangle {
        Rectangle::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    fn grid_points(n_side: usize) -> Vec<SpatialEntry> {
        let mut out = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                out.push(SpatialEntry {
                    mbr: Point::new(i as f64, j as f64).to_mbr(),
                    key: format!("{i},{j}").into_bytes(),
                });
            }
        }
        out
    }

    #[test]
    fn mem_rtree_insert_search() {
        let mut t = MemRTree::new();
        for e in grid_points(30) {
            t.insert(e.mbr, e.key);
        }
        assert_eq!(t.len(), 900);
        let hits = t.search(&rect(5.0, 5.0, 7.0, 7.0));
        assert_eq!(hits.len(), 9, "3x3 grid points in range");
        let all = t.search(&rect(-1.0, -1.0, 30.0, 30.0));
        assert_eq!(all.len(), 900);
        let none = t.search(&rect(100.0, 100.0, 110.0, 110.0));
        assert!(none.is_empty());
    }

    #[test]
    fn mem_rtree_remove() {
        let mut t = MemRTree::new();
        for e in grid_points(10) {
            t.insert(e.mbr, e.key);
        }
        let target = Point::new(3.0, 4.0).to_mbr();
        assert!(t.remove(&target, b"3,4"));
        assert!(!t.remove(&target, b"3,4"), "already removed");
        assert_eq!(t.len(), 99);
        let hits = t.search(&rect(3.0, 4.0, 3.0, 4.0));
        assert!(hits.is_empty());
    }

    #[test]
    fn mem_rtree_rect_entries() {
        let mut t = MemRTree::new();
        t.insert(rect(0.0, 0.0, 10.0, 10.0), b"big".to_vec());
        t.insert(rect(20.0, 20.0, 21.0, 21.0), b"small".to_vec());
        let hits = t.search(&rect(5.0, 5.0, 6.0, 6.0));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key, b"big");
    }

    #[test]
    fn mem_rtree_entries_roundtrip() {
        let mut t = MemRTree::with_capacity(4); // force splits
        for e in grid_points(12) {
            t.insert(e.mbr, e.key);
        }
        let mut entries = t.entries();
        assert_eq!(entries.len(), 144);
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries.dedup_by(|a, b| a.key == b.key);
        assert_eq!(entries.len(), 144, "no duplicates, none lost");
    }

    fn setup() -> (Arc<BufferCache>, TempDir) {
        let dir = TempDir::new();
        let fm = FileManager::new(dir.path(), IoStats::new()).unwrap();
        (BufferCache::new(fm, 128), dir)
    }

    #[test]
    fn disk_rtree_str_search() {
        let (cache, _d) = setup();
        let w = cache.manager().bulk_writer("r.rtree").unwrap();
        let built = RTreeBuilder::new(w, true).build(grid_points(40)).unwrap();
        let t = DiskRTree::from_built(Arc::clone(&cache), built);
        assert_eq!(t.len(), 1600);
        let hits = t.search(&rect(10.0, 10.0, 14.0, 14.0)).unwrap();
        assert_eq!(hits.len(), 25);
        let all = t.search(&rect(-1.0, -1.0, 40.0, 40.0)).unwrap();
        assert_eq!(all.len(), 1600);
        assert!(t.search(&rect(500.0, 500.0, 501.0, 501.0)).unwrap().is_empty());
    }

    #[test]
    fn disk_rtree_empty_and_reopen() {
        let (cache, dir) = setup();
        {
            let w = cache.manager().bulk_writer("e.rtree").unwrap();
            let built = RTreeBuilder::new(w, true).build(vec![]).unwrap();
            let t = DiskRTree::from_built(Arc::clone(&cache), built);
            assert!(t.is_empty());
            assert!(t.search(&rect(0.0, 0.0, 1.0, 1.0)).unwrap().is_empty());
        }
        let fm2 = FileManager::new(dir.path(), IoStats::new()).unwrap();
        let cache2 = BufferCache::new(fm2, 8);
        let fid = cache2.manager().open("e.rtree").unwrap();
        let t = DiskRTree::open(cache2, fid).unwrap();
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn point_optimization_shrinks_component() {
        let (cache, _d) = setup();
        let pts = grid_points(60); // 3600 points
        let w1 = cache.manager().bulk_writer("opt.rtree").unwrap();
        let opt = RTreeBuilder::new(w1, true).build(pts.clone()).unwrap();
        let w2 = cache.manager().bulk_writer("noopt.rtree").unwrap();
        let noopt = RTreeBuilder::new(w2, false).build(pts).unwrap();
        assert!(
            opt.data_pages < noopt.data_pages,
            "point-optimized {} pages vs {} pages",
            opt.data_pages,
            noopt.data_pages
        );
        // identical query results
        let t1 = DiskRTree::from_built(Arc::clone(&cache), opt);
        let t2 = DiskRTree::from_built(Arc::clone(&cache), noopt);
        let q = rect(10.0, 10.0, 20.0, 20.0);
        let mut h1 = t1.search(&q).unwrap();
        let mut h2 = t2.search(&q).unwrap();
        h1.sort_by(|a, b| a.key.cmp(&b.key));
        h2.sort_by(|a, b| a.key.cmp(&b.key));
        assert_eq!(h1, h2);
    }

    #[test]
    fn disk_rtree_rectangles() {
        let (cache, _d) = setup();
        let mut entries = Vec::new();
        for i in 0..200 {
            let x = (i % 20) as f64 * 10.0;
            let y = (i / 20) as f64 * 10.0;
            entries.push(SpatialEntry {
                mbr: rect(x, y, x + 5.0, y + 5.0),
                key: format!("r{i}").into_bytes(),
            });
        }
        let w = cache.manager().bulk_writer("rects.rtree").unwrap();
        let t = DiskRTree::from_built(
            Arc::clone(&cache),
            RTreeBuilder::new(w, true).build(entries).unwrap(),
        );
        let hits = t.search(&rect(0.0, 0.0, 12.0, 12.0)).unwrap();
        assert_eq!(hits.len(), 4, "2x2 block of 10-spaced 5-wide rects");
    }
}
