//! Spatial-key linearization: the alternatives compared against the LSM
//! R-tree in the paper's §V-B study (ref \[23\], experiment E2).
//!
//! * [`hilbert_d`] — Hilbert space-filling curve index of a 2-D point;
//! * [`z_order`] — Z-order (Morton) interleaving;
//! * [`GridScheme`] — a static grid mapping points to cell ids.
//!
//! Each maps a point into a one-dimensional key so an ordinary LSM B+ tree
//! can index spatial data; range queries become one or more key-range probes
//! plus an exact post-filter.

use asterix_adm::{Point, Rectangle};

/// Resolution of the linearizations (bits per dimension).
pub const CURVE_BITS: u32 = 16;

/// A world rectangle establishing the coordinate frame for linearization.
/// Points are clamped into the world and quantized to `CURVE_BITS` bits.
#[derive(Debug, Clone, Copy)]
pub struct World {
    pub bounds: Rectangle,
}

impl World {
    /// Creates a coordinate frame over `bounds`.
    pub fn new(bounds: Rectangle) -> Self {
        World { bounds }
    }

    /// A frame for longitude/latitude data.
    pub fn lon_lat() -> Self {
        World::new(Rectangle::new(Point::new(-180.0, -90.0), Point::new(180.0, 90.0)))
    }

    /// Quantizes a point to curve coordinates.
    pub fn quantize(&self, p: &Point) -> (u32, u32) {
        let max = ((1u64 << CURVE_BITS) - 1) as f64;
        let w = (self.bounds.max.x - self.bounds.min.x).max(f64::MIN_POSITIVE);
        let h = (self.bounds.max.y - self.bounds.min.y).max(f64::MIN_POSITIVE);
        let fx = ((p.x - self.bounds.min.x) / w).clamp(0.0, 1.0);
        let fy = ((p.y - self.bounds.min.y) / h).clamp(0.0, 1.0);
        ((fx * max) as u32, (fy * max) as u32)
    }

    /// Hilbert key of a point.
    pub fn hilbert_key(&self, p: &Point) -> u64 {
        let (x, y) = self.quantize(p);
        hilbert_d(x, y, CURVE_BITS)
    }

    /// Z-order key of a point.
    pub fn z_key(&self, p: &Point) -> u64 {
        let (x, y) = self.quantize(p);
        z_order(x, y)
    }
}

/// Hilbert curve distance of cell `(x, y)` on a `2^bits × 2^bits` grid
/// (the classic Wikipedia `xy2d` algorithm).
pub fn hilbert_d(mut x: u32, mut y: u32, bits: u32) -> u64 {
    let n: u32 = 1 << bits;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // rotate the quadrant so recursion sees canonical orientation
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Z-order (Morton) interleave of two 32-bit coordinates into a 64-bit key.
pub fn z_order(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

/// A static uniform grid over a world rectangle; cells are numbered
/// row-major. The grid-index alternative of §V-B stores `(cell_id, pk)` pairs
/// in an LSM B+ tree.
#[derive(Debug, Clone, Copy)]
pub struct GridScheme {
    pub world: World,
    pub cells_x: u32,
    pub cells_y: u32,
}

impl GridScheme {
    /// Creates a `cells_x × cells_y` grid over `world`.
    pub fn new(world: World, cells_x: u32, cells_y: u32) -> Self {
        GridScheme { world, cells_x: cells_x.max(1), cells_y: cells_y.max(1) }
    }

    /// Cell id containing the point.
    pub fn cell_of(&self, p: &Point) -> u64 {
        let b = &self.world.bounds;
        let w = (b.max.x - b.min.x).max(f64::MIN_POSITIVE);
        let h = (b.max.y - b.min.y).max(f64::MIN_POSITIVE);
        let cx = (((p.x - b.min.x) / w * self.cells_x as f64) as i64)
            .clamp(0, self.cells_x as i64 - 1) as u64;
        let cy = (((p.y - b.min.y) / h * self.cells_y as f64) as i64)
            .clamp(0, self.cells_y as i64 - 1) as u64;
        cy * self.cells_x as u64 + cx
    }

    /// All cell ids overlapping the query rectangle.
    pub fn cells_for(&self, q: &Rectangle) -> Vec<u64> {
        let b = &self.world.bounds;
        let w = (b.max.x - b.min.x).max(f64::MIN_POSITIVE);
        let h = (b.max.y - b.min.y).max(f64::MIN_POSITIVE);
        let cx0 = (((q.min.x - b.min.x) / w * self.cells_x as f64).floor() as i64)
            .clamp(0, self.cells_x as i64 - 1);
        let cx1 = (((q.max.x - b.min.x) / w * self.cells_x as f64).floor() as i64)
            .clamp(0, self.cells_x as i64 - 1);
        let cy0 = (((q.min.y - b.min.y) / h * self.cells_y as f64).floor() as i64)
            .clamp(0, self.cells_y as i64 - 1);
        let cy1 = (((q.max.y - b.min.y) / h * self.cells_y as f64).floor() as i64)
            .clamp(0, self.cells_y as i64 - 1);
        let mut out = Vec::new();
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                out.push(cy as u64 * self.cells_x as u64 + cx as u64);
            }
        }
        out
    }
}

/// Decomposes a query rectangle into curve-key ranges for a linearized index.
///
/// A coarse but effective strategy: quantize the query corners, walk the grid
/// cells at a reduced resolution (`probe_bits` per dimension), compute each
/// cell's curve-key interval, and coalesce adjacent intervals. Candidates in
/// those intervals still require an exact post-filter — that over-fetch is
/// precisely the linearized indexes' handicap in the §V-B study.
pub fn curve_ranges(
    world: &World,
    q: &Rectangle,
    probe_bits: u32,
    curve: fn(u32, u32, u32) -> u64,
) -> Vec<(u64, u64)> {
    let shift = CURVE_BITS - probe_bits;
    let cell_span = 1u64 << (2 * shift); // curve keys per coarse cell
    let (qx0, qy0) = world.quantize(&q.min);
    let (qx1, qy1) = world.quantize(&q.max);
    let (cx0, cx1) = (qx0 >> shift, qx1 >> shift);
    let (cy0, cy1) = (qy0 >> shift, qy1 >> shift);
    let mut starts: Vec<u64> = Vec::new();
    for cy in cy0..=cy1 {
        for cx in cx0..=cx1 {
            // Curve value of the cell's origin at full resolution: for both
            // Hilbert and Z at aligned power-of-two cells, the cell covers one
            // contiguous curve interval of length cell_span.
            let d = curve(cx << shift, cy << shift, CURVE_BITS);
            starts.push(d & !(cell_span - 1));
        }
    }
    starts.sort_unstable();
    starts.dedup();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for s in starts {
        match out.last_mut() {
            Some((_, end)) if *end == s => *end = s + cell_span,
            _ => out.push((s, s + cell_span)),
        }
    }
    out
}

/// Z-order variant of [`curve_ranges`] (same signature trick).
pub fn z_curve(x: u32, y: u32, _bits: u32) -> u64 {
    z_order(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_small_grid_is_a_permutation() {
        // 4x4 grid: every distance 0..16 appears exactly once
        let mut seen = [false; 16];
        for x in 0..4u32 {
            for y in 0..4u32 {
                let d = hilbert_d(x, y, 2) as usize;
                assert!(d < 16);
                assert!(!seen[d], "duplicate hilbert d {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_neighbors_are_adjacent() {
        // consecutive curve positions are grid neighbors (the locality
        // property that motivates Hilbert over Z)
        let bits = 4;
        let side = 1u32 << bits;
        let mut by_d = vec![(0u32, 0u32); (side * side) as usize];
        for x in 0..side {
            for y in 0..side {
                by_d[hilbert_d(x, y, bits) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(dist, 1, "curve jump between ({x0},{y0}) and ({x1},{y1})");
        }
    }

    #[test]
    fn z_order_interleaves() {
        assert_eq!(z_order(0, 0), 0);
        assert_eq!(z_order(1, 0), 1);
        assert_eq!(z_order(0, 1), 2);
        assert_eq!(z_order(1, 1), 3);
        assert_eq!(z_order(2, 0), 4);
        assert_eq!(z_order(u32::MAX, u32::MAX), u64::MAX);
    }

    #[test]
    fn world_quantization() {
        let w = World::lon_lat();
        let (x0, y0) = w.quantize(&Point::new(-180.0, -90.0));
        assert_eq!((x0, y0), (0, 0));
        let (x1, y1) = w.quantize(&Point::new(180.0, 90.0));
        assert_eq!((x1, y1), ((1 << CURVE_BITS) - 1, (1 << CURVE_BITS) - 1));
        // out-of-world points clamp
        let (cx, cy) = w.quantize(&Point::new(999.0, -999.0));
        assert_eq!((cx, cy), ((1 << CURVE_BITS) - 1, 0));
    }

    #[test]
    fn grid_cells() {
        let g = GridScheme::new(
            World::new(Rectangle::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))),
            10,
            10,
        );
        assert_eq!(g.cell_of(&Point::new(5.0, 5.0)), 0);
        assert_eq!(g.cell_of(&Point::new(95.0, 5.0)), 9);
        assert_eq!(g.cell_of(&Point::new(5.0, 95.0)), 90);
        let cells = g.cells_for(&Rectangle::new(Point::new(14.0, 14.0), Point::new(26.0, 26.0)));
        assert_eq!(cells.len(), 4, "2x2 cells overlapped");
        assert!(cells.contains(&11) && cells.contains(&22));
        // boundary clamping
        let all = g.cells_for(&Rectangle::new(Point::new(-10.0, -10.0), Point::new(200.0, 200.0)));
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn curve_ranges_cover_query_points() {
        let world = World::new(Rectangle::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)));
        let q = Rectangle::new(Point::new(100.0, 100.0), Point::new(300.0, 300.0));
        for (name, curve) in [("hilbert", hilbert_d as fn(u32, u32, u32) -> u64), ("z", z_curve)] {
            let ranges = curve_ranges(&world, &q, 6, curve);
            assert!(!ranges.is_empty());
            // every point inside the query must fall in some range
            for px in (100..=300).step_by(40) {
                for py in (100..=300).step_by(40) {
                    let p = Point::new(px as f64, py as f64);
                    let (x, y) = world.quantize(&p);
                    let d = curve(x, y, CURVE_BITS);
                    assert!(
                        ranges.iter().any(|(lo, hi)| d >= *lo && d < *hi),
                        "{name}: point ({px},{py}) d={d} not covered by {ranges:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn hilbert_ranges_are_fewer_or_equal_than_z_for_square_queries() {
        // Hilbert's locality typically yields fewer, longer runs.
        let world = World::new(Rectangle::new(Point::new(0.0, 0.0), Point::new(1024.0, 1024.0)));
        let q = Rectangle::new(Point::new(200.0, 200.0), Point::new(460.0, 460.0));
        let h = curve_ranges(&world, &q, 7, hilbert_d);
        let z = curve_ranges(&world, &q, 7, z_curve);
        assert!(
            h.len() <= z.len() + 2,
            "hilbert {} ranges vs z {} ranges",
            h.len(),
            z.len()
        );
    }
}
