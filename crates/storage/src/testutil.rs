//! Test-only helpers shared across the crate's unit tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Minimal temporary-directory guard: unique path, removed on drop.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new() -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed); // xlint: ordering(unique temp-dir suffix; no synchronization)
        let pid = std::process::id();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap() // xlint: allow(panic, "module is #[cfg(test)]-gated in lib.rs")
            .subsec_nanos();
        let p = std::env::temp_dir().join(format!("asterix-storage-test-{pid}-{n}-{nanos}"));
        std::fs::create_dir_all(&p).unwrap(); // xlint: allow(panic, "module is #[cfg(test)]-gated in lib.rs")
        TempDir(p)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
