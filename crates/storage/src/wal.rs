//! Write-ahead log for record-level transactions (paper Section III item 9:
//! "basic NoSQL-like transactional capabilities").
//!
//! The log is an append-only file of checksummed records. Each data
//! operation (put/delete of one record in one dataset partition) is logged
//! before being applied to the LSM memory component; `Commit` records make a
//! transaction durable. Recovery replays the log, re-applying operations of
//! committed transactions only — uncommitted tails and torn writes are
//! discarded at the first checksum mismatch.

use crate::error::{Result, StorageError};
use crate::faults::{FaultInjector, WritePlan};
use crate::le;
use crate::lock_order::OrderedMutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Log sequence number: byte offset of the record in the log file.
pub type Lsn = u64;

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A data operation by a transaction.
    Update {
        txn_id: u64,
        dataset: String,
        partition: u32,
        /// `true` = delete (value empty), `false` = put.
        is_delete: bool,
        key: Vec<u8>,
        value: Vec<u8>,
    },
    /// Transaction commit — everything it logged is durable.
    Commit { txn_id: u64 },
    /// Transaction abort — its updates must be ignored at recovery.
    Abort { txn_id: u64 },
    /// All operations before this point are flushed into components; replay
    /// can start here.
    Checkpoint,
    /// Durable ingestion frontier of a feed: committing the surrounding
    /// transaction makes `seq` the feed's last durable sequence number.
    /// Logged immediately before the `Commit` of the batch that carried it,
    /// so recovery can hand a resumed feed the exact restart point.
    FeedCursor { txn_id: u64, feed: String, seq: u64 },
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WalRecord::Update { txn_id, dataset, partition, is_delete, key, value } => {
                out.push(1);
                out.extend_from_slice(&txn_id.to_le_bytes());
                out.extend_from_slice(&(dataset.len() as u32).to_le_bytes());
                out.extend_from_slice(dataset.as_bytes());
                out.extend_from_slice(&partition.to_le_bytes());
                out.push(*is_delete as u8);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            WalRecord::Commit { txn_id } => {
                out.push(2);
                out.extend_from_slice(&txn_id.to_le_bytes());
            }
            WalRecord::Abort { txn_id } => {
                out.push(3);
                out.extend_from_slice(&txn_id.to_le_bytes());
            }
            WalRecord::Checkpoint => out.push(4),
            WalRecord::FeedCursor { txn_id, feed, seq } => {
                out.push(5);
                out.extend_from_slice(&txn_id.to_le_bytes());
                out.extend_from_slice(&(feed.len() as u32).to_le_bytes());
                out.extend_from_slice(feed.as_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<WalRecord> {
        let corrupt = || StorageError::Corrupt("bad WAL record".into());
        let mut r = 0usize;
        let take = |n: usize, r: &mut usize| -> Result<&[u8]> {
            if *r + n > buf.len() {
                return Err(corrupt());
            }
            let s = &buf[*r..*r + n];
            *r += n;
            Ok(s)
        };
        let take_u32 = |r: &mut usize| -> Result<u32> {
            let v = le::try_u32_at(buf, *r)?;
            *r += 4;
            Ok(v)
        };
        let take_u64 = |r: &mut usize| -> Result<u64> {
            let v = le::try_u64_at(buf, *r)?;
            *r += 8;
            Ok(v)
        };
        let tag = take(1, &mut r)?[0];
        match tag {
            1 => {
                let txn_id = take_u64(&mut r)?;
                let dlen = take_u32(&mut r)? as usize;
                let dataset = std::str::from_utf8(take(dlen, &mut r)?)
                    .map_err(|_| corrupt())?
                    .to_owned();
                let partition = take_u32(&mut r)?;
                let is_delete = take(1, &mut r)?[0] != 0;
                let klen = take_u32(&mut r)? as usize;
                let key = take(klen, &mut r)?.to_vec();
                let vlen = take_u32(&mut r)? as usize;
                let value = take(vlen, &mut r)?.to_vec();
                Ok(WalRecord::Update { txn_id, dataset, partition, is_delete, key, value })
            }
            2 => Ok(WalRecord::Commit { txn_id: take_u64(&mut r)? }),
            3 => Ok(WalRecord::Abort { txn_id: take_u64(&mut r)? }),
            4 => Ok(WalRecord::Checkpoint),
            5 => {
                let txn_id = take_u64(&mut r)?;
                let flen = take_u32(&mut r)? as usize;
                let feed = std::str::from_utf8(take(flen, &mut r)?)
                    .map_err(|_| corrupt())?
                    .to_owned();
                let seq = take_u64(&mut r)?;
                Ok(WalRecord::FeedCursor { txn_id, feed, seq })
            }
            _ => Err(corrupt()),
        }
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in data {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Appender over a log file.
///
/// Records are staged in an internal buffer and persisted by [`WalWriter::sync`]
/// with one positioned write followed by an fsync — both of which are
/// failpoints when a [`FaultInjector`] is wired in, so crashes can land
/// between, or in the middle of, either step.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Records appended but not yet flushed.
    buf: Vec<u8>,
    /// Bytes of valid log on disk; the flush offset.
    persisted: u64,
    faults: Option<Arc<FaultInjector>>,
}

impl WalWriter {
    /// Opens (creating or appending to) the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        WalWriter::open_with_faults(path, None)
    }

    /// Opens the log with an optional fault injector on its write paths.
    ///
    /// A torn or corrupt tail left by a crash is truncated here: appending
    /// after garbage would strand every later record behind the scan stop,
    /// silently losing committed transactions on the *next* recovery.
    pub fn open_with_faults( // xlint: allow(blocking, "WAL open/replay happens at storage-env open, before jobs are served")
        path: impl AsRef<Path>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // truncate(false): an existing log must survive reopen — recovery
        // truncates only the invalid tail below, via set_len
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();
        let persisted = valid_prefix_len(&path)?;
        if persisted < file_len {
            if let Some(f) = &faults {
                f.on_truncate(&format!(
                    "{}:truncate",
                    crate::faults::target_name(&path)
                ))?;
            }
            let wrap = |source: std::io::Error| StorageError::WalTruncate {
                path: path.clone(),
                valid_len: persisted,
                file_len,
                source,
            };
            file.set_len(persisted).map_err(wrap)?;
            file.sync_data().map_err(wrap)?;
        }
        Ok(WalWriter { file, path, buf: Vec::new(), persisted, faults })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record (buffered); returns its LSN.
    pub fn append(&mut self, record: &WalRecord) -> Result<Lsn> {
        if let Some(f) = &self.faults {
            f.check_alive("wal append")?;
        }
        let lsn = self.next_lsn();
        let payload = record.encode();
        let crc = fnv1a(&payload);
        self.buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(&payload);
        Ok(lsn)
    }

    /// Flushes buffered records and forces them to stable storage — the
    /// commit-time durability point.
    ///
    /// On an injected short write the buffer is kept and `sync` may be
    /// retried: the flush rewrites the same byte range at the same offset,
    /// so a partial prefix on disk is simply overwritten.
    pub fn sync(&mut self) -> Result<()> { // xlint: allow(blocking, "WAL sync is the durability contract; group commit amortizes the fdatasync")
        if !self.buf.is_empty() {
            if let Some(f) = self.faults.clone() {
                let target = format!("{}:flush", crate::faults::target_name(&self.path));
                match f.on_write(&target, self.buf.len())? {
                    WritePlan::Full => {}
                    WritePlan::Torn { kept } | WritePlan::Short { kept } => {
                        // a torn flush: only a prefix of the buffered bytes
                        // reaches the file, possibly cutting mid-record
                        if kept > 0 {
                            self.file.write_all_at(&self.buf[..kept], self.persisted)?;
                        }
                        return Err(f.write_failed(&target));
                    }
                }
            }
            self.file.write_all_at(&self.buf, self.persisted)?;
            self.persisted += self.buf.len() as u64;
            self.buf.clear();
        }
        if let Some(f) = self.faults.clone() {
            f.on_sync(&format!("{}:fsync", crate::faults::target_name(&self.path)))?;
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// LSN the next record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.persisted + self.buf.len() as u64
    }
}

/// Scans a log image, returning intact records and the byte length of the
/// valid prefix (everything after it is a torn/corrupt crash tail).
fn scan_log(buf: &[u8]) -> (Vec<(Lsn, WalRecord)>, u64) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= buf.len() {
        let len = le::u32_at(buf, pos) as usize;
        let crc = le::u32_at(buf, pos + 4);
        if pos + 8 + len > buf.len() {
            break; // torn tail
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if fnv1a(payload) != crc {
            break; // corrupt tail
        }
        match WalRecord::decode(payload) {
            Ok(rec) => out.push((pos as Lsn, rec)),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (out, pos as u64)
}

fn read_file_or_empty(path: &Path) -> Result<Vec<u8>> { // xlint: allow(blocking, "WAL replay read at recovery time; single-threaded startup")
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Reads all intact records from a log file; stops silently at the first
/// torn/corrupt record (the crash tail).
pub fn read_log(path: impl AsRef<Path>) -> Result<Vec<(Lsn, WalRecord)>> {
    Ok(scan_log(&read_file_or_empty(path.as_ref())?).0)
}

/// Byte length of the valid record prefix of a log file (0 if missing).
pub fn valid_prefix_len(path: impl AsRef<Path>) -> Result<u64> {
    Ok(scan_log(&read_file_or_empty(path.as_ref())?).1)
}

/// Truncates the log (after a checkpoint has made all components durable).
pub fn truncate_log(path: impl AsRef<Path>) -> Result<()> {
    match OpenOptions::new().write(true).truncate(true).open(path.as_ref()) {
        Ok(_) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// One replayable operation: `(txn_id, dataset, partition, is_delete, key, value)`.
pub type ReplayOp = (u64, String, u32, bool, Vec<u8>, Vec<u8>);

/// Replays a log: returns the operations of *committed* transactions, in log
/// order, starting after the last checkpoint.
pub fn committed_operations(
    records: &[(Lsn, WalRecord)],
) -> Vec<ReplayOp> {
    // find last checkpoint
    let start = records
        .iter()
        .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let tail = &records[start..];
    let committed: std::collections::HashSet<u64> = tail
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn_id } => Some(*txn_id),
            _ => None,
        })
        .collect();
    let aborted: std::collections::HashSet<u64> = tail
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Abort { txn_id } => Some(*txn_id),
            _ => None,
        })
        .collect();
    tail.iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Update { txn_id, dataset, partition, is_delete, key, value }
                if committed.contains(txn_id) && !aborted.contains(txn_id) =>
            {
                Some((
                    *txn_id,
                    dataset.clone(),
                    *partition,
                    *is_delete,
                    key.clone(),
                    value.clone(),
                ))
            }
            _ => None,
        })
        .collect()
}

/// Highest *committed* feed cursor per feed name, over the whole log.
///
/// Unlike data replay this deliberately ignores checkpoints: a cursor is
/// restart metadata, not a re-appliable operation, and a feed resumed long
/// after a checkpoint still needs its frontier.
pub fn committed_feed_cursors(records: &[(Lsn, WalRecord)]) -> HashMap<String, u64> {
    let committed: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn_id } => Some(*txn_id),
            _ => None,
        })
        .collect();
    let aborted: std::collections::HashSet<u64> = records
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Abort { txn_id } => Some(*txn_id),
            _ => None,
        })
        .collect();
    let mut out: HashMap<String, u64> = HashMap::new();
    for (_, r) in records {
        if let WalRecord::FeedCursor { txn_id, feed, seq } = r {
            if committed.contains(txn_id) && !aborted.contains(txn_id) {
                let slot = out.entry(feed.clone()).or_insert(0);
                *slot = (*slot).max(*seq);
            }
        }
    }
    out
}

/// Group commit: concurrent committers of one node's WAL share fsyncs.
///
/// Every committer appends its records under the WAL lock, notes the log's
/// end LSN, releases the lock, and calls [`GroupCommit::sync_through`]. The
/// first committer to reach the sync becomes the *leader*: its `sync()`
/// flushes the whole buffer — including records appended by committers that
/// arrived after it took the lock — and advances the durable high-water
/// mark past all of them. A committer that finds the mark already at or
/// beyond its end LSN piggybacks on that earlier fsync and returns without
/// touching the file, which is what turns N concurrent commits into one
/// fdatasync.
///
/// With `enabled == false` every committer locks and syncs itself — the
/// one-fsync-per-commit baseline the feeds bench compares against. Both
/// modes provide the same durability guarantee: `sync_through(end)`
/// returning `Ok` means every log byte below `end` is on stable storage.
pub struct GroupCommit {
    /// Log bytes durably synced (an LSN high-water mark).
    durable: AtomicU64,
    /// Leader fsync rounds (the `storage.wal.group_commits` counter).
    rounds: AtomicU64,
    /// Committers that piggybacked on another committer's fsync (the
    /// `storage.wal.group_commit_waiters` counter).
    waiters: AtomicU64,
    enabled: AtomicBool,
}

impl GroupCommit {
    /// A fresh protocol instance for one WAL (durable mark at 0).
    pub fn new(enabled: bool) -> GroupCommit {
        GroupCommit {
            durable: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            waiters: AtomicU64::new(0),
            enabled: AtomicBool::new(enabled),
        }
    }

    /// Toggles group commit (false = per-commit fsync baseline).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// True when committers share fsyncs.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Durable high-water mark (bytes of log known synced).
    pub fn durable(&self) -> Lsn {
        self.durable.load(Ordering::Acquire)
    }

    /// Leader fsync rounds performed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Commits made durable by another committer's fsync.
    pub fn waiters(&self) -> u64 {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Makes every log byte below `end` durable, sharing the fsync with
    /// concurrent committers when enabled (see the type docs). `end` must
    /// come from `wal.next_lsn()` observed while holding the WAL lock after
    /// appending; `wal` must be the lock this protocol instance guards.
    pub fn sync_through(&self, wal: &OrderedMutex<WalWriter>, end: Lsn) -> Result<()> { // xlint: allow(blocking, "commit durability point; the group protocol amortizes the fdatasync across committers")
        if self.is_enabled() && self.durable.load(Ordering::Acquire) >= end {
            // an earlier leader's fsync already covered our bytes
            self.waiters.fetch_add(1, Ordering::Relaxed); // xlint: ordering(metric increment; no synchronization carried)
            return Ok(());
        }
        let mut w = wal.lock(); // xlint: lock(wal)
        if self.is_enabled() && self.durable.load(Ordering::Acquire) >= end {
            // a leader finished while we waited for the lock
            self.waiters.fetch_add(1, Ordering::Relaxed); // xlint: ordering(metric increment; no synchronization carried)
            return Ok(());
        }
        // leader: one write + fdatasync covers everything buffered so far,
        // ours and any committer's that appended after our `end`
        w.sync()?;
        let synced = w.next_lsn(); // == persisted: the buffer is empty
        self.durable.fetch_max(synced, Ordering::AcqRel); // xlint: ordering(AcqRel max publishes the durable mark to piggybacking committers)
        if self.is_enabled() {
            self.rounds.fetch_add(1, Ordering::Relaxed); // xlint: ordering(metric increment; no synchronization carried)
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    fn upd(txn: u64, key: &[u8], val: &[u8]) -> WalRecord {
        WalRecord::Update {
            txn_id: txn,
            dataset: "ds".into(),
            partition: 0,
            is_delete: false,
            key: key.to_vec(),
            value: val.to_vec(),
        }
    }

    #[test]
    fn append_and_read_back() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        let l0 = w.append(&upd(1, b"k1", b"v1")).unwrap();
        let l1 = w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
        assert!(l1 > l0);
        w.sync().unwrap();
        let recs = read_log(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, l0);
        assert!(matches!(recs[1].1, WalRecord::Commit { txn_id: 1 }));
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&upd(1, b"a", b"1")).unwrap();
            w.sync().unwrap();
        }
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&upd(2, b"b", b"2")).unwrap();
            w.sync().unwrap();
        }
        assert_eq!(read_log(&path).unwrap().len(), 2);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&upd(1, b"a", b"1")).unwrap();
        w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
        w.sync().unwrap();
        // simulate a torn write: append garbage length header + partial bytes
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"short").unwrap();
        }
        let recs = read_log(&path).unwrap();
        assert_eq!(recs.len(), 2, "torn tail ignored");
    }

    #[test]
    fn reopen_truncates_torn_tail_so_new_appends_stay_readable() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&upd(1, b"a", b"1")).unwrap();
            w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
            w.sync().unwrap();
        }
        // crash tail: a record header promising more bytes than exist
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            use std::io::Write;
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(&0u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let valid = valid_prefix_len(&path).unwrap();
        assert!(valid < std::fs::metadata(&path).unwrap().len());
        // reopening must truncate the tail, so post-crash appends land
        // directly after the valid prefix and stay replayable
        {
            let mut w = WalWriter::open(&path).unwrap();
            assert_eq!(w.next_lsn(), valid);
            w.append(&upd(2, b"b", b"2")).unwrap();
            w.append(&WalRecord::Commit { txn_id: 2 }).unwrap();
            w.sync().unwrap();
        }
        let recs = read_log(&path).unwrap();
        assert_eq!(recs.len(), 4, "records after the crash point must be readable");
        let ops = committed_operations(&recs);
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn truncate_failpoint_fires_before_tail_removal() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&upd(1, b"a", b"1")).unwrap();
            w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
            w.sync().unwrap();
        }
        // crash tail
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&64u32.to_le_bytes()).unwrap();
            f.write_all(b"partial").unwrap();
        }
        let tail_len = std::fs::metadata(&path).unwrap().len();
        // a crash scheduled on the very first I/O op lands on the truncate
        // failpoint: reopen fails and the torn tail must still be on disk
        let inj = crate::faults::FaultInjector::crash_after(1, 0);
        let err = match WalWriter::open_with_faults(&path, Some(inj.clone())) {
            Err(e) => e,
            Ok(_) => panic!("expected injected crash on truncate"),
        };
        assert!(matches!(err, StorageError::Injected(_)), "{err}");
        assert!(inj.crashed());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            tail_len,
            "crash before truncate leaves the tail for the next recovery"
        );
        // the next recovery (no faults) then truncates and reopens cleanly
        let w = WalWriter::open(&path).unwrap();
        assert_eq!(w.next_lsn(), std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_log(&path).unwrap().len(), 2);
    }

    #[test]
    fn truncate_error_carries_path_and_offsets() {
        let err = StorageError::WalTruncate {
            path: PathBuf::from("/data/node0/txn.wal"),
            valid_len: 4096,
            file_len: 4103,
            source: std::io::Error::other("disk says no"),
        };
        let msg = err.to_string();
        assert!(msg.contains("/data/node0/txn.wal"), "{msg}");
        assert!(msg.contains("offset 4096"), "{msg}");
        assert!(msg.contains("file length 4103"), "{msg}");
        assert!(msg.contains("disk says no"), "{msg}");
        assert!(std::error::Error::source(&err).is_some(), "source preserved");
    }

    #[test]
    fn sync_is_idempotent_and_incremental() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&upd(1, b"a", b"1")).unwrap();
        w.sync().unwrap();
        let len1 = std::fs::metadata(&path).unwrap().len();
        w.sync().unwrap(); // no new records: no growth
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len1);
        w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
        w.sync().unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() > len1);
        assert_eq!(read_log(&path).unwrap().len(), 2);
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&upd(1, b"a", b"1")).unwrap();
        w.append(&upd(1, b"b", b"2")).unwrap();
        w.sync().unwrap();
        // flip a byte in the second record's payload
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_log(&path).unwrap().len(), 1);
    }

    #[test]
    fn committed_only_replay() {
        let recs = vec![
            (0u64, upd(1, b"a", b"1")),
            (1, upd(2, b"b", b"2")),
            (2, WalRecord::Commit { txn_id: 1 }),
            (3, upd(3, b"c", b"3")),
            (4, WalRecord::Abort { txn_id: 3 }),
            // txn 2 never commits
        ];
        let ops = committed_operations(&recs);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].4, b"a");
    }

    #[test]
    fn checkpoint_bounds_replay() {
        let recs = vec![
            (0u64, upd(1, b"old", b"x")),
            (1, WalRecord::Commit { txn_id: 1 }),
            (2, WalRecord::Checkpoint),
            (3, upd(2, b"new", b"y")),
            (4, WalRecord::Commit { txn_id: 2 }),
        ];
        let ops = committed_operations(&recs);
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].4, b"new");
    }

    #[test]
    fn missing_log_reads_empty() {
        let dir = TempDir::new();
        assert!(read_log(dir.path().join("nope.log")).unwrap().is_empty());
        truncate_log(dir.path().join("nope.log")).unwrap();
    }

    #[test]
    fn feed_cursor_roundtrip() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::FeedCursor { txn_id: 7, feed: "feed.Stream".into(), seq: 4242 })
            .unwrap();
        w.append(&WalRecord::Commit { txn_id: 7 }).unwrap();
        w.sync().unwrap();
        let recs = read_log(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0].1,
            WalRecord::FeedCursor { txn_id: 7, feed: "feed.Stream".into(), seq: 4242 }
        );
    }

    #[test]
    fn committed_feed_cursors_takes_max_of_committed_only() {
        let cur = |txn: u64, feed: &str, seq: u64| WalRecord::FeedCursor {
            txn_id: txn,
            feed: feed.into(),
            seq,
        };
        let recs = vec![
            (0u64, cur(1, "a", 10)),
            (1, WalRecord::Commit { txn_id: 1 }),
            (2, cur(2, "a", 20)),
            (3, WalRecord::Commit { txn_id: 2 }),
            (4, cur(3, "a", 30)), // never commits
            (5, cur(4, "b", 5)),
            (6, WalRecord::Abort { txn_id: 4 }),
            // a checkpoint must NOT hide earlier cursors
            (7, WalRecord::Checkpoint),
        ];
        let m = committed_feed_cursors(&recs);
        assert_eq!(m.get("a"), Some(&20));
        assert_eq!(m.get("b"), None);
    }

    #[test]
    fn group_commit_leader_fsync_covers_later_appends() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let wal = OrderedMutex::new("wal", WalWriter::open(&path).unwrap());
        let gc = GroupCommit::new(true);
        // two committers append before either syncs
        let (end1, end2) = {
            let mut w = wal.lock(); // xlint: lock(wal)
            w.append(&WalRecord::Commit { txn_id: 1 }).unwrap();
            let e1 = w.next_lsn();
            w.append(&WalRecord::Commit { txn_id: 2 }).unwrap();
            (e1, w.next_lsn())
        };
        // first sync is the leader: its one fsync makes both commits durable
        gc.sync_through(&wal, end1).unwrap();
        assert_eq!(gc.durable(), end2);
        assert_eq!(gc.rounds(), 1);
        assert_eq!(gc.waiters(), 0);
        // second committer piggybacks without touching the file
        gc.sync_through(&wal, end2).unwrap();
        assert_eq!(gc.rounds(), 1, "no second fsync round");
        assert_eq!(gc.waiters(), 1);
        assert_eq!(read_log(&path).unwrap().len(), 2);
    }

    #[test]
    fn group_commit_disabled_syncs_every_committer() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let wal = OrderedMutex::new("wal", WalWriter::open(&path).unwrap());
        let gc = GroupCommit::new(false);
        for txn in 1..=3u64 {
            let end = {
                let mut w = wal.lock(); // xlint: lock(wal)
                w.append(&WalRecord::Commit { txn_id: txn }).unwrap();
                w.next_lsn()
            };
            gc.sync_through(&wal, end).unwrap();
            assert_eq!(gc.durable(), end);
        }
        // baseline mode records no group activity
        assert_eq!(gc.rounds(), 0);
        assert_eq!(gc.waiters(), 0);
        assert_eq!(read_log(&path).unwrap().len(), 3);
    }

    #[test]
    fn delete_operations_roundtrip() {
        let dir = TempDir::new();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Update {
            txn_id: 9,
            dataset: "users".into(),
            partition: 3,
            is_delete: true,
            key: b"pk".to_vec(),
            value: vec![],
        })
        .unwrap();
        w.append(&WalRecord::Commit { txn_id: 9 }).unwrap();
        w.sync().unwrap();
        let ops = committed_operations(&read_log(&path).unwrap());
        assert_eq!(ops.len(), 1);
        let (txn, ds, part, is_del, key, _) = &ops[0];
        assert_eq!((*txn, ds.as_str(), *part, *is_del, key.as_slice()),
                   (9u64, "users", 3u32, true, b"pk".as_slice()));
    }
}
