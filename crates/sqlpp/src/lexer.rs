//! Tokenizer shared by the SQL++ and AQL parsers.
//!
//! Keywords are case-insensitive; identifiers keep their case. Backtick
//! quoting (`` `path` ``) produces identifiers that would otherwise collide
//! with keywords (Figure 3(b) quotes `'path'`; we accept both quote styles
//! for delimited identifiers). AQL variables (`$x`) lex as `Variable`.

use crate::error::{Result, SqlppError};

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub column: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    /// `$name` (AQL variables).
    Variable(String),
    Keyword(Kw),
    StringLit(String),
    IntLit(i64),
    DoubleLit(f64),
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LBraceBrace,
    RBraceBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Question,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    ConcatOp,
    /// `:=` (AQL binding).
    Assign,
    /// `=>` reserved.
    Arrow,
    Eof,
}

/// Keywords (case-insensitive in source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Offset,
    Let,
    With,
    As,
    Value,
    Element,
    Distinct,
    And,
    Or,
    Not,
    In,
    Exists,
    Some,
    Every,
    Satisfies,
    Case,
    When,
    Then,
    Else,
    End,
    Like,
    Between,
    Is,
    Null,
    Missing,
    Unknown,
    True,
    False,
    Join,
    Left,
    Inner,
    Outer,
    On,
    Unnest,
    Union,
    All,
    Asc,
    Desc,
    Create,
    Drop,
    Type,
    Dataset,
    Index,
    External,
    Closed,
    Primary,
    Key,
    Btree,
    Rtree,
    Keyword,
    Using,
    Insert,
    Upsert,
    Delete,
    Into,
    Load,
    // AQL
    For,
    Return,
    Keeping,
    // misc
    If,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s.to_ascii_lowercase().as_str() {
        "select" => Kw::Select,
        "from" => Kw::From,
        "where" => Kw::Where,
        "group" => Kw::Group,
        "by" => Kw::By,
        "having" => Kw::Having,
        "order" => Kw::Order,
        "limit" => Kw::Limit,
        "offset" => Kw::Offset,
        "let" => Kw::Let,
        "with" => Kw::With,
        "as" => Kw::As,
        "value" => Kw::Value,
        "element" => Kw::Element,
        "distinct" => Kw::Distinct,
        "and" => Kw::And,
        "or" => Kw::Or,
        "not" => Kw::Not,
        "in" => Kw::In,
        "exists" => Kw::Exists,
        "some" => Kw::Some,
        "every" => Kw::Every,
        "satisfies" => Kw::Satisfies,
        "case" => Kw::Case,
        "when" => Kw::When,
        "then" => Kw::Then,
        "else" => Kw::Else,
        "end" => Kw::End,
        "like" => Kw::Like,
        "between" => Kw::Between,
        "is" => Kw::Is,
        "null" => Kw::Null,
        "missing" => Kw::Missing,
        "unknown" => Kw::Unknown,
        "true" => Kw::True,
        "false" => Kw::False,
        "join" => Kw::Join,
        "left" => Kw::Left,
        "inner" => Kw::Inner,
        "outer" => Kw::Outer,
        "on" => Kw::On,
        "unnest" => Kw::Unnest,
        "union" => Kw::Union,
        "all" => Kw::All,
        "asc" => Kw::Asc,
        "desc" => Kw::Desc,
        "create" => Kw::Create,
        "drop" => Kw::Drop,
        "type" => Kw::Type,
        "dataset" => Kw::Dataset,
        "index" => Kw::Index,
        "external" => Kw::External,
        "closed" => Kw::Closed,
        "primary" => Kw::Primary,
        "key" => Kw::Key,
        "btree" => Kw::Btree,
        "rtree" => Kw::Rtree,
        "keyword" => Kw::Keyword,
        "using" => Kw::Using,
        "insert" => Kw::Insert,
        "upsert" => Kw::Upsert,
        "delete" => Kw::Delete,
        "into" => Kw::Into,
        "load" => Kw::Load,
        "for" => Kw::For,
        "return" => Kw::Return,
        "keeping" => Kw::Keeping,
        "if" => Kw::If,
        _ => return None,
    })
}

/// Tokenizes `input` (appends an EOF token).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! err {
        ($msg:expr) => {
            return Err(SqlppError::Lex { line, column: col, message: $msg.into() })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let push = |kind: TokenKind, out: &mut Vec<Token>| {
            out.push(Token { kind, line: tline, column: tcol })
        };
        match c {
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                col += 1;
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            b'"' | b'\'' | b'`' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                col += 1;
                loop {
                    if i >= bytes.len() {
                        err!("unterminated string");
                    }
                    let b = bytes[i];
                    if b == quote {
                        i += 1;
                        col += 1;
                        break;
                    }
                    if b == b'\\' && i + 1 < bytes.len() {
                        let esc = bytes[i + 1];
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'r' => '\r',
                            b'\\' => '\\',
                            b'"' => '"',
                            b'\'' => '\'',
                            b'`' => '`',
                            other => other as char,
                        });
                        i += 2;
                        col += 2;
                        continue;
                    }
                    if b == b'\n' {
                        line += 1;
                        col = 1;
                        s.push('\n');
                        i += 1;
                        continue;
                    }
                    // UTF-8 passthrough
                    let ch_len = utf8_len(b);
                    s.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                        SqlppError::Lex { line, column: col, message: "invalid UTF-8".into() }
                    })?);
                    i += ch_len;
                    col += 1;
                }
                if quote == b'`' {
                    push(TokenKind::Ident(s), &mut out);
                } else {
                    push(TokenKind::StringLit(s), &mut out);
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() => {
                            is_float = true;
                            i += 1;
                        }
                        b'e' | b'E'
                            if i + 1 < bytes.len()
                                && (bytes[i + 1].is_ascii_digit()
                                    || bytes[i + 1] == b'+'
                                    || bytes[i + 1] == b'-') =>
                        {
                            is_float = true;
                            i += 2;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                col += (i - start) as u32;
                if is_float {
                    match text.parse::<f64>() {
                        Ok(v) => push(TokenKind::DoubleLit(v), &mut out),
                        Err(_) => err!(format!("bad number {text:?}")),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => push(TokenKind::IntLit(v), &mut out),
                        Err(_) => match text.parse::<f64>() {
                            Ok(v) => push(TokenKind::DoubleLit(v), &mut out),
                            Err(_) => err!(format!("bad number {text:?}")),
                        },
                    }
                }
            }
            b'$' => {
                let start = i + 1;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    err!("lone '$'");
                }
                col += (i - start + 1) as u32;
                push(TokenKind::Variable(input[start..i].to_owned()), &mut out);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                col += (i - start) as u32;
                match keyword(word) {
                    Some(k) => push(TokenKind::Keyword(k), &mut out),
                    None => push(TokenKind::Ident(word.to_owned()), &mut out),
                }
            }
            _ => {
                let two = if i + 1 < bytes.len() { &input[i..i + 2] } else { "" };
                let (kind, len) = match two {
                    "{{" => (TokenKind::LBraceBrace, 2),
                    "}}" => (TokenKind::RBraceBrace, 2),
                    "!=" => (TokenKind::NotEq, 2),
                    "<>" => (TokenKind::NotEq, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    "||" => (TokenKind::ConcatOp, 2),
                    ":=" => (TokenKind::Assign, 2),
                    "=>" => (TokenKind::Arrow, 2),
                    _ => match c {
                        b'(' => (TokenKind::LParen, 1),
                        b')' => (TokenKind::RParen, 1),
                        b'[' => (TokenKind::LBracket, 1),
                        b']' => (TokenKind::RBracket, 1),
                        b'{' => (TokenKind::LBrace, 1),
                        b'}' => (TokenKind::RBrace, 1),
                        b',' => (TokenKind::Comma, 1),
                        b';' => (TokenKind::Semi, 1),
                        b':' => (TokenKind::Colon, 1),
                        b'.' => (TokenKind::Dot, 1),
                        b'?' => (TokenKind::Question, 1),
                        b'*' => (TokenKind::Star, 1),
                        b'+' => (TokenKind::Plus, 1),
                        b'-' => (TokenKind::Minus, 1),
                        b'/' => (TokenKind::Slash, 1),
                        b'%' => (TokenKind::Percent, 1),
                        b'=' => (TokenKind::Eq, 1),
                        b'<' => (TokenKind::Lt, 1),
                        b'>' => (TokenKind::Gt, 1),
                        other => err!(format!("unexpected character {:?}", other as char)),
                    },
                };
                push(kind, &mut out);
                i += len;
                col += len as u32;
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line, column: col });
    Ok(out)
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("SELECT select SeLeCt"),
            vec![
                TokenKind::Keyword(Kw::Select),
                TokenKind::Keyword(Kw::Select),
                TokenKind::Keyword(Kw::Select),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_variables() {
        assert_eq!(
            kinds("GleambookUsers $user _x"),
            vec![
                TokenKind::Ident("GleambookUsers".into()),
                TokenKind::Variable("user".into()),
                TokenKind::Ident("_x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_quoted_identifiers() {
        assert_eq!(
            kinds(r#"'path' "text" `order`"#),
            vec![
                TokenKind::StringLit("path".into()),
                TokenKind::StringLit("text".into()),
                TokenKind::Ident("order".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::DoubleLit(3.5),
                TokenKind::DoubleLit(1000.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            kinds("<= >= != <> || := {{ }}"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::ConcatOp,
                TokenKind::Assign,
                TokenKind::LBraceBrace,
                TokenKind::RBraceBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment\n b /* block\n comment */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("$ ").is_err());
    }
}
