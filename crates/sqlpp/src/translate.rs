//! Lowering the shared AST into Algebricks logical plans.
//!
//! One translator serves both languages (the paper's shared-algebra claim,
//! §IV-A). The interesting cases:
//!
//! * **scoping** — unqualified names resolve to WITH/LET bindings, FROM
//!   aliases, or (when exactly one FROM binding is live) implicit fields of
//!   that binding, matching SQL++'s name resolution;
//! * **quantified predicates over datasets** (`SOME l IN AccessLog
//!   SATISFIES ...`, Figure 3(c)) become joins followed by duplicate
//!   elimination — a semi-join;
//! * **SQL aggregate sugar** (`COUNT(user)` under GROUP BY) is extracted
//!   into logical aggregate functions; the same functions in expression
//!   position are the `COLL_*` collection functions;
//! * **GROUP AS / with $v** becomes the group-collection output of the
//!   logical group-by.
//!
//! Unsupported corners (correlated subqueries outside FROM, general EVERY
//! quantifiers) fail with explicit [`SqlppError::Unsupported`] errors.

use crate::ast::{self, BinOp, Expr as Ast, GroupByClause, JoinStep, Query, SelectClause, UnOp};
use crate::error::{Result, SqlppError};
use asterix_adm::Value;
use asterix_algebricks::expr::{bind, eval, Expr, Func};
use asterix_algebricks::plan::{AggFunc, GroupCollect, JoinKind, LogicalOp, Plan, VarGen};
use asterix_algebricks::source::DataSource;
use std::sync::Arc;

/// Catalog access the translator needs: dataset name resolution.
pub trait CatalogView {
    /// Resolves a dataset (or synonym) name to its data source.
    fn dataset(&self, name: &str) -> Option<Arc<dyn DataSource>>;
}

/// A catalog with no datasets (expression-only queries).
pub struct EmptyCatalog;

impl CatalogView for EmptyCatalog {
    fn dataset(&self, _name: &str) -> Option<Arc<dyn DataSource>> {
        None
    }
}

/// Translates a query AST to an (unoptimized) logical plan.
pub fn translate_query(
    q: &Query,
    catalog: &dyn CatalogView,
    vargen: &mut VarGen,
) -> Result<Plan> {
    let mut t = Translator { catalog, vargen };
    let scope = Scope::default();
    let (op, element) = t.translate_union(q, &scope)?;
    Ok(Plan::new(LogicalOp::DistributeResult {
        input: Box::new(op),
        exprs: vec![element],
    }))
}

/// One name binding in scope.
#[derive(Clone)]
struct Binding {
    name: String,
    expr: Expr,
    /// True for FROM/UNNEST-introduced row bindings (candidates for implicit
    /// field resolution and SELECT *).
    is_row: bool,
}

#[derive(Clone, Default)]
struct Scope {
    bindings: Vec<Binding>,
}

impl Scope {
    fn lookup(&self, name: &str) -> Option<&Expr> {
        self.bindings.iter().rev().find(|b| b.name == name).map(|b| &b.expr)
    }

    fn push(&mut self, name: impl Into<String>, expr: Expr, is_row: bool) {
        self.bindings.push(Binding { name: name.into(), expr, is_row });
    }

    fn row_bindings(&self) -> Vec<&Binding> {
        self.bindings.iter().filter(|b| b.is_row).collect()
    }
}

struct Translator<'a> {
    catalog: &'a dyn CatalogView,
    vargen: &'a mut VarGen,
}

impl<'a> Translator<'a> {
    // -----------------------------------------------------------------
    // query blocks
    // -----------------------------------------------------------------

    /// Translates a query with its `UNION ALL` arms (bag union).
    fn translate_union(&mut self, q: &Query, outer: &Scope) -> Result<(LogicalOp, Expr)> {
        let (mut op, element) = self.translate_block(q, outer)?;
        if q.union_with.is_empty() {
            return Ok((op, element));
        }
        // project each arm to its single element column, then fold unions
        let mut left_var = self.vargen.fresh();
        op = LogicalOp::Assign { input: Box::new(op), var: left_var, expr: element };
        op = LogicalOp::Project { input: Box::new(op), vars: vec![left_var] };
        for arm in &q.union_with {
            let (arm_op, arm_elem) = self.translate_block(arm, outer)?;
            let right_var = self.vargen.fresh();
            let arm_op = LogicalOp::Assign {
                input: Box::new(arm_op),
                var: right_var,
                expr: arm_elem,
            };
            let arm_op = LogicalOp::Project { input: Box::new(arm_op), vars: vec![right_var] };
            let out_var = self.vargen.fresh();
            op = LogicalOp::UnionAll {
                left: Box::new(op),
                right: Box::new(arm_op),
                out: vec![out_var],
                left_vars: vec![left_var],
                right_vars: vec![right_var],
            };
            left_var = out_var;
        }
        Ok((op, Expr::Var(left_var)))
    }

    fn translate_block(&mut self, q: &Query, outer: &Scope) -> Result<(LogicalOp, Expr)> {
        let mut scope = outer.clone();
        // WITH bindings: evaluate eagerly when constant (so
        // `current_datetime()` is fixed once per query, as in AsterixDB)
        for (name, e) in &q.with {
            let ae = self.expr(e, &scope)?;
            let folded = try_eval_const(&ae).unwrap_or(ae);
            scope.push(name.clone(), folded, false);
        }
        let mut op = LogicalOp::Empty;
        let mut first = true;
        for term in &q.from {
            op = self.apply_from_term(op, term, &mut scope, first)?;
            first = false;
        }
        // LET bindings
        for (name, e) in &q.lets {
            let ae = self.expr(e, &scope)?;
            let v = self.vargen.fresh();
            op = LogicalOp::Assign { input: Box::new(op), var: v, expr: ae };
            scope.push(name.clone(), Expr::Var(v), false);
        }
        // WHERE
        let mut needs_dedup = false;
        if let Some(w) = &q.where_clause {
            op = self.apply_where(op, w, &mut scope, &mut needs_dedup)?;
        }
        if needs_dedup {
            let exprs: Vec<Expr> = scope
                .bindings
                .iter()
                .map(|b| b.expr.clone())
                .collect();
            op = LogicalOp::Distinct { input: Box::new(op), exprs };
        }
        // aggregate sugar extraction from SELECT/HAVING/ORDER
        let mut select = q.select.clone().unwrap_or(SelectClause::Star);
        let mut having = q.having.clone();
        let mut order = q.order_by.clone();
        let mut agg_calls: Vec<(String, AggFunc, Option<Ast>)> = Vec::new();
        {
            let mut collector = |ast: &mut Ast| extract_aggs(ast, &mut agg_calls);
            match &mut select {
                SelectClause::Element(e) => collector(e),
                SelectClause::Fields(fs) => {
                    for (e, _) in fs.iter_mut() {
                        collector(e);
                    }
                }
                SelectClause::Star => {}
            }
            if let Some(h) = &mut having {
                collector(h);
            }
            for (e, _) in order.iter_mut() {
                collector(e);
            }
        }
        // GROUP BY: references to a grouping expression in SELECT/HAVING/
        // ORDER resolve to the group key (SQL's "select the grouping
        // expression" allowance), so rewrite matching sub-ASTs to the key
        // alias before translating those clauses.
        if let Some(g) = &q.group_by {
            let key_names = group_key_names(g);
            for (i, (key_ast, _)) in g.keys.iter().enumerate() {
                let replace = |ast: &mut Ast| replace_ast(ast, key_ast, &key_names[i]);
                match &mut select {
                    SelectClause::Element(e) => replace(e),
                    SelectClause::Fields(fs) => {
                        for (e, _) in fs.iter_mut() {
                            replace(e);
                        }
                    }
                    SelectClause::Star => {}
                }
                if let Some(h) = &mut having {
                    replace(h);
                }
                for (e, _) in order.iter_mut() {
                    replace(e);
                }
            }
            op = self.apply_group_by(op, g, &agg_calls, &mut scope, q)?;
        } else if !agg_calls.is_empty() {
            // scalar aggregation over the whole block
            let mut aggs = Vec::new();
            for (placeholder, f, arg) in &agg_calls {
                let arg_expr = match arg {
                    Some(a) => self.expr(a, &scope)?,
                    None => Expr::Const(Value::Int(0)),
                };
                let v = self.vargen.fresh();
                aggs.push((v, *f, arg_expr));
                scope.push(placeholder.clone(), Expr::Var(v), false);
            }
            // after scalar aggregation only the agg vars remain in scope
            let agg_names: Vec<String> =
                agg_calls.iter().map(|(p, _, _)| p.clone()).collect();
            scope.bindings.retain(|b| agg_names.contains(&b.name));
            op = LogicalOp::Aggregate { input: Box::new(op), aggs };
        }
        // HAVING
        if let Some(h) = &having {
            let cond = self.expr(h, &scope)?;
            op = LogicalOp::Select { input: Box::new(op), condition: cond };
        }
        // SELECT element
        let element_ast: Ast = match &select {
            SelectClause::Element(e) => e.clone(),
            SelectClause::Fields(fields) => {
                let mut pairs = Vec::new();
                for (i, (e, alias)) in fields.iter().enumerate() {
                    let name = alias.clone().or_else(|| derived_name(e)).unwrap_or_else(|| format!("${}", i + 1));
                    pairs.push((Ast::Literal(Value::String(name)), e.clone()));
                }
                Ast::ObjectCtor(pairs)
            }
            SelectClause::Star => {
                let rows = scope.row_bindings();
                if rows.len() == 1 {
                    Ast::Ident(rows[0].name.clone())
                } else {
                    Ast::ObjectCtor(
                        rows.iter()
                            .map(|b| {
                                (
                                    Ast::Literal(Value::String(b.name.clone())),
                                    Ast::Ident(b.name.clone()),
                                )
                            })
                            .collect(),
                    )
                }
            }
        };
        let element = self.expr(&element_ast, &scope)?;
        let ev = self.vargen.fresh();
        op = LogicalOp::Assign { input: Box::new(op), var: ev, expr: element };
        if q.distinct {
            op = LogicalOp::Distinct { input: Box::new(op), exprs: vec![Expr::Var(ev)] };
        }
        // ORDER BY: resolve against scope; allow SELECT field aliases too
        if !order.is_empty() {
            let mut keys = Vec::new();
            for (e, desc) in &order {
                // output-column aliases take priority (SQL ORDER BY rules),
                // then ordinary scope resolution
                let alias_hit = if let (Ast::Ident(name), SelectClause::Fields(fs)) = (e, &select)
                {
                    fs.iter()
                        .enumerate()
                        .any(|(i, (fe, alias))| {
                            alias.as_deref() == Some(name.as_str())
                                || (alias.is_none()
                                    && derived_name(fe).as_deref() == Some(name.as_str()))
                                || format!("${}", i + 1) == *name
                        })
                        .then(|| Expr::field(Expr::Var(ev), name.clone()))
                } else {
                    None
                };
                let ae = match alias_hit {
                    Some(ae) => ae,
                    None => self.expr(e, &scope)?,
                };
                keys.push((ae, *desc));
            }
            op = LogicalOp::Order { input: Box::new(op), keys };
        }
        if q.limit.is_some() || q.offset.is_some() {
            op = LogicalOp::Limit {
                input: Box::new(op),
                offset: q.offset.unwrap_or(0) as usize,
                count: q.limit.map(|l| l as usize),
            };
        }
        Ok((op, Expr::Var(ev)))
    }

    fn apply_from_term(
        &mut self,
        mut op: LogicalOp,
        term: &ast::FromTerm,
        scope: &mut Scope,
        first: bool,
    ) -> Result<LogicalOp> {
        op = self.bind_source(op, &term.expr, &term.alias, scope, first, JoinKind::Inner, None)?;
        for step in &term.joins {
            match step {
                JoinStep::Unnest { expr, alias, outer } => {
                    let ae = self.expr(expr, scope)?;
                    let v = self.vargen.fresh();
                    op = LogicalOp::Unnest {
                        input: Box::new(op),
                        var: v,
                        expr: ae,
                        outer: *outer,
                    };
                    scope.push(alias.clone(), Expr::Var(v), true);
                }
                JoinStep::Join { kind, expr, alias, on } => {
                    let k = match kind {
                        ast::JoinKindAst::Inner => JoinKind::Inner,
                        ast::JoinKindAst::LeftOuter => JoinKind::LeftOuter,
                    };
                    op = self.bind_source(op, expr, alias, scope, false, k, Some(on))?;
                }
            }
        }
        Ok(op)
    }

    /// Binds one source expression as a new row binding, combining with the
    /// current operator: scan+join for datasets/subqueries, unnest for
    /// collection expressions (which also covers lateral references).
    #[allow(clippy::too_many_arguments)]
    fn bind_source(
        &mut self,
        op: LogicalOp,
        src: &Ast,
        alias: &str,
        scope: &mut Scope,
        first: bool,
        kind: JoinKind,
        on: Option<&Ast>,
    ) -> Result<LogicalOp> {
        // dataset reference?
        if let Ast::Ident(name) = src {
            if scope.lookup(name).is_none() {
                if let Some(ds) = self.catalog.dataset(name) {
                    let v = self.vargen.fresh();
                    let scan = LogicalOp::DataSourceScan { source: ds, var: v, access: None };
                    scope.push(alias.to_string(), Expr::Var(v), true);
                    let combined = if first {
                        scan
                    } else {
                        let cond = match on {
                            Some(o) => self.expr(o, scope)?,
                            None => Expr::Const(Value::Bool(true)),
                        };
                        LogicalOp::Join {
                            left: Box::new(op),
                            right: Box::new(scan),
                            condition: cond,
                            kind,
                        }
                    };
                    return Ok(combined);
                }
            }
        }
        // subquery?
        if let Ast::Subquery(sub) = src {
            let (sub_op, sub_elem) = self.translate_union(sub, &Scope::default())?;
            // materialize element as the binding
            let v = self.vargen.fresh();
            let sub_op = LogicalOp::Assign {
                input: Box::new(sub_op),
                var: v,
                expr: sub_elem,
            };
            let sub_op = LogicalOp::Project { input: Box::new(sub_op), vars: vec![v] };
            scope.push(alias.to_string(), Expr::Var(v), true);
            let combined = if first {
                sub_op
            } else {
                let cond = match on {
                    Some(o) => self.expr(o, scope)?,
                    None => Expr::Const(Value::Bool(true)),
                };
                LogicalOp::Join {
                    left: Box::new(op),
                    right: Box::new(sub_op),
                    condition: cond,
                    kind,
                }
            };
            return Ok(combined);
        }
        // collection expression: unnest (lateral-friendly)
        let ae = self.expr(src, scope)?;
        let v = self.vargen.fresh();
        let base = if first { LogicalOp::Empty } else { op };
        let unnested = LogicalOp::Unnest {
            input: Box::new(base),
            var: v,
            expr: ae,
            outer: kind == JoinKind::LeftOuter,
        };
        scope.push(alias.to_string(), Expr::Var(v), true);
        let combined = match on {
            Some(o) => {
                let cond = self.expr(o, scope)?;
                LogicalOp::Select { input: Box::new(unnested), condition: cond }
            }
            None => unnested,
        };
        Ok(combined)
    }

    fn apply_where(
        &mut self,
        mut op: LogicalOp,
        w: &Ast,
        scope: &mut Scope,
        needs_dedup: &mut bool,
    ) -> Result<LogicalOp> {
        for conj in split_and(w) {
            match conj {
                Ast::Quantified { some: true, var, collection, satisfies } => {
                    // dataset-backed quantifier → semi-join
                    if let Ast::Ident(ds_name) = collection.as_ref() {
                        if scope.lookup(ds_name).is_none() {
                            if let Some(ds) = self.catalog.dataset(ds_name) {
                                let v = self.vargen.fresh();
                                let right =
                                    LogicalOp::DataSourceScan { source: ds, var: v, access: None };
                                let mut inner_scope = scope.clone();
                                inner_scope.push(var.clone(), Expr::Var(v), true);
                                let cond = self.expr(&satisfies, &inner_scope)?;
                                op = LogicalOp::Join {
                                    left: Box::new(op),
                                    right: Box::new(right),
                                    condition: cond,
                                    kind: JoinKind::Inner,
                                };
                                *needs_dedup = true;
                                continue;
                            }
                        }
                    }
                    // collection-valued quantifier: membership pattern
                    let cond = self.quantified_membership(&var, &collection, &satisfies, scope)?;
                    op = LogicalOp::Select { input: Box::new(op), condition: cond };
                }
                other => {
                    let cond = self.expr(&other, scope)?;
                    op = LogicalOp::Select { input: Box::new(op), condition: cond };
                }
            }
        }
        Ok(op)
    }

    /// `SOME v IN coll SATISFIES v = e` (or `e = v`) → `array_contains`.
    fn quantified_membership(
        &mut self,
        var: &str,
        collection: &Ast,
        satisfies: &Ast,
        scope: &Scope,
    ) -> Result<Expr> {
        if let Ast::Binary(BinOp::Eq, l, r) = satisfies {
            let is_var = |e: &Ast| matches!(e, Ast::Ident(n) if n == var);
            let other = if is_var(l) {
                Some(r)
            } else if is_var(r) {
                Some(l)
            } else {
                None
            };
            if let Some(other) = other {
                let coll = self.expr(collection, scope)?;
                let needle = self.expr(other, scope)?;
                return Ok(Expr::Call(Func::ArrayContains, vec![coll, needle]));
            }
        }
        Err(SqlppError::Unsupported(format!(
            "quantified predicate over a computed collection must have the form \
             `{var} = <expr>`; general SATISFIES predicates are only supported \
             when the collection is a dataset"
        )))
    }

    fn apply_group_by(
        &mut self,
        op: LogicalOp,
        g: &GroupByClause,
        agg_calls: &[(String, AggFunc, Option<Ast>)],
        scope: &mut Scope,
        q: &Query,
    ) -> Result<LogicalOp> {
        let mut keys = Vec::new();
        let mut new_scope = Scope::default();
        let key_names = group_key_names(g);
        for ((e, _), name) in g.keys.iter().zip(key_names) {
            let ae = self.expr(e, scope)?;
            let kv = self.vargen.fresh();
            keys.push((kv, ae));
            new_scope.push(name, Expr::Var(kv), false);
        }
        let collect = match &g.group_as {
            None => None,
            Some(gname) => {
                if !agg_calls.is_empty() {
                    return Err(SqlppError::Unsupported(
                        "mixing SQL aggregate sugar (COUNT/SUM/...) with GROUP AS; \
                         use COLL_* functions over the group variable instead"
                            .into(),
                    ));
                }
                let fields: Vec<(String, Expr)> = scope
                    .row_bindings()
                    .iter()
                    .map(|b| (b.name.clone(), b.expr.clone()))
                    .collect();
                if fields.is_empty() {
                    return Err(SqlppError::Semantic(
                        "GROUP AS requires at least one FROM binding".into(),
                    ));
                }
                let gv = self.vargen.fresh();
                // AQL's `with $v` collects bare values; SQL++ GROUP AS wraps
                let wrap = q.select.is_some()
                    && !matches!(q.select, Some(SelectClause::Element(_)))
                    || fields.len() > 1;
                new_scope.push(gname.clone(), Expr::Var(gv), false);
                Some(GroupCollect { var: gv, fields, wrap })
            }
        };
        let mut aggs = Vec::new();
        for (placeholder, f, arg) in agg_calls {
            let arg_expr = match arg {
                Some(a) => self.expr(a, scope)?,
                None => Expr::Const(Value::Int(0)),
            };
            let v = self.vargen.fresh();
            aggs.push((v, *f, arg_expr));
            new_scope.push(placeholder.clone(), Expr::Var(v), false);
        }
        *scope = new_scope;
        Ok(LogicalOp::GroupBy { input: Box::new(op), keys, aggs, collect })
    }

    // -----------------------------------------------------------------
    // expressions
    // -----------------------------------------------------------------

    fn expr(&mut self, ast: &Ast, scope: &Scope) -> Result<Expr> {
        Ok(match ast {
            Ast::Literal(v) => Expr::Const(v.clone()),
            Ast::Ident(name) => match scope.lookup(name) {
                Some(e) => e.clone(),
                None => {
                    let rows = scope.row_bindings();
                    if rows.len() == 1 {
                        Expr::Field(Box::new(rows[0].expr.clone()), name.clone())
                    } else if self.catalog.dataset(name).is_some() {
                        return Err(SqlppError::Semantic(format!(
                            "dataset {name} can only be referenced in FROM or a quantifier"
                        )));
                    } else {
                        return Err(SqlppError::Semantic(format!(
                            "unresolved name {name:?} (no binding, and {} FROM bindings in scope)",
                            rows.len()
                        )));
                    }
                }
            },
            Ast::Field(b, name) => Expr::Field(Box::new(self.expr(b, scope)?), name.clone()),
            Ast::Index(b, i) => Expr::Index(
                Box::new(self.expr(b, scope)?),
                Box::new(self.expr(i, scope)?),
            ),
            Ast::Unary(op, e) => {
                let inner = self.expr(e, scope)?;
                match op {
                    UnOp::Neg => Expr::Call(Func::Neg, vec![inner]),
                    UnOp::Not => Expr::Call(Func::Not, vec![inner]),
                    UnOp::IsNull => Expr::Call(Func::IsNull, vec![inner]),
                    UnOp::IsNotNull => Expr::Call(
                        Func::Not,
                        vec![Expr::Call(Func::IsNull, vec![inner])],
                    ),
                    UnOp::IsMissing => Expr::Call(Func::IsMissing, vec![inner]),
                    UnOp::IsNotMissing => Expr::Call(
                        Func::Not,
                        vec![Expr::Call(Func::IsMissing, vec![inner])],
                    ),
                    UnOp::IsUnknown => Expr::Call(Func::IsUnknown, vec![inner]),
                    UnOp::IsNotUnknown => Expr::Call(
                        Func::Not,
                        vec![Expr::Call(Func::IsUnknown, vec![inner])],
                    ),
                }
            }
            Ast::Binary(op, l, r) => {
                let (l, r) = (self.expr(l, scope)?, self.expr(r, scope)?);
                let f = match op {
                    BinOp::Add => Func::Add,
                    BinOp::Sub => Func::Sub,
                    BinOp::Mul => Func::Mul,
                    BinOp::Div => Func::Div,
                    BinOp::Mod => Func::Mod,
                    BinOp::Eq => Func::Eq,
                    BinOp::Ne => Func::Ne,
                    BinOp::Lt => Func::Lt,
                    BinOp::Le => Func::Le,
                    BinOp::Gt => Func::Gt,
                    BinOp::Ge => Func::Ge,
                    BinOp::And => Func::And,
                    BinOp::Or => Func::Or,
                    BinOp::Concat => Func::Concat,
                    BinOp::Like => Func::Like,
                };
                Expr::bin(f, l, r)
            }
            Ast::Call(name, args) => self.call(name, args, scope)?,
            Ast::Case(arms, els) => {
                let arms = arms
                    .iter()
                    .map(|(c, t)| Ok((self.expr(c, scope)?, self.expr(t, scope)?)))
                    .collect::<Result<Vec<_>>>()?;
                let els = match els {
                    Some(e) => self.expr(e, scope)?,
                    None => Expr::Const(Value::Null),
                };
                Expr::Case(arms, Box::new(els))
            }
            Ast::ObjectCtor(pairs) => {
                let mut args = Vec::with_capacity(pairs.len() * 2);
                for (k, v) in pairs {
                    args.push(self.expr(k, scope)?);
                    args.push(self.expr(v, scope)?);
                }
                Expr::Call(Func::ObjectConstructor, args)
            }
            Ast::ArrayCtor(items) => Expr::Call(
                Func::ArrayConstructor,
                items.iter().map(|i| self.expr(i, scope)).collect::<Result<Vec<_>>>()?,
            ),
            Ast::MultisetCtor(items) => Expr::Call(
                Func::MultisetConstructor,
                items.iter().map(|i| self.expr(i, scope)).collect::<Result<Vec<_>>>()?,
            ),
            Ast::Between { value, lo, hi, negated } => {
                let v = self.expr(value, scope)?;
                let lo = self.expr(lo, scope)?;
                let hi = self.expr(hi, scope)?;
                let e = Expr::bin(
                    Func::And,
                    Expr::bin(Func::Ge, v.clone(), lo),
                    Expr::bin(Func::Le, v, hi),
                );
                if *negated {
                    Expr::Call(Func::Not, vec![e])
                } else {
                    e
                }
            }
            Ast::In { value, collection, negated } => {
                let coll = self.expr(collection, scope)?;
                let v = self.expr(value, scope)?;
                let e = Expr::Call(Func::ArrayContains, vec![coll, v]);
                if *negated {
                    Expr::Call(Func::Not, vec![e])
                } else {
                    e
                }
            }
            Ast::Exists(e) => {
                if matches!(e.as_ref(), Ast::Subquery(_)) {
                    return Err(SqlppError::Unsupported(
                        "EXISTS over a subquery; rewrite as a SOME ... SATISFIES \
                         quantifier over the dataset"
                            .into(),
                    ));
                }
                let coll = self.expr(e, scope)?;
                Expr::bin(
                    Func::Gt,
                    Expr::Call(Func::CollCount, vec![coll]),
                    Expr::Const(Value::Int(0)),
                )
            }
            Ast::Quantified { some, var, collection, satisfies } => {
                if !some {
                    return Err(SqlppError::Unsupported(
                        "EVERY quantifiers in expression position".into(),
                    ));
                }
                self.quantified_membership(var, collection, satisfies, scope)?
            }
            Ast::Subquery(_) => {
                return Err(SqlppError::Unsupported(
                    "subqueries are supported in FROM position only".into(),
                ))
            }
        })
    }

    fn call(&mut self, name: &str, args: &[Ast], scope: &Scope) -> Result<Expr> {
        // aggregate names in expression position are the COLL_* collection
        // functions (SQL++ distinguishes sugar COUNT(...) under GROUP BY —
        // extracted earlier — from collection functions)
        let mapped = match name {
            "count" => Some(Func::CollCount),
            "sum" => Some(Func::CollSum),
            "avg" => Some(Func::CollAvg),
            "min" => Some(Func::CollMin),
            "max" => Some(Func::CollMax),
            _ => Func::by_name(name),
        };
        let f = mapped.ok_or_else(|| {
            SqlppError::Semantic(format!("unknown function {name:?}"))
        })?;
        let args = args
            .iter()
            .map(|a| self.expr(a, scope))
            .collect::<Result<Vec<_>>>()?;
        Ok(Expr::Call(f, args))
    }
}

/// Splits an AND tree into conjuncts.
fn split_and(e: &Ast) -> Vec<Ast> {
    match e {
        Ast::Binary(BinOp::And, l, r) => {
            let mut out = split_and(l);
            out.extend(split_and(r));
            out
        }
        other => vec![other.clone()],
    }
}

/// Names assigned to the group keys (alias, derived, or positional).
fn group_key_names(g: &GroupByClause) -> Vec<String> {
    g.keys
        .iter()
        .enumerate()
        .map(|(i, (e, alias))| {
            alias
                .clone()
                .or_else(|| derived_name(e))
                .unwrap_or_else(|| format!("$gk{i}"))
        })
        .collect()
}

/// Replaces every sub-AST structurally equal to `target` with `Ident(name)`.
fn replace_ast(ast: &mut Ast, target: &Ast, name: &str) {
    if ast == target {
        *ast = Ast::Ident(name.to_string());
        return;
    }
    match ast {
        Ast::Field(b, _) => replace_ast(b, target, name),
        Ast::Index(b, i) => {
            replace_ast(b, target, name);
            replace_ast(i, target, name);
        }
        Ast::Unary(_, e) => replace_ast(e, target, name),
        Ast::Binary(_, l, r) => {
            replace_ast(l, target, name);
            replace_ast(r, target, name);
        }
        Ast::Call(_, args) => {
            for a in args {
                replace_ast(a, target, name);
            }
        }
        Ast::Case(arms, els) => {
            for (c, t) in arms {
                replace_ast(c, target, name);
                replace_ast(t, target, name);
            }
            if let Some(e) = els {
                replace_ast(e, target, name);
            }
        }
        Ast::ObjectCtor(pairs) => {
            for (_, v) in pairs {
                replace_ast(v, target, name);
            }
        }
        Ast::ArrayCtor(items) | Ast::MultisetCtor(items) => {
            for i in items {
                replace_ast(i, target, name);
            }
        }
        Ast::Between { value, lo, hi, .. } => {
            replace_ast(value, target, name);
            replace_ast(lo, target, name);
            replace_ast(hi, target, name);
        }
        Ast::In { value, collection, .. } => {
            replace_ast(value, target, name);
            replace_ast(collection, target, name);
        }
        Ast::Exists(e) => replace_ast(e, target, name),
        Ast::Quantified { collection, satisfies, .. } => {
            replace_ast(collection, target, name);
            replace_ast(satisfies, target, name);
        }
        Ast::Literal(_) | Ast::Ident(_) | Ast::Subquery(_) => {}
    }
}

/// Default output-field name for an expression (`u.name` → `name`).
fn derived_name(e: &Ast) -> Option<String> {
    match e {
        Ast::Ident(n) => Some(n.clone()),
        Ast::Field(_, n) => Some(n.clone()),
        _ => None,
    }
}

/// Aggregate-function sugar recognized under GROUP BY / bare SELECT.
fn agg_func_of(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "avg" => AggFunc::Avg,
        _ => return None,
    })
}

/// Replaces aggregate calls in `ast` with placeholder identifiers, recording
/// `(placeholder, function, argument)`.
fn extract_aggs(ast: &mut Ast, out: &mut Vec<(String, AggFunc, Option<Ast>)>) {
    // do not descend into subqueries (their aggregates are their own)
    match ast {
        Ast::Call(name, args) => {
            if let Some(f) = agg_func_of(name) {
                let placeholder = format!("$agg{}", out.len());
                let entry = if args.len() == 1 {
                    if matches!(&args[0], Ast::Literal(Value::String(s)) if s == "*") {
                        (placeholder.clone(), AggFunc::CountStar, None)
                    } else {
                        (placeholder.clone(), f, Some(args[0].clone()))
                    }
                } else {
                    (placeholder.clone(), f, args.first().cloned())
                };
                out.push(entry);
                *ast = Ast::Ident(placeholder);
                return;
            }
            for a in args {
                extract_aggs(a, out);
            }
        }
        Ast::Field(b, _) => extract_aggs(b, out),
        Ast::Index(b, i) => {
            extract_aggs(b, out);
            extract_aggs(i, out);
        }
        Ast::Unary(_, e) => extract_aggs(e, out),
        Ast::Binary(_, l, r) => {
            extract_aggs(l, out);
            extract_aggs(r, out);
        }
        Ast::Case(arms, els) => {
            for (c, t) in arms {
                extract_aggs(c, out);
                extract_aggs(t, out);
            }
            if let Some(e) = els {
                extract_aggs(e, out);
            }
        }
        Ast::ObjectCtor(pairs) => {
            for (k, v) in pairs {
                extract_aggs(k, out);
                extract_aggs(v, out);
            }
        }
        Ast::ArrayCtor(items) | Ast::MultisetCtor(items) => {
            for i in items {
                extract_aggs(i, out);
            }
        }
        Ast::Between { value, lo, hi, .. } => {
            extract_aggs(value, out);
            extract_aggs(lo, out);
            extract_aggs(hi, out);
        }
        Ast::In { value, collection, .. } => {
            extract_aggs(value, out);
            extract_aggs(collection, out);
        }
        Ast::Exists(e) => extract_aggs(e, out),
        Ast::Quantified { collection, satisfies, .. } => {
            extract_aggs(collection, out);
            extract_aggs(satisfies, out);
        }
        Ast::Literal(_) | Ast::Ident(_) | Ast::Subquery(_) => {}
    }
}

/// Attempts compile-time evaluation of an expression (used for WITH).
fn try_eval_const(e: &Expr) -> Option<Expr> {
    let bound = bind(e, &[]).ok()?;
    let v = eval(&bound, &[]).ok()?;
    Some(Expr::Const(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use asterix_algebricks::jobgen::{execute, JobGenConfig};
    use asterix_algebricks::rules::optimize;
    use asterix_algebricks::source::VecSource;
    use asterix_adm::parse::parse_value;
    use asterix_hyracks::RuntimeCtx;
    use std::collections::HashMap;

    struct MapCatalog {
        map: HashMap<String, Arc<dyn DataSource>>,
    }

    impl CatalogView for MapCatalog {
        fn dataset(&self, name: &str) -> Option<Arc<dyn DataSource>> {
            self.map.get(name).cloned()
        }
    }

    fn catalog() -> MapCatalog {
        let users: Vec<Value> = (1..=6)
            .map(|i| {
                parse_value(&format!(
                    r#"{{"id": {i}, "name": "user{i}", "age": {}, "city": "{}",
                         "friendIds": [{}, {}]}}"#,
                    20 + i * 3,
                    if i % 2 == 0 { "irvine" } else { "riverside" },
                    i + 1,
                    i + 2
                ))
                .unwrap()
            })
            .collect();
        let msgs: Vec<Value> = (0..10)
            .map(|m| {
                parse_value(&format!(
                    r#"{{"messageId": {m}, "authorId": {}, "message": "msg {m} text"}}"#,
                    m % 6 + 1
                ))
                .unwrap()
            })
            .collect();
        let mut map: HashMap<String, Arc<dyn DataSource>> = HashMap::new();
        map.insert("Users".into(), VecSource::single("Users", users));
        map.insert("Messages".into(), VecSource::single("Messages", msgs));
        MapCatalog { map }
    }

    fn run(sql: &str) -> Vec<Value> {
        let q = parse_query(sql).unwrap();
        let cat = catalog();
        let mut vg = VarGen::new();
        let mut plan = translate_query(&q, &cat, &mut vg).unwrap();
        optimize(&mut plan);
        execute(&plan, &JobGenConfig::default(), RuntimeCtx::temp().unwrap()).unwrap()
    }

    fn sorted(mut v: Vec<Value>) -> Vec<Value> {
        v.sort_by(asterix_adm::compare::total_cmp);
        v
    }

    #[test]
    fn select_value_where() {
        let out = run("SELECT VALUE u.name FROM Users u WHERE u.age > 30");
        assert_eq!(
            sorted(out),
            vec![Value::from("user4"), Value::from("user5"), Value::from("user6")]
        );
    }

    #[test]
    fn implicit_field_resolution() {
        let out = run("SELECT VALUE name FROM Users u WHERE age > 30");
        assert_eq!(out.len(), 3, "bare names resolve as fields of the sole binding");
    }

    #[test]
    fn select_fields_builds_objects() {
        let out = run("SELECT u.name, u.age AS years FROM Users u WHERE u.id = 1");
        assert_eq!(out.len(), 1);
        let o = &out[0];
        assert_eq!(o.field("name"), &Value::from("user1"));
        assert_eq!(o.field("years"), &Value::Int(23));
    }

    #[test]
    fn join_groups_and_counts() {
        let out = run(
            "SELECT u.city AS city, COUNT(m) AS n
             FROM Users u JOIN Messages m ON m.authorId = u.id
             GROUP BY u.city
             ORDER BY city",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].field("city"), &Value::from("irvine"));
        // authors 2,4,6 → messages with authorId in {2,4,6}
        assert_eq!(out[0].field("n"), &Value::Int(5));
        assert_eq!(out[1].field("n"), &Value::Int(5));
    }

    #[test]
    fn scalar_aggregates_without_group() {
        let out = run("SELECT COUNT(*) AS n, AVG(u.age) AS a FROM Users u");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].field("n"), &Value::Int(6));
        assert_eq!(out[0].field("a"), &Value::Double(30.5));
    }

    #[test]
    fn let_and_order_and_limit() {
        let out = run(
            "SELECT VALUE nf FROM Users u LET nf = COLL_COUNT(u.friendIds)
             ORDER BY u.id LIMIT 3",
        );
        assert_eq!(out, vec![Value::Int(2), Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn quantified_dataset_semijoin() {
        // users who authored at least one message with id < 3
        let out = run(
            "SELECT VALUE u.id FROM Users u
             WHERE SOME m IN Messages SATISFIES m.authorId = u.id AND m.messageId < 3",
        );
        // messages 0,1,2 → authors 1,2,3
        assert_eq!(sorted(out), vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn quantified_membership_on_collection() {
        let out = run(
            "SELECT VALUE u.id FROM Users u
             WHERE SOME f IN u.friendIds SATISFIES f = 3",
        );
        // friendIds = [i+1, i+2] → contains 3 for i=1,2
        assert_eq!(sorted(out), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn unnest_in_from() {
        let out = run("SELECT VALUE f FROM Users u UNNEST u.friendIds f WHERE u.id = 2");
        assert_eq!(sorted(out), vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn group_as_collects() {
        let out = run(
            "SELECT city, COLL_COUNT(g) AS n
             FROM Users u GROUP BY u.city AS city GROUP AS g ORDER BY city",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].field("n"), &Value::Int(3));
    }

    #[test]
    fn select_distinct() {
        let out = run("SELECT DISTINCT VALUE u.city FROM Users u");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn select_star_single_binding() {
        let out = run("SELECT * FROM Users u WHERE u.id = 1");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].field("name"), &Value::from("user1"));
    }

    #[test]
    fn with_bindings_fold() {
        let out = run(
            "WITH limit_age AS 25 + 5
             SELECT VALUE u.id FROM Users u WHERE u.age > limit_age",
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn order_by_select_alias() {
        let out = run("SELECT u.id AS i FROM Users u ORDER BY i DESC LIMIT 2");
        assert_eq!(out[0].field("i"), &Value::Int(6));
        assert_eq!(out[1].field("i"), &Value::Int(5));
    }

    #[test]
    fn from_subquery() {
        let out = run(
            "SELECT VALUE x.n FROM (SELECT u.name AS n FROM Users u WHERE u.age > 30) x",
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn having_filters_groups() {
        let out = run(
            "SELECT u.city AS c, COUNT(*) AS n FROM Users u
             GROUP BY u.city HAVING COUNT(*) > 2",
        );
        assert_eq!(out.len(), 2, "both cities have 3 users");
        let out = run(
            "SELECT u.city AS c, COUNT(*) AS n FROM Users u
             GROUP BY u.city HAVING COUNT(*) > 3",
        );
        assert!(out.is_empty());
    }

    #[test]
    fn unsupported_features_error_cleanly() {
        let q = parse_query("SELECT VALUE (SELECT VALUE 1)").unwrap();
        let cat = catalog();
        let mut vg = VarGen::new();
        let err = match translate_query(&q, &cat, &mut vg) {
            Err(e) => e,
            Ok(_) => panic!("expected unsupported-feature error"),
        };
        assert!(matches!(err, SqlppError::Unsupported(_)), "{err}");
    }

    #[test]
    fn aql_and_sqlpp_same_results() {
        let sql = run("SELECT VALUE u.name FROM Users u WHERE u.age > 30");
        let aql_stmt = crate::parse_aql(
            r#"for $u in dataset Users where $u.age > 30 return $u.name"#,
        )
        .unwrap();
        let crate::ast::Stmt::Query(q) = aql_stmt else { panic!() };
        let cat = catalog();
        let mut vg = VarGen::new();
        let mut plan = translate_query(&q, &cat, &mut vg).unwrap();
        optimize(&mut plan);
        let aql = execute(&plan, &JobGenConfig::default(), RuntimeCtx::temp().unwrap()).unwrap();
        assert_eq!(sorted(sql), sorted(aql));
    }

    #[test]
    fn aql_and_sqlpp_same_plans() {
        // the E9 claim in miniature: identical optimized plans
        let cat = catalog();
        let sql_q = parse_query("SELECT VALUE u.name FROM Users u WHERE u.age > 30").unwrap();
        let crate::ast::Stmt::Query(aql_q) = crate::parse_aql(
            "for $u in dataset Users where $u.age > 30 return $u.name",
        )
        .unwrap() else {
            panic!()
        };
        let mut vg1 = VarGen::new();
        let mut p1 = translate_query(&sql_q, &cat, &mut vg1).unwrap();
        optimize(&mut p1);
        let mut vg2 = VarGen::new();
        // different var allocation start to prove canonicalization
        for _ in 0..7 {
            vg2.fresh();
        }
        let mut p2 = translate_query(&aql_q, &cat, &mut vg2).unwrap();
        optimize(&mut p2);
        assert_eq!(p1.pretty(), p2.pretty());
    }
}
