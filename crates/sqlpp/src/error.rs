//! Error type for the query-language front-ends.

use std::fmt;

/// Result alias used throughout `asterix-sqlpp`.
pub type Result<T> = std::result::Result<T, SqlppError>;

/// Errors raised by lexing, parsing, or translation.
#[derive(Debug)]
pub enum SqlppError {
    /// Lexical error with position.
    Lex { line: u32, column: u32, message: String },
    /// Syntax error with position.
    Parse { line: u32, column: u32, message: String },
    /// Semantic error during translation (unknown dataset, bad scope, ...).
    Semantic(String),
    /// Feature recognized but not supported by this implementation.
    Unsupported(String),
    /// Error from the algebra layer.
    Algebricks(asterix_algebricks::AlgebricksError),
    /// Error from the data model (literal parsing).
    Adm(asterix_adm::AdmError),
}

impl fmt::Display for SqlppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlppError::Lex { line, column, message } => {
                write!(f, "lexical error at {line}:{column}: {message}")
            }
            SqlppError::Parse { line, column, message } => {
                write!(f, "syntax error at {line}:{column}: {message}")
            }
            SqlppError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlppError::Unsupported(m) => write!(f, "unsupported feature: {m}"),
            SqlppError::Algebricks(e) => write!(f, "{e}"),
            SqlppError::Adm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlppError {}

impl From<asterix_algebricks::AlgebricksError> for SqlppError {
    fn from(e: asterix_algebricks::AlgebricksError) -> Self {
        SqlppError::Algebricks(e)
    }
}

impl From<asterix_adm::AdmError> for SqlppError {
    fn from(e: asterix_adm::AdmError) -> Self {
        SqlppError::Adm(e)
    }
}
