//! Abstract syntax shared by the SQL++ and AQL parsers.
//!
//! AQL's FLWOR (`for`/`let`/`where`/`group by`/`order by`/`return`) maps onto
//! the same query core as SQL++'s SELECT block — which is precisely why the
//! paper could add SQL++ "fairly quickly as a peer of AQL" (§IV-A): only the
//! concrete syntax differs.

use asterix_adm::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // statements are parsed once, not stored in bulk
pub enum Stmt {
    Query(Query),
    Ddl(DdlStmt),
    Dml(DmlStmt),
}

/// Data-definition statements (paper Figure 3(a)/(b)).
#[derive(Debug, Clone, PartialEq)]
pub enum DdlStmt {
    /// `CREATE TYPE name AS [CLOSED] { field: type, ... }`
    CreateType { name: String, is_closed: bool, fields: Vec<FieldDef> },
    /// `CREATE DATASET name(TypeName) PRIMARY KEY field`
    CreateDataset { name: String, type_name: String, primary_key: Vec<String> },
    /// `CREATE EXTERNAL DATASET name(TypeName) USING localfs ((...params...))`
    CreateExternalDataset {
        name: String,
        type_name: String,
        adapter: String,
        properties: Vec<(String, String)>,
    },
    /// `CREATE INDEX name ON dataset (field) [TYPE BTREE|RTREE|KEYWORD]`
    CreateIndex {
        name: String,
        dataset: String,
        field: Vec<String>,
        kind: IndexKindAst,
    },
    /// `DROP DATASET name` / `DROP TYPE name` / `DROP INDEX ds.name`
    DropDataset { name: String },
    DropType { name: String },
    DropIndex { dataset: String, name: String },
}

/// One field in a `CREATE TYPE` body.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    pub name: String,
    pub ty: TypeExprAst,
    pub optional: bool,
}

/// Type expressions in DDL.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExprAst {
    Named(String),
    Array(Box<TypeExprAst>),
    Multiset(Box<TypeExprAst>),
}

/// Index kinds in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKindAst {
    BTree,
    RTree,
    Keyword,
}

/// Data-manipulation statements (paper Figure 3(d)).
#[derive(Debug, Clone, PartialEq)]
pub enum DmlStmt {
    /// `INSERT INTO ds (expr)` / `UPSERT INTO ds (expr)`
    InsertUpsert { dataset: String, is_upsert: bool, value: Expr },
    /// `DELETE FROM ds [AS v] WHERE cond`
    Delete { dataset: String, var: Option<String>, condition: Option<Expr> },
    /// `LOAD DATASET ds USING localfs ((...))`
    Load { dataset: String, adapter: String, properties: Vec<(String, String)> },
}

/// Binary operators at the AST level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
    Like,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    IsNull,
    IsNotNull,
    IsMissing,
    IsNotMissing,
    IsUnknown,
    IsNotUnknown,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value (numbers, strings, typed constructors already folded).
    Literal(Value),
    /// Unqualified name — resolved against the scope, then the catalog.
    Ident(String),
    /// `base.field`
    Field(Box<Expr>, String),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Function call by name.
    Call(String, Vec<Expr>),
    /// `CASE WHEN c THEN t ... ELSE e END`
    Case(Vec<(Expr, Expr)>, Option<Box<Expr>>),
    /// `{ "a": e1, ... }`
    ObjectCtor(Vec<(Expr, Expr)>),
    /// `[ e1, e2 ]`
    ArrayCtor(Vec<Expr>),
    /// `{{ e1, e2 }}`
    MultisetCtor(Vec<Expr>),
    /// `e BETWEEN a AND b`
    Between { value: Box<Expr>, lo: Box<Expr>, hi: Box<Expr>, negated: bool },
    /// `e IN collection`
    In { value: Box<Expr>, collection: Box<Expr>, negated: bool },
    /// `EXISTS (subquery)` or `EXISTS collection-expr`
    Exists(Box<Expr>),
    /// `SOME|EVERY v IN coll SATISFIES pred`
    Quantified { some: bool, var: String, collection: Box<Expr>, satisfies: Box<Expr> },
    /// Parenthesized subquery used as an expression / from-source.
    Subquery(Box<Query>),
}

/// SELECT clause forms.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectClause {
    /// `SELECT VALUE expr` (SQL++) / `return expr` (AQL).
    Element(Expr),
    /// `SELECT e1 AS a, e2 AS b, ...` — builds an object per row.
    Fields(Vec<(Expr, Option<String>)>),
    /// `SELECT *` — the whole binding tuple as an object.
    Star,
}

/// One FROM binding.
#[derive(Debug, Clone, PartialEq)]
pub struct FromTerm {
    pub expr: Expr,
    pub alias: String,
    /// Join steps applied to this term.
    pub joins: Vec<JoinStep>,
}

/// A join/unnest step after a from term.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinStep {
    Join { kind: JoinKindAst, expr: Expr, alias: String, on: Expr },
    Unnest { expr: Expr, alias: String, outer: bool },
}

/// Join kinds in source syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKindAst {
    Inner,
    LeftOuter,
}

/// GROUP BY clause.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByClause {
    /// `(key_expr, alias)` pairs.
    pub keys: Vec<(Expr, Option<String>)>,
    /// `GROUP AS g` (SQL++) / `with $g` (AQL): the group variable.
    pub group_as: Option<String>,
}

/// The query core shared by both languages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// `WITH name AS expr` bindings (evaluated once, before FROM).
    pub with: Vec<(String, Expr)>,
    pub from: Vec<FromTerm>,
    /// `LET name = expr` bindings (per input row).
    pub lets: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
    pub group_by: Option<GroupByClause>,
    pub having: Option<Expr>,
    pub select: Option<SelectClause>,
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
    pub distinct: bool,
    /// `UNION ALL` continuation blocks (bag union of the blocks' elements).
    /// ORDER BY / LIMIT inside a union arm apply to that arm only.
    pub union_with: Vec<Query>,
}

impl Query {
    /// A bare `SELECT VALUE e` query with no FROM.
    pub fn of_expr(e: Expr) -> Query {
        Query { select: Some(SelectClause::Element(e)), ..Query::default() }
    }
}
