//! AQL — the original query language (paper §IV-A).
//!
//! AQL "came from taking XQuery ... and tossing out its XML cruft": a FLWOR
//! core of `for`/`let`/`where`/`group by`/`order by`/`limit`/`return`
//! clauses over `$variables` and `dataset Name` references. This parser
//! produces the same [`Query`] AST as the SQL++ parser, so both languages
//! share translation, optimization, and execution — the paper's "peer
//! languages over one algebra" point, verified by experiment E9.
//!
//! Supported AQL shape:
//!
//! ```text
//! for $u in dataset GleambookUsers
//! let $nf := coll_count($u.friendIds)
//! where $u.userSince >= datetime("2012-01-01T00:00:00")
//! group by $k := $nf with $u
//! order by $k desc
//! limit 10
//! return { "numFriends": $k, "count": coll_count($u) }
//! ```

use crate::ast::*;
use crate::error::Result;
use crate::lexer::{tokenize, Kw, TokenKind};
use crate::parser::Parser;

/// Parses one AQL statement (a FLWOR query or a bare expression).
pub fn parse_aql(input: &str) -> Result<Stmt> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = if matches!(p.peek(), TokenKind::Keyword(Kw::For) | TokenKind::Keyword(Kw::Let)) {
        parse_flwor(&mut p)?
    } else {
        Query::of_expr(p.parse_expr()?)
    };
    p.eat(&TokenKind::Semi);
    if !p.at_eof() {
        return p.err(format!("unexpected trailing {:?}", p.peek()));
    }
    Ok(Stmt::Query(q))
}

/// Parses a FLWOR block (also used for AQL subqueries inside parentheses).
pub(crate) fn parse_flwor(p: &mut Parser) -> Result<Query> {
    let mut q = Query::default();
    loop {
        if p.eat_kw(Kw::For) {
            loop {
                let var = variable(p)?;
                p.expect_kw(Kw::In)?;
                let expr = p.parse_expr()?;
                q.from.push(FromTerm { expr, alias: var, joins: Vec::new() });
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            continue;
        }
        if p.eat_kw(Kw::Let) {
            loop {
                let var = variable(p)?;
                p.expect(&TokenKind::Assign)?;
                let expr = p.parse_expr()?;
                q.lets.push((var, expr));
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            continue;
        }
        if p.eat_kw(Kw::Where) {
            let cond = p.parse_expr()?;
            q.where_clause = Some(match q.where_clause.take() {
                None => cond,
                Some(prev) => Expr::Binary(BinOp::And, Box::new(prev), Box::new(cond)),
            });
            continue;
        }
        if p.eat_kw(Kw::Group) {
            p.expect_kw(Kw::By)?;
            let mut keys = Vec::new();
            loop {
                // `$k := expr` or bare `expr`
                let (alias, expr) = if matches!(p.peek(), TokenKind::Variable(_)) {
                    let v = variable(p)?;
                    p.expect(&TokenKind::Assign)?;
                    (Some(v), p.parse_expr()?)
                } else {
                    (None, p.parse_expr()?)
                };
                keys.push((expr, alias));
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            // `with $v` / `keeping $v`: the grouped variable. AQL regroups
            // each listed variable into a collection of its per-row values;
            // we expose it as the SQL++ group variable.
            let group_as = if p.eat_kw(Kw::With) || p.eat_kw(Kw::Keeping) {
                let v = variable(p)?;
                while p.eat(&TokenKind::Comma) {
                    // additional kept variables collapse into the same group
                    let _ = variable(p)?;
                }
                Some(v)
            } else {
                None
            };
            q.group_by = Some(GroupByClause { keys, group_as });
            continue;
        }
        if p.eat_kw(Kw::Order) {
            p.expect_kw(Kw::By)?;
            loop {
                let e = p.parse_expr()?;
                let desc = if p.eat_kw(Kw::Desc) {
                    true
                } else {
                    p.eat_kw(Kw::Asc);
                    false
                };
                q.order_by.push((e, desc));
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            continue;
        }
        if p.eat_kw(Kw::Limit) {
            match p.bump() {
                TokenKind::IntLit(n) if n >= 0 => q.limit = Some(n as u64),
                other => return p.err(format!("limit expects a number, found {other:?}")),
            }
            if p.eat_kw(Kw::Offset) {
                match p.bump() {
                    TokenKind::IntLit(n) if n >= 0 => q.offset = Some(n as u64),
                    other => return p.err(format!("offset expects a number, found {other:?}")),
                }
            }
            continue;
        }
        if p.eat_kw(Kw::Return) {
            let e = p.parse_expr()?;
            q.select = Some(SelectClause::Element(e));
            break;
        }
        return p.err(format!("expected FLWOR clause, found {:?}", p.peek()));
    }
    Ok(q)
}

fn variable(p: &mut Parser) -> Result<String> {
    match p.bump() {
        TokenKind::Variable(v) => Ok(v),
        other => {
            p.pos = p.pos.saturating_sub(1);
            p.err(format!("expected $variable, found {other:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(input: &str) -> Query {
        match parse_aql(input).unwrap() {
            Stmt::Query(q) => q,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simple_flwor() {
        let q = query(
            r#"for $u in dataset GleambookUsers
               where $u.id > 3
               return $u.name"#,
        );
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].alias, "u");
        assert_eq!(q.from[0].expr, Expr::Ident("GleambookUsers".into()));
        assert!(q.where_clause.is_some());
        assert!(matches!(q.select, Some(SelectClause::Element(Expr::Field(_, _)))));
    }

    #[test]
    fn let_and_order_and_limit() {
        let q = query(
            r#"for $m in dataset('Messages')
               let $len := string_length($m.message)
               order by $len desc
               limit 5 offset 2
               return { "id": $m.messageId, "len": $len }"#,
        );
        assert_eq!(q.lets.len(), 1);
        assert_eq!(q.lets[0].0, "len");
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].1, "desc");
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn group_by_with_variable() {
        let q = query(
            r#"for $m in dataset Messages
               group by $a := $m.authorId with $m
               return { "author": $a, "n": coll_count($m) }"#,
        );
        let g = q.group_by.unwrap();
        assert_eq!(g.keys.len(), 1);
        assert_eq!(g.keys[0].1.as_deref(), Some("a"));
        assert_eq!(g.group_as.as_deref(), Some("m"));
    }

    #[test]
    fn multiple_for_clauses_cross() {
        let q = query(
            r#"for $u in dataset Users
               for $m in dataset Messages
               where $m.authorId = $u.id
               return { "u": $u.name, "m": $m.message }"#,
        );
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn bare_expression_query() {
        let q = query("1 + 2");
        assert!(matches!(q.select, Some(SelectClause::Element(Expr::Binary(BinOp::Add, _, _)))));
        assert!(q.from.is_empty());
    }

    #[test]
    fn quantified_in_aql() {
        let q = query(
            r#"for $u in dataset Users
               where some $f in $u.friendIds satisfies $f = 5
               return $u"#,
        );
        assert!(matches!(q.where_clause, Some(Expr::Quantified { some: true, .. })));
    }

    #[test]
    fn rejects_missing_return() {
        assert!(parse_aql("for $x in dataset T where $x.a > 1").is_err());
    }
}
