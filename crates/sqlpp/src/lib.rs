#![forbid(unsafe_code)]
//! # SQL++ and AQL — the two declarative query languages
//!
//! AsterixDB shipped two query languages over one compiler (paper §IV-A):
//! first **AQL** ("taking XQuery ... and tossing out its XML cruft"), then
//! **SQL++** ("very much like AQL, but with a SQL-based syntax that would
//! make AsterixDB users much happier"). Both share the Algebricks algebra,
//! optimizer rules, and Hyracks runtime — implemented here by lowering both
//! ASTs through one [`translate`] module (experiment E9 verifies the two
//! front-ends produce identical optimized plans).
//!
//! * [`lexer`] — shared tokenizer;
//! * [`ast`] — shared abstract syntax (query core, DDL, DML);
//! * [`parser`] — SQL++ recursive-descent parser (SELECT/FROM/LET/WHERE/
//!   GROUP BY/HAVING/ORDER/LIMIT, quantified predicates, joins, UNNEST,
//!   subqueries, object/array constructors, and the full DDL/DML of paper
//!   Figure 3);
//! * [`aql`] — AQL FLWOR parser (`for`/`let`/`where`/`group by`/`order by`/
//!   `limit`/`return`) producing the same AST;
//! * [`translate`] — lowering to `asterix-algebricks` logical plans against
//!   a catalog of named data sources.

pub mod aql;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{DdlStmt, DmlStmt, Query, Stmt};
pub use error::{Result, SqlppError};
pub use translate::{translate_query, CatalogView};

/// Parses a sequence of SQL++ statements.
pub fn parse_sqlpp(input: &str) -> Result<Vec<Stmt>> {
    parser::parse_statements(input)
}

/// Parses one AQL query (FLWOR or expression).
pub fn parse_aql(input: &str) -> Result<Stmt> {
    aql::parse_aql(input)
}
