//! SQL++ recursive-descent parser.
//!
//! Covers the language of paper Figure 3: DDL (types, datasets, external
//! datasets, indexes), DML (INSERT/UPSERT/DELETE/LOAD), and the SELECT core
//! with WITH/LET bindings, joins, UNNEST, quantified predicates
//! (`SOME ... SATISFIES`), grouping with `GROUP AS`, HAVING, ORDER BY,
//! LIMIT/OFFSET, and subqueries.

use crate::ast::*;
use crate::error::{Result, SqlppError};
use crate::lexer::{tokenize, Kw, Token, TokenKind};
use asterix_adm::Value;

/// Parses a semicolon-separated list of statements.
pub fn parse_statements(input: &str) -> Result<Vec<Stmt>> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
    }
    Ok(out)
}

/// Parses a single SQL++ query expression.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(q)
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    pub(crate) fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        let t = &self.tokens[self.pos];
        Err(SqlppError::Parse { line: t.line, column: t.column, message: msg.into() })
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_kw(&mut self, kw: Kw) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            self.err(format!("expected {kind:?}, found {:?}", self.peek()))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: Kw) -> Result<()> {
        self.expect(&TokenKind::Keyword(kw))
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            self.err(format!("unexpected trailing {:?}", self.peek()))
        }
    }

    /// Accepts an identifier (or keyword used as a name, e.g. `time`).
    pub(crate) fn ident(&mut self) -> Result<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::Keyword(Kw::Value) => Ok("value".into()),
            TokenKind::Keyword(Kw::Type) => Ok("type".into()),
            TokenKind::Keyword(Kw::Key) => Ok("key".into()),
            TokenKind::Keyword(Kw::Keyword) => Ok("keyword".into()),
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    // -------------------------------------------------------------------
    // statements
    // -------------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Stmt> {
        match self.peek() {
            TokenKind::Keyword(Kw::Create) => self.parse_create().map(Stmt::Ddl),
            TokenKind::Keyword(Kw::Drop) => self.parse_drop().map(Stmt::Ddl),
            TokenKind::Keyword(Kw::Insert) | TokenKind::Keyword(Kw::Upsert) => {
                self.parse_insert_upsert().map(Stmt::Dml)
            }
            TokenKind::Keyword(Kw::Delete) => self.parse_delete().map(Stmt::Dml),
            TokenKind::Keyword(Kw::Load) => self.parse_load().map(Stmt::Dml),
            _ => self.parse_query().map(Stmt::Query),
        }
    }

    fn parse_create(&mut self) -> Result<DdlStmt> {
        self.expect_kw(Kw::Create)?;
        if self.eat_kw(Kw::Type) {
            let name = self.ident()?;
            self.expect_kw(Kw::As)?;
            let is_closed = self.eat_kw(Kw::Closed);
            self.expect(&TokenKind::LBrace)?;
            let mut fields = Vec::new();
            if !self.eat(&TokenKind::RBrace) {
                loop {
                    let fname = match self.bump() {
                        TokenKind::Ident(s) => s,
                        TokenKind::StringLit(s) => s,
                        other => return self.err(format!("expected field name, found {other:?}")),
                    };
                    self.expect(&TokenKind::Colon)?;
                    let ty = self.parse_type_expr()?;
                    let optional = self.eat(&TokenKind::Question);
                    fields.push(FieldDef { name: fname, ty, optional });
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                    self.expect(&TokenKind::Comma)?;
                    // allow trailing comma
                    if self.eat(&TokenKind::RBrace) {
                        break;
                    }
                }
            }
            return Ok(DdlStmt::CreateType { name, is_closed, fields });
        }
        if self.eat_kw(Kw::External) {
            self.expect_kw(Kw::Dataset)?;
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let type_name = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect_kw(Kw::Using)?;
            let adapter = self.ident()?;
            let properties = self.parse_properties()?;
            return Ok(DdlStmt::CreateExternalDataset { name, type_name, adapter, properties });
        }
        if self.eat_kw(Kw::Dataset) {
            let name = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let type_name = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect_kw(Kw::Primary)?;
            self.expect_kw(Kw::Key)?;
            let mut primary_key = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                primary_key.push(self.ident()?);
            }
            return Ok(DdlStmt::CreateDataset { name, type_name, primary_key });
        }
        if self.eat_kw(Kw::Index) {
            let name = self.ident()?;
            self.expect_kw(Kw::On)?;
            let dataset = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut field = vec![self.ident()?];
            while self.eat(&TokenKind::Dot) {
                field.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            let kind = if self.eat_kw(Kw::Type) {
                match self.bump() {
                    TokenKind::Keyword(Kw::Btree) => IndexKindAst::BTree,
                    TokenKind::Keyword(Kw::Rtree) => IndexKindAst::RTree,
                    TokenKind::Keyword(Kw::Keyword) => IndexKindAst::Keyword,
                    other => return self.err(format!("unknown index type {other:?}")),
                }
            } else {
                IndexKindAst::BTree
            };
            return Ok(DdlStmt::CreateIndex { name, dataset, field, kind });
        }
        self.err("expected TYPE, DATASET, EXTERNAL DATASET, or INDEX after CREATE")
    }

    fn parse_type_expr(&mut self) -> Result<TypeExprAst> {
        if self.eat(&TokenKind::LBracket) {
            let inner = self.parse_type_expr()?;
            self.expect(&TokenKind::RBracket)?;
            return Ok(TypeExprAst::Array(Box::new(inner)));
        }
        if self.eat(&TokenKind::LBraceBrace) {
            let inner = self.parse_type_expr()?;
            self.expect(&TokenKind::RBraceBrace)?;
            return Ok(TypeExprAst::Multiset(Box::new(inner)));
        }
        Ok(TypeExprAst::Named(self.ident()?))
    }

    fn parse_properties(&mut self) -> Result<Vec<(String, String)>> {
        // (("key"="value"), ("key"="value"), ...)
        self.expect(&TokenKind::LParen)?;
        let mut props = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let key = match self.bump() {
                TokenKind::StringLit(s) => s,
                other => return self.err(format!("expected property name string, found {other:?}")),
            };
            self.expect(&TokenKind::Eq)?;
            let value = match self.bump() {
                TokenKind::StringLit(s) => s,
                other => return self.err(format!("expected property value string, found {other:?}")),
            };
            self.expect(&TokenKind::RParen)?;
            props.push((key, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(props)
    }

    fn parse_drop(&mut self) -> Result<DdlStmt> {
        self.expect_kw(Kw::Drop)?;
        if self.eat_kw(Kw::Dataset) {
            return Ok(DdlStmt::DropDataset { name: self.ident()? });
        }
        if self.eat_kw(Kw::Type) {
            return Ok(DdlStmt::DropType { name: self.ident()? });
        }
        if self.eat_kw(Kw::Index) {
            let dataset = self.ident()?;
            self.expect(&TokenKind::Dot)?;
            let name = self.ident()?;
            return Ok(DdlStmt::DropIndex { dataset, name });
        }
        self.err("expected DATASET, TYPE, or INDEX after DROP")
    }

    fn parse_insert_upsert(&mut self) -> Result<DmlStmt> {
        let is_upsert = match self.bump() {
            TokenKind::Keyword(Kw::Insert) => false,
            TokenKind::Keyword(Kw::Upsert) => true,
            _ => unreachable!(),
        };
        self.expect_kw(Kw::Into)?;
        let dataset = self.ident()?;
        // parenthesized value expression (or bare constructor)
        let value = if self.eat(&TokenKind::LParen) {
            let e = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            e
        } else {
            self.parse_expr()?
        };
        Ok(DmlStmt::InsertUpsert { dataset, is_upsert, value })
    }

    fn parse_delete(&mut self) -> Result<DmlStmt> {
        self.expect_kw(Kw::Delete)?;
        self.expect_kw(Kw::From)?;
        let dataset = self.ident()?;
        let var = if self.eat_kw(Kw::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        let condition = if self.eat_kw(Kw::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(DmlStmt::Delete { dataset, var, condition })
    }

    fn parse_load(&mut self) -> Result<DmlStmt> {
        self.expect_kw(Kw::Load)?;
        self.expect_kw(Kw::Dataset)?;
        let dataset = self.ident()?;
        self.expect_kw(Kw::Using)?;
        let adapter = self.ident()?;
        let properties = self.parse_properties()?;
        Ok(DmlStmt::Load { dataset, adapter, properties })
    }

    // -------------------------------------------------------------------
    // queries
    // -------------------------------------------------------------------

    pub(crate) fn parse_query(&mut self) -> Result<Query> {
        let mut q = Query::default();
        // WITH bindings
        if self.eat_kw(Kw::With) {
            loop {
                let name = self.ident()?;
                self.expect_kw(Kw::As)?;
                let e = self.parse_expr()?;
                q.with.push((name, e));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kw(Kw::Select)?;
        q.distinct = self.eat_kw(Kw::Distinct);
        q.select = Some(if self.eat_kw(Kw::Value) || self.eat_kw(Kw::Element) {
            SelectClause::Element(self.parse_expr()?)
        } else if self.eat(&TokenKind::Star) {
            SelectClause::Star
        } else {
            let mut fields = Vec::new();
            loop {
                let e = self.parse_expr()?;
                let alias = if self.eat_kw(Kw::As) {
                    Some(self.ident()?)
                } else {
                    None
                };
                fields.push((e, alias));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            SelectClause::Fields(fields)
        });
        if self.eat_kw(Kw::From) {
            loop {
                q.from.push(self.parse_from_term()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        while self.eat_kw(Kw::Let) {
            loop {
                let name = self.ident()?;
                if !self.eat(&TokenKind::Eq) {
                    self.expect(&TokenKind::Assign)?;
                }
                let e = self.parse_expr()?;
                q.lets.push((name, e));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Where) {
            q.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw(Kw::Group) {
            self.expect_kw(Kw::By)?;
            let mut keys = Vec::new();
            loop {
                let e = self.parse_expr()?;
                let alias = if self.eat_kw(Kw::As) { Some(self.ident()?) } else { None };
                keys.push((e, alias));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            let group_as = if self.eat_kw(Kw::Group) {
                self.expect_kw(Kw::As)?;
                Some(self.ident()?)
            } else {
                None
            };
            q.group_by = Some(GroupByClause { keys, group_as });
        }
        if self.eat_kw(Kw::Having) {
            q.having = Some(self.parse_expr()?);
        }
        if self.eat_kw(Kw::Order) {
            self.expect_kw(Kw::By)?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw(Kw::Desc) {
                    true
                } else {
                    self.eat_kw(Kw::Asc);
                    false
                };
                q.order_by.push((e, desc));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Kw::Limit) {
            match self.bump() {
                TokenKind::IntLit(n) if n >= 0 => q.limit = Some(n as u64),
                other => return self.err(format!("LIMIT expects a number, found {other:?}")),
            }
        }
        if self.eat_kw(Kw::Offset) {
            match self.bump() {
                TokenKind::IntLit(n) if n >= 0 => q.offset = Some(n as u64),
                other => return self.err(format!("OFFSET expects a number, found {other:?}")),
            }
        }
        while self.eat_kw(Kw::Union) {
            self.expect_kw(Kw::All)?;
            let arm = self.parse_query()?;
            // flatten right-nested unions
            q.union_with.push(Query { union_with: Vec::new(), ..arm.clone() });
            q.union_with.extend(arm.union_with);
        }
        Ok(q)
    }

    fn default_alias(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Ident(s) => Some(s.clone()),
            Expr::Field(_, name) => Some(name.clone()),
            _ => None,
        }
    }

    fn parse_from_term(&mut self) -> Result<FromTerm> {
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw(Kw::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            self.ident()?
        } else {
            match self.default_alias(&expr) {
                Some(a) => a,
                None => return self.err("FROM term requires an alias"),
            }
        };
        let mut joins = Vec::new();
        loop {
            if self.eat_kw(Kw::Join) || {
                if *self.peek() == TokenKind::Keyword(Kw::Inner)
                    && *self.peek2() == TokenKind::Keyword(Kw::Join)
                {
                    self.bump();
                    self.bump();
                    true
                } else {
                    false
                }
            } {
                let (e, a) = self.parse_join_source()?;
                self.expect_kw(Kw::On)?;
                let on = self.parse_expr()?;
                joins.push(JoinStep::Join { kind: JoinKindAst::Inner, expr: e, alias: a, on });
                continue;
            }
            if *self.peek() == TokenKind::Keyword(Kw::Left) {
                // LEFT [OUTER] JOIN | LEFT [OUTER] UNNEST
                let save = self.pos;
                self.bump();
                self.eat_kw(Kw::Outer);
                if self.eat_kw(Kw::Join) {
                    let (e, a) = self.parse_join_source()?;
                    self.expect_kw(Kw::On)?;
                    let on = self.parse_expr()?;
                    joins.push(JoinStep::Join {
                        kind: JoinKindAst::LeftOuter,
                        expr: e,
                        alias: a,
                        on,
                    });
                    continue;
                }
                if self.eat_kw(Kw::Unnest) {
                    let e = self.parse_expr()?;
                    let a = self.alias_for(&e)?;
                    joins.push(JoinStep::Unnest { expr: e, alias: a, outer: true });
                    continue;
                }
                self.pos = save;
                break;
            }
            if self.eat_kw(Kw::Unnest) {
                let e = self.parse_expr()?;
                let a = self.alias_for(&e)?;
                joins.push(JoinStep::Unnest { expr: e, alias: a, outer: false });
                continue;
            }
            break;
        }
        Ok(FromTerm { expr, alias, joins })
    }

    fn alias_for(&mut self, e: &Expr) -> Result<String> {
        if self.eat_kw(Kw::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            self.ident()
        } else {
            match self.default_alias(e) {
                Some(a) => Ok(a),
                None => self.err("binding requires an alias"),
            }
        }
    }

    fn parse_join_source(&mut self) -> Result<(Expr, String)> {
        let e = self.parse_expr()?;
        let a = self.alias_for(&e)?;
        Ok((e, a))
    }

    // -------------------------------------------------------------------
    // expressions (precedence climbing)
    // -------------------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut e = self.parse_and()?;
        while self.eat_kw(Kw::Or) {
            let rhs = self.parse_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut e = self.parse_not()?;
        while self.eat_kw(Kw::And) {
            let rhs = self.parse_not()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw(Kw::Not) {
            let e = self.parse_not()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        // quantified expressions sit at comparison level
        if matches!(self.peek(), TokenKind::Keyword(Kw::Some) | TokenKind::Keyword(Kw::Every)) {
            let some = matches!(self.bump(), TokenKind::Keyword(Kw::Some));
            let var = match self.bump() {
                TokenKind::Ident(s) => s,
                TokenKind::Variable(s) => s,
                other => return self.err(format!("expected quantifier variable, found {other:?}")),
            };
            self.expect_kw(Kw::In)?;
            let coll = self.parse_concat()?;
            self.expect_kw(Kw::Satisfies)?;
            let pred = self.parse_expr()?;
            return Ok(Expr::Quantified {
                some,
                var,
                collection: Box::new(coll),
                satisfies: Box::new(pred),
            });
        }
        if self.eat_kw(Kw::Exists) {
            let e = self.parse_concat()?;
            return Ok(Expr::Exists(Box::new(e)));
        }
        let e = self.parse_concat()?;
        // IS [NOT] NULL/MISSING/UNKNOWN
        if self.eat_kw(Kw::Is) {
            let negated = self.eat_kw(Kw::Not);
            let op = match self.bump() {
                TokenKind::Keyword(Kw::Null) => {
                    if negated {
                        UnOp::IsNotNull
                    } else {
                        UnOp::IsNull
                    }
                }
                TokenKind::Keyword(Kw::Missing) => {
                    if negated {
                        UnOp::IsNotMissing
                    } else {
                        UnOp::IsMissing
                    }
                }
                TokenKind::Keyword(Kw::Unknown) => {
                    if negated {
                        UnOp::IsNotUnknown
                    } else {
                        UnOp::IsUnknown
                    }
                }
                other => return self.err(format!("expected NULL/MISSING/UNKNOWN, found {other:?}")),
            };
            return Ok(Expr::Unary(op, Box::new(e)));
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = if matches!(self.peek(), TokenKind::Keyword(Kw::Not))
            && matches!(
                self.peek2(),
                TokenKind::Keyword(Kw::Between) | TokenKind::Keyword(Kw::In) | TokenKind::Keyword(Kw::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw(Kw::Between) {
            let lo = self.parse_concat()?;
            self.expect_kw(Kw::And)?;
            let hi = self.parse_concat()?;
            return Ok(Expr::Between {
                value: Box::new(e),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw(Kw::In) {
            let coll = self.parse_concat()?;
            return Ok(Expr::In { value: Box::new(e), collection: Box::new(coll), negated });
        }
        if self.eat_kw(Kw::Like) {
            let pat = self.parse_concat()?;
            let like = Expr::Binary(BinOp::Like, Box::new(e), Box::new(pat));
            return Ok(if negated {
                Expr::Unary(UnOp::Not, Box::new(like))
            } else {
                like
            });
        }
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(e),
        };
        self.bump();
        let rhs = self.parse_concat()?;
        Ok(Expr::Binary(op, Box::new(e), Box::new(rhs)))
    }

    fn parse_concat(&mut self) -> Result<Expr> {
        let mut e = self.parse_additive()?;
        while self.eat(&TokenKind::ConcatOp) {
            let rhs = self.parse_additive()?;
            e = Expr::Binary(BinOp::Concat, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut e = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut e = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            return Ok(match e {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat(&TokenKind::Dot) {
                let name = self.ident()?;
                e = Expr::Field(Box::new(e), name);
                continue;
            }
            if self.eat(&TokenKind::LBracket) {
                let idx = self.parse_expr()?;
                self.expect(&TokenKind::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx));
                continue;
            }
            break;
        }
        Ok(e)
    }

    pub(crate) fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::IntLit(i) => Ok(Expr::Literal(Value::Int(i))),
            TokenKind::DoubleLit(d) => Ok(Expr::Literal(Value::Double(d))),
            TokenKind::StringLit(s) => Ok(Expr::Literal(Value::String(s))),
            TokenKind::Keyword(Kw::True) => Ok(Expr::Literal(Value::Bool(true))),
            TokenKind::Keyword(Kw::False) => Ok(Expr::Literal(Value::Bool(false))),
            TokenKind::Keyword(Kw::Null) => Ok(Expr::Literal(Value::Null)),
            TokenKind::Keyword(Kw::Missing) => Ok(Expr::Literal(Value::Missing)),
            TokenKind::Variable(name) => Ok(Expr::Ident(name)),
            TokenKind::Keyword(Kw::Dataset) => {
                // AQL-style `dataset Name` / `dataset('Name')`
                if self.eat(&TokenKind::LParen) {
                    let name = match self.bump() {
                        TokenKind::StringLit(s) => s,
                        TokenKind::Ident(s) => s,
                        other => return self.err(format!("expected dataset name, found {other:?}")),
                    };
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Ident(name))
                } else {
                    Ok(Expr::Ident(self.ident()?))
                }
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    // function call
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        // COUNT(*) sugar
                        if self.eat(&TokenKind::Star) {
                            self.expect(&TokenKind::RParen)?;
                            return Ok(Expr::Call(
                                name.to_lowercase(),
                                vec![Expr::Literal(Value::from("*"))],
                            ));
                        }
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(&TokenKind::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name.to_lowercase(), args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::LParen => {
                // subquery or parenthesized expression
                if matches!(
                    self.peek(),
                    TokenKind::Keyword(Kw::Select) | TokenKind::Keyword(Kw::With) | TokenKind::Keyword(Kw::For)
                ) {
                    let q = if matches!(self.peek(), TokenKind::Keyword(Kw::For)) {
                        crate::aql::parse_flwor(self)?
                    } else {
                        self.parse_query()?
                    };
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat(&TokenKind::RBracket) {
                            break;
                        }
                        self.expect(&TokenKind::Comma)?;
                    }
                }
                Ok(Expr::ArrayCtor(items))
            }
            TokenKind::LBraceBrace => {
                let mut items = Vec::new();
                if !self.eat(&TokenKind::RBraceBrace) {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat(&TokenKind::RBraceBrace) {
                            break;
                        }
                        self.expect(&TokenKind::Comma)?;
                    }
                }
                Ok(Expr::MultisetCtor(items))
            }
            TokenKind::LBrace => {
                let mut pairs = Vec::new();
                if !self.eat(&TokenKind::RBrace) {
                    loop {
                        let key = match self.bump() {
                            TokenKind::StringLit(s) => Expr::Literal(Value::String(s)),
                            TokenKind::Ident(s) => Expr::Literal(Value::String(s)),
                            other => {
                                return self.err(format!("expected field name, found {other:?}"))
                            }
                        };
                        self.expect(&TokenKind::Colon)?;
                        let v = self.parse_expr()?;
                        pairs.push((key, v));
                        if self.eat(&TokenKind::RBrace) {
                            break;
                        }
                        self.expect(&TokenKind::Comma)?;
                    }
                }
                Ok(Expr::ObjectCtor(pairs))
            }
            TokenKind::Keyword(Kw::Case) => {
                let mut arms = Vec::new();
                while self.eat_kw(Kw::When) {
                    let c = self.parse_expr()?;
                    self.expect_kw(Kw::Then)?;
                    let t = self.parse_expr()?;
                    arms.push((c, t));
                }
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw(Kw::End)?;
                Ok(Expr::Case(arms, els))
            }
            other => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("unexpected token {other:?} in expression"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3a_ddl_parses() {
        let stmts = parse_statements(
            r#"
            CREATE TYPE GleambookUserType AS {
                id: int,
                alias: string,
                name: string,
                userSince: datetime,
                friendIds: {{ int }},
                employment: [EmploymentType]
            };
            CREATE TYPE EmploymentType AS {
                organizationName: string,
                startDate: date,
                endDate: date?
            };
            CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
            CREATE INDEX gbUserSinceIdx ON GleambookUsers(userSince);
            CREATE INDEX gbSenderLocIndex ON GleambookMessages(senderLocation) TYPE RTREE;
            CREATE INDEX gbMessageIdx ON GleambookMessages(message) TYPE KEYWORD;
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 6);
        match &stmts[0] {
            Stmt::Ddl(DdlStmt::CreateType { name, is_closed, fields }) => {
                assert_eq!(name, "GleambookUserType");
                assert!(!is_closed);
                assert_eq!(fields.len(), 6);
                assert_eq!(
                    fields[4].ty,
                    TypeExprAst::Multiset(Box::new(TypeExprAst::Named("int".into())))
                );
            }
            other => panic!("{other:?}"),
        }
        match &stmts[1] {
            Stmt::Ddl(DdlStmt::CreateType { fields, .. }) => {
                assert!(fields[2].optional, "endDate: date?");
            }
            other => panic!("{other:?}"),
        }
        match &stmts[4] {
            Stmt::Ddl(DdlStmt::CreateIndex { kind, .. }) => {
                assert_eq!(*kind, IndexKindAst::RTree)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure3b_external_dataset() {
        let stmts = parse_statements(
            r#"
            CREATE TYPE AccessLogType AS CLOSED {
                ip: string, time: string, user: string, verb: string,
                'path': string, stat: int32, size: int32
            };
            CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
              (("path"="localhost:///Users/mjc/extdemo/accesses.txt"),
               ("format"="delimited-text"), ("delimiter"="|"));
            "#,
        )
        .unwrap();
        match &stmts[0] {
            Stmt::Ddl(DdlStmt::CreateType { is_closed, fields, .. }) => {
                assert!(*is_closed);
                assert_eq!(fields[4].name, "path");
            }
            other => panic!("{other:?}"),
        }
        match &stmts[1] {
            Stmt::Ddl(DdlStmt::CreateExternalDataset { adapter, properties, .. }) => {
                assert_eq!(adapter, "localfs");
                assert_eq!(properties.len(), 3);
                assert_eq!(properties[2], ("delimiter".into(), "|".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure3c_query_parses() {
        let q = parse_query(
            r#"
            WITH endTime AS current_datetime(),
                 startTime AS endTime - duration("P30D")
            SELECT nf AS numFriends, COUNT(user) AS activeUsers
            FROM GleambookUsers user
            LET nf = COLL_COUNT(user.friendIds)
            WHERE SOME logrec IN AccessLog SATISFIES
                      user.alias = logrec.user
                  AND datetime(logrec.time) >= startTime
                  AND datetime(logrec.time) <= endTime
            GROUP BY nf
            "#,
        )
        .unwrap();
        assert_eq!(q.with.len(), 2);
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].alias, "user");
        assert_eq!(q.lets.len(), 1);
        assert!(matches!(q.where_clause, Some(Expr::Quantified { some: true, .. })));
        assert_eq!(q.group_by.as_ref().unwrap().keys.len(), 1);
        match q.select.as_ref().unwrap() {
            SelectClause::Fields(fs) => {
                assert_eq!(fs.len(), 2);
                assert_eq!(fs[0].1.as_deref(), Some("numFriends"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure3d_upsert_parses() {
        let stmts = parse_statements(
            r#"
            UPSERT INTO GleambookUsers (
                {"id":667, "alias":"dfrump", "name":"DonaldFrump",
                 "nickname":"Frumpkin",
                 "userSince":datetime("2017-01-01T00:00:00"),
                 "friendIds":{{}},
                 "employment":[{"organizationName":"USA",
                                "startDate":date("2017-01-20")}],
                 "gender":"M"}
            );
            "#,
        )
        .unwrap();
        match &stmts[0] {
            Stmt::Dml(DmlStmt::InsertUpsert { dataset, is_upsert, value }) => {
                assert_eq!(dataset, "GleambookUsers");
                assert!(is_upsert);
                assert!(matches!(value, Expr::ObjectCtor(pairs) if pairs.len() == 8));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn joins_and_unnest() {
        let q = parse_query(
            "SELECT u.name, m.message
             FROM GleambookUsers u
             JOIN GleambookMessages m ON m.authorId = u.id
             UNNEST u.employment e
             LEFT OUTER JOIN Other o ON o.k = u.id",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        assert_eq!(q.from[0].joins.len(), 3);
        assert!(matches!(q.from[0].joins[0], JoinStep::Join { kind: JoinKindAst::Inner, .. }));
        assert!(matches!(q.from[0].joins[1], JoinStep::Unnest { outer: false, .. }));
        assert!(matches!(
            q.from[0].joins[2],
            JoinStep::Join { kind: JoinKindAst::LeftOuter, .. }
        ));
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT VALUE 1 + 2 * 3 < 10 AND true OR false").unwrap();
        let SelectClause::Element(e) = q.select.unwrap() else { panic!() };
        // ((1 + (2*3)) < 10 AND true) OR false
        let Expr::Binary(BinOp::Or, lhs, _) = e else { panic!("{e:?}") };
        let Expr::Binary(BinOp::And, cmp, _) = *lhs else { panic!() };
        assert!(matches!(*cmp, Expr::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn between_in_like_is() {
        let q = parse_query(
            "SELECT VALUE x FROM t x WHERE x.a BETWEEN 1 AND 5
             AND x.b IN [1,2] AND x.c LIKE 'a%' AND x.d IS NOT NULL
             AND x.e NOT IN [3]",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let text = format!("{w:?}");
        assert!(text.contains("Between"));
        assert!(text.contains("In"));
        assert!(text.contains("Like"));
        assert!(text.contains("IsNotNull"));
        assert!(text.contains("negated: true"));
    }

    #[test]
    fn subquery_and_exists() {
        let q = parse_query(
            "SELECT VALUE u FROM Users u
             WHERE EXISTS (SELECT VALUE m FROM Msgs m WHERE m.author = u.id)",
        )
        .unwrap();
        assert!(matches!(q.where_clause, Some(Expr::Exists(_))));
        let q = parse_query("SELECT VALUE (SELECT VALUE 1)").unwrap();
        assert!(matches!(q.select, Some(SelectClause::Element(Expr::Subquery(_)))));
    }

    #[test]
    fn group_as_clause() {
        let q = parse_query(
            "SELECT city, COLL_COUNT(g) FROM Users u GROUP BY u.city AS city GROUP AS g",
        )
        .unwrap();
        let g = q.group_by.unwrap();
        assert_eq!(g.group_as.as_deref(), Some("g"));
        assert_eq!(g.keys[0].1.as_deref(), Some("city"));
    }

    #[test]
    fn delete_and_load() {
        let stmts = parse_statements(
            r#"DELETE FROM GleambookUsers u WHERE u.id = 667;
               LOAD DATASET GleambookUsers USING localfs (("path"="/tmp/users.adm"),("format"="adm"));"#,
        )
        .unwrap();
        assert!(matches!(&stmts[0], Stmt::Dml(DmlStmt::Delete { var: Some(v), .. }) if v == "u"));
        assert!(matches!(&stmts[1], Stmt::Dml(DmlStmt::Load { .. })));
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * FROM t").unwrap();
        assert!(q.distinct);
        assert!(matches!(q.select, Some(SelectClause::Star)));
    }

    #[test]
    fn error_positions() {
        let err = parse_query("SELECT VALUE FROM").unwrap_err();
        assert!(matches!(err, SqlppError::Parse { .. }), "{err}");
    }
}
