//! Parser corpus: a battery of realistic SQL++ and AQL inputs that must
//! parse (or fail with a clean error — never panic), plus DDL/DML coverage.

use asterix_sqlpp::{parse_aql, parse_sqlpp};

const GOOD_SQLPP: &[&str] = &[
    // minimal forms
    "SELECT VALUE 1",
    "SELECT VALUE [1, 2, 3]",
    "SELECT VALUE {{ 1, 1, 2 }}",
    "SELECT VALUE {\"a\": 1, \"b\": [true, null, missing]}",
    "SELECT 1 AS one, 'two' AS two",
    "SELECT DISTINCT VALUE x FROM [1,1,2] x",
    // clause combinations
    "SELECT VALUE u FROM Users u WHERE u.age > 21 ORDER BY u.name DESC LIMIT 10 OFFSET 5",
    "WITH cutoff AS 10 SELECT VALUE u FROM Users u WHERE u.id < cutoff",
    "SELECT VALUE nf FROM Users u LET nf = coll_count(u.friendIds), dbl = nf * 2 WHERE dbl > 4",
    "SELECT u.city AS c, COUNT(*) AS n FROM Users u GROUP BY u.city HAVING COUNT(*) > 1",
    "SELECT g, COLL_COUNT(grp) FROM Users u GROUP BY u.grade AS g GROUP AS grp",
    // joins and unnest
    "SELECT VALUE m FROM Users u JOIN Msgs m ON m.author = u.id",
    "SELECT VALUE m FROM Users u INNER JOIN Msgs m ON m.author = u.id",
    "SELECT VALUE m FROM Users u LEFT JOIN Msgs m ON m.author = u.id",
    "SELECT VALUE m FROM Users u LEFT OUTER JOIN Msgs m ON m.author = u.id",
    "SELECT VALUE e FROM Users u UNNEST u.employment e",
    "SELECT VALUE e FROM Users u LEFT UNNEST u.employment e",
    "SELECT VALUE x FROM Users u, Msgs m, [1,2] x",
    // predicates
    "SELECT VALUE u FROM Users u WHERE u.a BETWEEN 1 AND 9 AND u.b NOT BETWEEN 2 AND 3",
    "SELECT VALUE u FROM Users u WHERE u.x IN [1,2,3] OR u.y NOT IN [4]",
    "SELECT VALUE u FROM Users u WHERE u.name LIKE 'A%' AND u.alias NOT LIKE '_x%'",
    "SELECT VALUE u FROM Users u WHERE u.x IS NULL AND u.y IS NOT MISSING AND u.z IS UNKNOWN",
    "SELECT VALUE u FROM Users u WHERE SOME f IN u.friends SATISFIES f = 3",
    "SELECT VALUE u FROM Users u WHERE EXISTS u.employment",
    "SELECT VALUE u FROM Users u WHERE NOT (u.a = 1 OR u.b = 2)",
    // expressions
    "SELECT VALUE 1 + 2 * 3 - 4 / 5 % 6",
    "SELECT VALUE -x.a FROM T x",
    "SELECT VALUE 'a' || 'b' || 'c'",
    "SELECT VALUE CASE WHEN x.a > 0 THEN 'pos' WHEN x.a < 0 THEN 'neg' ELSE 'zero' END FROM T x",
    "SELECT VALUE t.arr[0].field[1] FROM T t",
    "SELECT VALUE datetime('2020-01-01T00:00:00') + duration('P1D')",
    "SELECT VALUE interval_bin(t.at, datetime('2020-01-01T00:00:00'), duration('PT1H')) FROM T t",
    // subqueries in FROM
    "SELECT VALUE x.n FROM (SELECT u.name AS n FROM Users u) x",
    // quoted identifiers
    "SELECT VALUE t.`order` FROM `select` t",
    // comments
    "SELECT VALUE 1 -- trailing comment",
    "SELECT /* block */ VALUE 1",
];

const GOOD_DDL_DML: &[&str] = &[
    "CREATE TYPE T AS { a: int }",
    "CREATE TYPE T AS CLOSED { a: int, b: string?, c: [int], d: {{ string }} }",
    "CREATE DATASET D(T) PRIMARY KEY a",
    "CREATE DATASET D(T) PRIMARY KEY a, b",
    "CREATE INDEX i ON D(a)",
    "CREATE INDEX i ON D(a.b.c) TYPE BTREE",
    "CREATE INDEX i ON D(loc) TYPE RTREE",
    "CREATE INDEX i ON D(text) TYPE KEYWORD",
    r#"CREATE EXTERNAL DATASET L(T) USING localfs (("path"="/tmp/x"),("format"="adm"))"#,
    "DROP DATASET D",
    "DROP TYPE T",
    "DROP INDEX D.i",
    r#"INSERT INTO D ({"a": 1})"#,
    r#"UPSERT INTO D ([{"a": 1}, {"a": 2}])"#,
    "DELETE FROM D WHERE a = 1",
    "DELETE FROM D d WHERE d.a = 1",
    r#"LOAD DATASET D USING localfs (("path"="/tmp/x.adm"),("format"="adm"))"#,
];

const BAD_SQLPP: &[&str] = &[
    "",
    "SELECT",
    "SELECT VALUE",
    "SELECT VALUE FROM x",
    "SELECT VALUE 1 FROM",
    "FROM Users u SELECT VALUE u", // FROM-first unsupported in this dialect
    "SELECT VALUE u FROM Users u WHERE",
    "SELECT VALUE u FROM Users u GROUP",
    "SELECT VALUE u FROM Users u ORDER",
    "SELECT VALUE u FROM Users u LIMIT 'ten'",
    "SELECT VALUE (1",
    "SELECT VALUE [1, 2",
    "SELECT VALUE {\"a\" 1}",
    "SELECT VALUE CASE WHEN 1 THEN 2", // missing END
    "CREATE DATASET D", // missing type
    "CREATE TYPE T AS { a }",
    "INSERT D (1)", // missing INTO
    "@@@@",
];

const GOOD_AQL: &[&str] = &[
    "for $x in dataset T return $x",
    "for $x in dataset('T') return $x.a",
    "for $x in dataset T where $x.a > 1 and $x.b < 2 return [$x.a, $x.b]",
    "for $x in dataset T let $y := $x.a * 2 where $y > 4 return $y",
    "for $x in dataset T order by $x.a desc, $x.b limit 3 offset 1 return $x",
    "for $x in dataset T group by $g := $x.grp with $x return { 'g': $g, 'n': coll_count($x) }",
    "for $x in dataset A, $y in dataset B where $x.id = $y.ref return {'x': $x, 'y': $y}",
    "for $x in dataset T where some $f in $x.fs satisfies $f = 1 return $x",
    "let $c := 10 for $x in dataset T where $x.a < $c return $x",
    "1 + 2",
];

const BAD_AQL: &[&str] = &[
    "for $x in dataset T",           // missing return
    "for x in dataset T return x",   // not a variable
    "for $x dataset T return $x",    // missing in
    "return",
    "for $x in dataset T group by $g = $x.a return $g", // needs :=
];

#[test]
fn good_sqlpp_parses() {
    for q in GOOD_SQLPP {
        parse_sqlpp(q).unwrap_or_else(|e| panic!("{q:?}: {e}"));
    }
}

#[test]
fn good_ddl_dml_parses() {
    for q in GOOD_DDL_DML {
        parse_sqlpp(q).unwrap_or_else(|e| panic!("{q:?}: {e}"));
    }
}

#[test]
fn bad_sqlpp_fails_cleanly() {
    for q in BAD_SQLPP {
        match parse_sqlpp(q) {
            Err(_) => {}
            Ok(stmts) if stmts.is_empty() && q.trim().is_empty() => {}
            Ok(stmts) => panic!("{q:?} unexpectedly parsed: {stmts:?}"),
        }
    }
}

#[test]
fn good_aql_parses() {
    for q in GOOD_AQL {
        parse_aql(q).unwrap_or_else(|e| panic!("{q:?}: {e}"));
    }
}

#[test]
fn bad_aql_fails_cleanly() {
    for q in BAD_AQL {
        assert!(parse_aql(q).is_err(), "{q:?} unexpectedly parsed");
    }
}

#[test]
fn multi_statement_scripts() {
    let script = r#"
        CREATE TYPE T AS { id: int };
        CREATE DATASET D(T) PRIMARY KEY id;
        INSERT INTO D ({"id": 1});
        SELECT VALUE d FROM D d;
    "#;
    let stmts = parse_sqlpp(script).unwrap();
    assert_eq!(stmts.len(), 4);
}

#[test]
fn union_all_parses_and_flattens() {
    use asterix_sqlpp::ast::Stmt;
    let stmts = parse_sqlpp(
        "SELECT VALUE 1 UNION ALL SELECT VALUE 2 UNION ALL SELECT VALUE 3",
    )
    .unwrap();
    let Stmt::Query(q) = &stmts[0] else { panic!() };
    assert_eq!(q.union_with.len(), 2, "arms flattened");
    assert!(q.union_with.iter().all(|a| a.union_with.is_empty()));
    // UNION without ALL is rejected (set union is unsupported)
    assert!(parse_sqlpp("SELECT VALUE 1 UNION SELECT VALUE 2").is_err());
}
