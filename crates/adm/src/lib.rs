#![forbid(unsafe_code)]
//! # ADM — the Asterix Data Model
//!
//! ADM is AsterixDB's NoSQL-style data model: JSON extended with object-database
//! concepts (ICDE 2019 paper, Section III, feature 1). Beyond plain JSON it adds:
//!
//! * additional primitive types — 64-bit integers distinct from doubles,
//!   `datetime` / `date` / `time` / `duration` temporal types, `point` /
//!   `rectangle` spatial types, `uuid` and `binary`;
//! * *multisets* (unordered, duplicate-preserving collections, written
//!   `{{ ... }}`) in addition to ordered arrays;
//! * an **open type system**: object types declare whatever schema is known a
//!   priori, instances may carry additional self-describing fields unless the
//!   type is marked `CLOSED` (paper Figure 3).
//!
//! This crate provides the value representation ([`Value`]), the type system
//! ([`types`]), text parsing and printing of the extended-JSON syntax
//! ([`parse`], [`mod@print`]), a compact binary serialization ([`binary`]), total
//! ordering and hashing consistent across numeric types ([`compare`]), and
//! schema validation/casting ([`validate`]).
//!
//! Everything above the storage layer (Hyracks operators, Algebricks
//! expressions, SQL++/AQL evaluation) computes over [`Value`]s.

pub mod binary;
pub mod compare;
pub mod error;
pub mod parse;
pub mod print;
pub mod schema_encode;
pub mod spatial;
pub mod temporal;
pub mod types;
pub mod validate;
pub mod value;

pub use error::{AdmError, Result};
pub use spatial::{Point, Rectangle};
pub use temporal::Duration;
pub use value::{Object, Value};
