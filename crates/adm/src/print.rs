//! Printers for [`Value`]: ADM literal syntax (round-trips through
//! [`crate::parse`]) and lossy plain-JSON output (for CSV/JSON export — the
//! §V-D "round-trip their data in and out of the system" requirement).

use crate::temporal;
use crate::value::Value;
use std::fmt::Write;

/// Renders a value in ADM literal syntax; `parse_value(to_adm_string(v)) == v`.
pub fn to_adm_string(v: &Value) -> String {
    let mut out = String::new();
    write_adm(v, &mut out);
    out
}

fn write_adm(v: &Value, out: &mut String) {
    match v {
        Value::Missing => out.push_str("missing"),
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Double(d) => write_double(*d, out),
        Value::String(s) => write_escaped(s, out),
        Value::Date(d) => {
            let _ = write!(out, "date(\"{}\")", temporal::format_date(*d));
        }
        Value::Time(t) => {
            let _ = write!(out, "time(\"{}\")", temporal::format_time(*t));
        }
        Value::DateTime(t) => {
            let _ = write!(out, "datetime(\"{}\")", temporal::format_datetime(*t));
        }
        Value::Duration(d) => {
            let _ = write!(out, "duration(\"{d}\")");
        }
        Value::Point(p) => {
            let _ = write!(out, "point(\"{},{}\")", p.x, p.y);
        }
        Value::Rectangle(r) => {
            let _ = write!(
                out,
                "rectangle(\"{},{} {},{}\")",
                r.min.x, r.min.y, r.max.x, r.max.y
            );
        }
        Value::Uuid(u) => {
            out.push_str("uuid(\"");
            for (i, b) in u.iter().enumerate() {
                if matches!(i, 4 | 6 | 8 | 10) {
                    out.push('-');
                }
                let _ = write!(out, "{b:02x}");
            }
            out.push_str("\")");
        }
        Value::Binary(bytes) => {
            out.push_str("hex(\"");
            for b in bytes {
                let _ = write!(out, "{b:02x}");
            }
            out.push_str("\")");
        }
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_adm(item, out);
            }
            out.push(']');
        }
        Value::Multiset(items) => {
            out.push_str("{{");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_adm(item, out);
            }
            out.push_str("}}");
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_adm(val, out);
            }
            out.push('}');
        }
    }
}

/// Renders a value as plain JSON. ADM-only types degrade to JSON-friendly
/// forms: temporal values become ISO strings, points become `[x, y]`,
/// multisets become arrays, `missing` becomes `null`.
pub fn to_json_string(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, &mut out);
    out
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Missing | Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Double(d) => write_double(*d, out),
        Value::String(s) => write_escaped(s, out),
        Value::Date(d) => write_escaped(&temporal::format_date(*d), out),
        Value::Time(t) => write_escaped(&temporal::format_time(*t), out),
        Value::DateTime(t) => write_escaped(&temporal::format_datetime(*t), out),
        Value::Duration(d) => write_escaped(&format!("{d}"), out),
        Value::Point(p) => {
            let _ = write!(out, "[");
            write_double(p.x, out);
            out.push_str(", ");
            write_double(p.y, out);
            out.push(']');
        }
        Value::Rectangle(r) => {
            let _ = write!(out, "[[");
            write_double(r.min.x, out);
            out.push_str(", ");
            write_double(r.min.y, out);
            out.push_str("], [");
            write_double(r.max.x, out);
            out.push_str(", ");
            write_double(r.max.y, out);
            out.push_str("]]");
        }
        Value::Uuid(_) | Value::Binary(_) => {
            // Render through the ADM path, then quote it.
            let mut inner = String::new();
            write_adm(v, &mut inner);
            write_escaped(&inner, out);
        }
        Value::Array(items) | Value::Multiset(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_escaped(k, out);
                out.push_str(": ");
                write_json(val, out);
            }
            out.push('}');
        }
    }
}

fn write_double(d: f64, out: &mut String) {
    if d.is_nan() {
        out.push_str("\"NaN\"");
    } else if d.is_infinite() {
        out.push_str(if d > 0.0 { "\"Infinity\"" } else { "\"-Infinity\"" });
    } else if d.fract() == 0.0 && d.abs() < 1e15 {
        // Keep a trailing .0 so the value re-parses as a double, not an int.
        let _ = write!(out, "{d:.1}");
    } else {
        let _ = write!(out, "{d}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_value;
    use crate::spatial::Point;
    use crate::temporal::Duration;
    use crate::value::Object;

    fn roundtrip(v: &Value) {
        let text = to_adm_string(v);
        let back = parse_value(&text).unwrap_or_else(|e| panic!("reparse {text:?}: {e}"));
        assert!(crate::compare::adm_eq(v, &back), "{v:?} -> {text} -> {back:?}");
    }

    #[test]
    fn adm_roundtrips() {
        roundtrip(&Value::Missing);
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Int(-17));
        roundtrip(&Value::Double(2.5));
        roundtrip(&Value::Double(3.0));
        roundtrip(&Value::from("quote \" and \\ and\nnewline"));
        roundtrip(&Value::Date(17167));
        roundtrip(&Value::Time(1234567));
        roundtrip(&Value::DateTime(1483228800000));
        roundtrip(&Value::Duration(Duration::parse("P1Y2M3DT4H5M6.789S").unwrap()));
        roundtrip(&Value::Point(Point::new(-3.5, 4.25)));
        roundtrip(&Value::Uuid([7; 16]));
        roundtrip(&Value::Array(vec![Value::Int(1), Value::Null, Value::from("x")]));
        roundtrip(&Value::Multiset(vec![Value::Int(1), Value::Int(1)]));
        roundtrip(&Value::Object(Object::from_pairs(vec![
            ("a", Value::Int(1)),
            ("nested", Value::object(vec![("b".into(), Value::from("y"))])),
        ])));
    }

    #[test]
    fn double_formatting_reparses_as_double() {
        let v = Value::Double(4.0);
        let s = to_adm_string(&v);
        assert_eq!(s, "4.0");
        assert!(matches!(parse_value(&s).unwrap(), Value::Double(_)));
    }

    #[test]
    fn json_degrades_adm_types() {
        let v = Value::object(vec![
            ("when".into(), Value::DateTime(0)),
            ("loc".into(), Value::Point(Point::new(1.0, 2.0))),
            ("tags".into(), Value::Multiset(vec![Value::from("a")])),
            ("gone".into(), Value::Missing),
        ]);
        let json = to_json_string(&v);
        assert_eq!(
            json,
            r#"{"when": "1970-01-01T00:00:00", "loc": [1.0, 2.0], "tags": ["a"], "gone": null}"#
        );
    }

    #[test]
    fn control_characters_escaped() {
        let s = to_adm_string(&Value::from("a\u{1}b"));
        assert_eq!(s, "\"a\\u0001b\"");
    }
}
