//! Simple (Google-map style) spatial primitives: [`Point`] and [`Rectangle`].
//!
//! The paper (Section III) lists "simple spatial data" among ADM's rich types
//! and Section V-B describes the LSM spatial-index study built on them. The
//! geometry here is deliberately minimal — axis-aligned boxes and points —
//! exactly the subset the R-tree, linearized B-tree, and grid indexes need.

use std::fmt;

/// A 2-D point. Coordinates are finite doubles; NaN is rejected at parse /
/// construction boundaries so ordering stays total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// The degenerate rectangle containing exactly this point.
    pub fn to_mbr(&self) -> Rectangle {
        Rectangle { min: *self, max: *self }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point(\"{},{}\")", self.x, self.y)
    }
}

/// An axis-aligned rectangle given by its bottom-left (`min`) and top-right
/// (`max`) corners. Also used as the MBR type inside R-trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rectangle {
    pub min: Point,
    pub max: Point,
}

impl Rectangle {
    /// Creates a rectangle, normalizing corner order so `min <= max` per axis.
    pub fn new(a: Point, b: Point) -> Self {
        Rectangle {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty-intersection-safe "nothing" rectangle used as a fold seed.
    pub fn empty() -> Self {
        Rectangle {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True when the rectangle contains no area (the [`Rectangle::empty`] seed).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width × height. Degenerate (point) rectangles have zero area.
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max.x - self.min.x) * (self.max.y - self.min.y)
        }
    }

    /// Half-perimeter, the classic R-tree "margin" metric.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max.x - self.min.x) + (self.max.y - self.min.y)
        }
    }

    /// True when `self` and `other` overlap (boundary touch counts).
    #[inline]
    pub fn intersects(&self, other: &Rectangle) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True when `self` fully contains `other`.
    pub fn contains_rect(&self, other: &Rectangle) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// True when the point lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// The smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rectangle) -> Rectangle {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rectangle {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Area growth needed to absorb `other` — the quadratic-split / choose-
    /// subtree cost metric.
    pub fn enlargement(&self, other: &Rectangle) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Overlap area with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &Rectangle) -> f64 {
        let w = self.max.x.min(other.max.x) - self.min.x.max(other.min.x);
        let h = self.max.y.min(other.max.y) - self.min.y.max(other.min.y);
        if w <= 0.0 || h <= 0.0 {
            0.0
        } else {
            w * h
        }
    }

    /// Center point (used by STR packing and Hilbert mapping of boxes).
    pub fn center(&self) -> Point {
        Point::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }

    /// True when the rectangle is a single point — the case the paper's
    /// "point MBR" storage optimization targets (Section V-B).
    pub fn is_point(&self) -> bool {
        self.min.x == self.max.x && self.min.y == self.max.y
    }
}

impl fmt::Display for Rectangle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rectangle(\"{},{} {},{}\")",
            self.min.x, self.min.y, self.max.x, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rectangle {
        Rectangle::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn rectangle_normalizes_corners() {
        let a = Rectangle::new(Point::new(5.0, 6.0), Point::new(1.0, 2.0));
        assert_eq!(a.min, Point::new(1.0, 2.0));
        assert_eq!(a.max, Point::new(5.0, 6.0));
    }

    #[test]
    fn intersection_and_containment() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(5.0, 5.0, 15.0, 15.0);
        let c = r(11.0, 11.0, 12.0, 12.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_point(&Point::new(10.0, 10.0)), "boundary counts");
        assert!(a.contains_rect(&r(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(4.0, 4.0, 6.0, 6.0);
        let u = a.union(&b);
        assert_eq!(u, r(0.0, 0.0, 6.0, 6.0));
        assert!((a.enlargement(&b) - (36.0 - 4.0)).abs() < 1e-9);
        assert_eq!(Rectangle::empty().union(&a), a);
        assert_eq!(a.union(&Rectangle::empty()), a);
    }

    #[test]
    fn overlap_area() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(2.0, 2.0, 6.0, 6.0);
        assert!((a.overlap_area(&b) - 4.0).abs() < 1e-9);
        assert_eq!(a.overlap_area(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
    }

    #[test]
    fn point_mbr_detection() {
        let p = Point::new(3.0, 4.0);
        assert!(p.to_mbr().is_point());
        assert_eq!(p.to_mbr().area(), 0.0);
        assert!(!r(0.0, 0.0, 1.0, 1.0).is_point());
        assert!((p.distance(&Point::new(0.0, 0.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rectangle_behaviour() {
        let e = Rectangle::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
    }
}
