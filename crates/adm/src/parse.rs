//! Text parser for ADM's extended-JSON syntax.
//!
//! Accepts everything JSON accepts, plus the ADM extensions visible in paper
//! Figure 3(d):
//!
//! * multiset constructors `{{ v1, v2, ... }}`;
//! * typed literals as constructor calls: `datetime("2017-01-01T00:00:00")`,
//!   `date("2017-01-20")`, `time("13:00:00")`, `duration("P30D")`,
//!   `point("3.0,4.0")`, `rectangle("0,0 5,5")`, `uuid("...")`;
//! * unquoted field names in objects (identifier-like), as SQL++ allows;
//! * `missing` as a literal.
//!
//! The parser is a single-pass recursive-descent scanner over bytes with
//! byte-offset error reporting.

use crate::error::{AdmError, Result};
use crate::spatial::{Point, Rectangle};
use crate::temporal::{self, Duration};
use crate::value::{Object, Value};

/// Parses a complete ADM value from `input`, requiring all input be consumed.
pub fn parse_value(input: &str) -> Result<Value> {
    let mut p = Parser::new(input);
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(AdmError::parse(p.pos, "trailing characters after value"));
    }
    Ok(v)
}

/// Parses a sequence of whitespace/newline-separated ADM values (the format of
/// one-object-per-line data files used by `LOAD DATASET`).
pub fn parse_many(input: &str) -> Result<Vec<Value>> {
    let mut p = Parser::new(input);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        out.push(p.parse_value()?);
    }
    Ok(out)
}

pub(crate) struct Parser<'a> {
    pub(crate) input: &'a str,
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(AdmError::parse(
                self.pos,
                format!("expected {:?}, found {:?}", b as char, self.peek().map(|c| c as char)),
            ))
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    pub(crate) fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(AdmError::parse(self.pos, "unexpected end of input")),
            Some(b'{') => {
                if self.starts_with("{{") {
                    self.parse_multiset()
                } else {
                    self.parse_object()
                }
            }
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.parse_word(),
            Some(c) => Err(AdmError::parse(self.pos, format!("unexpected character {:?}", c as char))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = match self.peek() {
                Some(b'"') | Some(b'\'') => self.parse_string()?,
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.parse_identifier(),
                other => {
                    return Err(AdmError::parse(
                        self.pos,
                        format!("expected field name, found {:?}", other.map(|c| c as char)),
                    ))
                }
            };
            self.expect(b':')?;
            let val = self.parse_value()?;
            obj.set(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(AdmError::parse(
                        self.pos,
                        format!("expected ',' or '}}', found {:?}", other.map(|c| c as char)),
                    ))
                }
            }
        }
        Ok(Value::Object(obj))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                other => {
                    return Err(AdmError::parse(
                        self.pos,
                        format!("expected ',' or ']', found {:?}", other.map(|c| c as char)),
                    ))
                }
            }
        }
        Ok(Value::Array(items))
    }

    fn parse_multiset(&mut self) -> Result<Value> {
        // consume "{{"
        self.pos += 2;
        let mut items = Vec::new();
        self.skip_ws();
        if self.starts_with("}}") {
            self.pos += 2;
            return Ok(Value::Multiset(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.starts_with("}}") {
                self.pos += 2;
                break;
            }
            match self.bump() {
                Some(b',') => continue,
                other => {
                    return Err(AdmError::parse(
                        self.pos,
                        format!("expected ',' or '}}}}', found {:?}", other.map(|c| c as char)),
                    ))
                }
            }
        }
        Ok(Value::Multiset(items))
    }

    pub(crate) fn parse_string(&mut self) -> Result<String> {
        self.skip_ws();
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(AdmError::parse(
                    self.pos,
                    format!("expected string, found {:?}", other.map(|c| c as char)),
                ))
            }
        };
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(AdmError::parse(self.pos, "unterminated string")),
                Some(q) if q == quote => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\'') => out.push('\''),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .input
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| AdmError::parse(self.pos, "truncated \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| AdmError::parse(self.pos, "bad \\u escape"))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| AdmError::parse(self.pos, "bad codepoint"))?,
                        );
                    }
                    other => {
                        return Err(AdmError::parse(
                            self.pos,
                            format!("bad escape {:?}", other.map(|c| c as char)),
                        ))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // multi-byte UTF-8: copy the full character
                    let rest = &self.input[self.pos - 1..];
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
        Ok(out)
    }

    fn parse_identifier(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        self.input[start..self.pos].to_owned()
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Value::Double)
                .map_err(|_| AdmError::parse(start, format!("bad number {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Double))
                .map_err(|_| AdmError::parse(start, format!("bad number {text:?}")))
        }
    }

    /// Keywords (`true`, `null`, `missing`, ...) and constructor calls
    /// (`datetime("...")`).
    fn parse_word(&mut self) -> Result<Value> {
        let start = self.pos;
        let word = self.parse_identifier();
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let arg = self.parse_string()?;
            self.expect(b')')?;
            return constructor(&word, &arg, start);
        }
        match word.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "null" => Ok(Value::Null),
            "missing" => Ok(Value::Missing),
            other => Err(AdmError::parse(start, format!("unknown literal {other:?}"))),
        }
    }
}

/// Evaluates a typed-literal constructor such as `datetime("...")`.
pub fn constructor(name: &str, arg: &str, offset: usize) -> Result<Value> {
    match name {
        "datetime" => Ok(Value::DateTime(temporal::parse_datetime(arg)?)),
        "date" => Ok(Value::Date(temporal::parse_date(arg)?)),
        "time" => Ok(Value::Time(temporal::parse_time(arg)?)),
        "duration" => Ok(Value::Duration(Duration::parse(arg)?)),
        "point" => {
            let (x, y) = arg
                .split_once(',')
                .ok_or_else(|| AdmError::parse(offset, format!("bad point literal {arg:?}")))?;
            let px: f64 = x.trim().parse().map_err(|_| AdmError::parse(offset, "bad point x"))?;
            let py: f64 = y.trim().parse().map_err(|_| AdmError::parse(offset, "bad point y"))?;
            if !px.is_finite() || !py.is_finite() {
                return Err(AdmError::parse(offset, "point coordinates must be finite"));
            }
            Ok(Value::Point(Point::new(px, py)))
        }
        "rectangle" => {
            let (a, b) = arg
                .split_once(' ')
                .ok_or_else(|| AdmError::parse(offset, format!("bad rectangle literal {arg:?}")))?;
            let pa = parse_point_pair(a, offset)?;
            let pb = parse_point_pair(b, offset)?;
            Ok(Value::Rectangle(Rectangle::new(pa, pb)))
        }
        "uuid" => {
            let hex: String = arg.chars().filter(|c| *c != '-').collect();
            if hex.len() != 32 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(AdmError::parse(offset, format!("bad uuid literal {arg:?}")));
            }
            let mut out = [0u8; 16];
            for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
                out[i] = u8::from_str_radix(std::str::from_utf8(chunk).unwrap(), 16).unwrap();
            }
            Ok(Value::Uuid(out))
        }
        "hex" | "binary" => {
            if !arg.len().is_multiple_of(2) || !arg.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(AdmError::parse(offset, format!("bad hex literal {arg:?}")));
            }
            let bytes = arg
                .as_bytes()
                .chunks(2)
                .map(|c| u8::from_str_radix(std::str::from_utf8(c).unwrap(), 16).unwrap())
                .collect();
            Ok(Value::Binary(bytes))
        }
        "string" => Ok(Value::String(arg.to_owned())),
        "int" | "int64" | "int32" | "int8" | "int16" => arg
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| AdmError::parse(offset, format!("bad int literal {arg:?}"))),
        "double" | "float" => arg
            .trim()
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| AdmError::parse(offset, format!("bad double literal {arg:?}"))),
        other => Err(AdmError::parse(offset, format!("unknown constructor {other:?}"))),
    }
}

fn parse_point_pair(s: &str, offset: usize) -> Result<Point> {
    let (x, y) = s
        .split_once(',')
        .ok_or_else(|| AdmError::parse(offset, format!("bad point pair {s:?}")))?;
    let px: f64 = x.trim().parse().map_err(|_| AdmError::parse(offset, "bad x"))?;
    let py: f64 = y.trim().parse().map_err(|_| AdmError::parse(offset, "bad y"))?;
    Ok(Point::new(px, py))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_json() {
        let v = parse_value(r#"{"a": 1, "b": [true, null, 2.5], "c": "x\ny"}"#).unwrap();
        assert_eq!(v.field("a"), &Value::Int(1));
        assert_eq!(v.field("b").index(2), &Value::Double(2.5));
        assert_eq!(v.field("c"), &Value::from("x\ny"));
    }

    #[test]
    fn figure3d_upsert_record() {
        // The record from Figure 3(d) of the paper (with its typed literals).
        let text = r#"{
            "id": 667,
            "alias": "dfrump",
            "name": "DonaldFrump",
            "nickname": "Frumpkin",
            "userSince": datetime("2017-01-01T00:00:00"),
            "friendIds": {{ }},
            "employment": [{"organizationName": "USA", "startDate": date("2017-01-20")}],
            "gender": "M"
        }"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.field("id"), &Value::Int(667));
        assert!(matches!(v.field("userSince"), Value::DateTime(_)));
        assert_eq!(v.field("friendIds"), &Value::Multiset(vec![]));
        let emp = v.field("employment").index(0);
        assert!(matches!(emp.field("startDate"), Value::Date(_)));
    }

    #[test]
    fn multiset_with_items() {
        let v = parse_value("{{ 1, 2, 2, 3 }}").unwrap();
        assert_eq!(
            v,
            Value::Multiset(vec![Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn typed_literals() {
        assert!(matches!(parse_value(r#"point("3.0,4.0")"#).unwrap(), Value::Point(_)));
        assert!(matches!(
            parse_value(r#"rectangle("0,0 5.5,5.5")"#).unwrap(),
            Value::Rectangle(_)
        ));
        assert!(matches!(parse_value(r#"duration("P30D")"#).unwrap(), Value::Duration(_)));
        let u = parse_value(r#"uuid("123e4567-e89b-12d3-a456-426614174000")"#).unwrap();
        assert!(matches!(u, Value::Uuid(_)));
    }

    #[test]
    fn unquoted_field_names() {
        let v = parse_value("{id: 1, alias: \"x\"}").unwrap();
        assert_eq!(v.field("id"), &Value::Int(1));
    }

    #[test]
    fn missing_literal_and_errors() {
        assert_eq!(parse_value("missing").unwrap(), Value::Missing);
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("bogus").is_err());
        assert!(parse_value("1 2").is_err(), "trailing content rejected");
        assert!(parse_value(r#"datetime("not-a-date")"#).is_err());
    }

    #[test]
    fn parse_many_lines() {
        let vs = parse_many("{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n").unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[2].field("a"), &Value::Int(3));
        assert!(parse_many("{\"a\":1} garbage").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_value("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse_value("3.25").unwrap(), Value::Double(3.25));
        assert_eq!(parse_value("1e3").unwrap(), Value::Double(1000.0));
        // i64 overflow falls back to double
        assert!(matches!(parse_value("99999999999999999999").unwrap(), Value::Double(_)));
    }

    #[test]
    fn unicode_strings() {
        let v = parse_value(r#""héllo → wörld""#).unwrap();
        assert_eq!(v, Value::from("héllo → wörld"));
        let v = parse_value(r#""Aé""#).unwrap();
        assert_eq!(v, Value::from("Aé"));
    }
}
