//! The [`Value`] enum: the runtime representation of every ADM instance.
//!
//! A `Value` is what flows through Hyracks operator pipelines, what expressions
//! evaluate to, and what gets serialized into LSM components. The variants
//! mirror ADM's primitive and constructed types (paper Section III, Figure 3):
//! JSON's scalars plus `int64`-vs-`double` distinction, temporal types, simple
//! spatial types, and three constructors — ordered arrays, unordered multisets
//! (`{{ ... }}`), and objects.

use crate::spatial::{Point, Rectangle};
use crate::temporal::Duration;
use std::fmt;

/// Numeric tag identifying a value's type; also the cross-type sort ordinal
/// used by [`crate::compare`]. `Missing < Null < ...` follows AsterixDB's
/// ordering where `MISSING` sorts before `NULL`, which sorts before all data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TypeTag {
    Missing = 0,
    Null = 1,
    Boolean = 2,
    /// Shared ordinal for Int64 and Double so cross-type numeric comparison
    /// (e.g. `2 < 2.5`) orders correctly in indexes.
    Number = 3,
    String = 4,
    Date = 5,
    Time = 6,
    DateTime = 7,
    Duration = 8,
    Point = 9,
    Rectangle = 10,
    Uuid = 11,
    Binary = 12,
    Array = 13,
    Multiset = 14,
    Object = 15,
}

impl TypeTag {
    /// Human-readable ADM type name.
    pub fn name(self) -> &'static str {
        match self {
            TypeTag::Missing => "missing",
            TypeTag::Null => "null",
            TypeTag::Boolean => "boolean",
            TypeTag::Number => "number",
            TypeTag::String => "string",
            TypeTag::Date => "date",
            TypeTag::Time => "time",
            TypeTag::DateTime => "datetime",
            TypeTag::Duration => "duration",
            TypeTag::Point => "point",
            TypeTag::Rectangle => "rectangle",
            TypeTag::Uuid => "uuid",
            TypeTag::Binary => "binary",
            TypeTag::Array => "array",
            TypeTag::Multiset => "multiset",
            TypeTag::Object => "object",
        }
    }
}

/// An ADM object: an ordered list of distinct field-name/value pairs.
///
/// Field order is preserved (it matters for printing and for closed-type
/// layout); lookup is linear, which is the right trade-off for the small
/// objects typical of record data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Object {
    fields: Vec<(String, Value)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object { fields: Vec::new() }
    }

    /// Creates an object with pre-allocated capacity for `n` fields.
    pub fn with_capacity(n: usize) -> Self {
        Object { fields: Vec::with_capacity(n) }
    }

    /// Builds an object from `(name, value)` pairs. Later duplicates replace
    /// earlier ones, matching UPSERT-style object construction semantics.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        let mut o = Object::new();
        for (k, v) in pairs {
            o.set(k.into(), v);
        }
        o
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field lookup by name; `None` when the field is absent (the caller maps
    /// this to ADM `MISSING`).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Mutable field lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.fields.iter_mut().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Sets a field, replacing any existing field of the same name (keeping
    /// its position) or appending a new one.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        match self.get_mut(&name) {
            Some(slot) => *slot = value,
            None => self.fields.push((name, value)),
        }
    }

    /// Removes a field by name, returning its value.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        let idx = self.fields.iter().position(|(k, _)| k == name)?;
        Some(self.fields.remove(idx).1)
    }

    /// Iterates over `(name, value)` pairs in field order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Consumes the object, yielding its pairs in field order.
    pub fn into_pairs(self) -> Vec<(String, Value)> {
        self.fields
    }

    /// Field names in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(k, _)| k.as_str())
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Object::from_pairs(iter)
    }
}

/// A single ADM value.
///
/// `Missing` and `Null` are distinct: `MISSING` means "no such field", `NULL`
/// means "field present, value unknown" — SQL++ propagates them differently
/// and both are first-class here.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absent field / out-of-band marker; SQL++'s `MISSING`.
    #[default]
    Missing,
    /// SQL-style `NULL`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// 64-bit signed integer (`int`, `int8..int64` in ADM collapse here).
    Int(i64),
    /// IEEE-754 double (`double`, `float` collapse here).
    Double(f64),
    /// UTF-8 string.
    String(String),
    /// Days since the Unix epoch (ADM `date`).
    Date(i32),
    /// Milliseconds since midnight (ADM `time`).
    Time(i32),
    /// Milliseconds since the Unix epoch (ADM `datetime`).
    DateTime(i64),
    /// Calendar + chronological duration (ADM `duration`).
    Duration(Duration),
    /// 2-D point (ADM `point`).
    Point(Point),
    /// Axis-aligned rectangle (ADM `rectangle`).
    Rectangle(Rectangle),
    /// 128-bit UUID.
    Uuid([u8; 16]),
    /// Raw bytes (ADM `binary`).
    Binary(Vec<u8>),
    /// Ordered collection `[ ... ]`.
    Array(Vec<Value>),
    /// Unordered, duplicate-preserving collection `{{ ... }}`.
    Multiset(Vec<Value>),
    /// Record `{ ... }`.
    Object(Object),
}

impl Value {
    /// The value's [`TypeTag`].
    #[inline]
    pub fn tag(&self) -> TypeTag {
        match self {
            Value::Missing => TypeTag::Missing,
            Value::Null => TypeTag::Null,
            Value::Bool(_) => TypeTag::Boolean,
            Value::Int(_) | Value::Double(_) => TypeTag::Number,
            Value::String(_) => TypeTag::String,
            Value::Date(_) => TypeTag::Date,
            Value::Time(_) => TypeTag::Time,
            Value::DateTime(_) => TypeTag::DateTime,
            Value::Duration(_) => TypeTag::Duration,
            Value::Point(_) => TypeTag::Point,
            Value::Rectangle(_) => TypeTag::Rectangle,
            Value::Uuid(_) => TypeTag::Uuid,
            Value::Binary(_) => TypeTag::Binary,
            Value::Array(_) => TypeTag::Array,
            Value::Multiset(_) => TypeTag::Multiset,
            Value::Object(_) => TypeTag::Object,
        }
    }

    /// Concrete ADM type name (distinguishes `int64` from `double`, unlike
    /// [`TypeTag::name`] which reports the shared `number` ordinal).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int64",
            Value::Double(_) => "double",
            other => other.tag().name(),
        }
    }

    /// True for `MISSING`.
    #[inline]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// True for `NULL`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for `NULL` or `MISSING` ("unknown" in SQL++ terms).
    #[inline]
    pub fn is_unknown(&self) -> bool {
        matches!(self, Value::Null | Value::Missing)
    }

    /// Numeric view: `Some(f64)` for Int/Double, else `None`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view (exact): `Some(i64)` for Int, and for Double with an exact
    /// integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.2e18 => Some(*d as i64),
            _ => None,
        }
    }

    /// Boolean view.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Object view.
    #[inline]
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable object view.
    #[inline]
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Collection view: the items of an array or multiset.
    #[inline]
    pub fn as_collection(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) | Value::Multiset(v) => Some(v),
            _ => None,
        }
    }

    /// Field access that yields `MISSING` for non-objects and absent fields,
    /// matching SQL++ navigation semantics (`user.alias` on a non-object is
    /// `MISSING`, not an error).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(o) => o.get(name).unwrap_or(&Value::Missing),
            _ => &Value::Missing,
        }
    }

    /// Index access with the same MISSING-on-mismatch semantics.
    #[allow(clippy::should_implement_trait)] // ADM navigation, not ops::Index
    pub fn index(&self, i: i64) -> &Value {
        match self {
            Value::Array(items) => {
                if i >= 0 && (i as usize) < items.len() {
                    &items[i as usize]
                } else {
                    &Value::Missing
                }
            }
            _ => &Value::Missing,
        }
    }

    /// Convenience constructor: `Value::from("s")`, numbers, bools via `From`.
    pub fn object(pairs: Vec<(String, Value)>) -> Value {
        Value::Object(Object::from_pairs(pairs))
    }

    /// Approximate in-memory footprint in bytes, used by Hyracks frame and
    /// memory-budget accounting (paper's working-memory model, ref \[10\]).
    pub fn heap_size(&self) -> usize {
        let inner = match self {
            Value::String(s) => s.len(),
            Value::Binary(b) => b.len(),
            Value::Array(v) | Value::Multiset(v) => v.iter().map(Value::heap_size).sum(),
            Value::Object(o) => o.iter().map(|(k, v)| k.len() + v.heap_size()).sum(),
            _ => 0,
        };
        std::mem::size_of::<Value>() + inner
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Point> for Value {
    fn from(p: Point) -> Self {
        Value::Point(p)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl From<Object> for Value {
    fn from(o: Object) -> Self {
        Value::Object(o)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::to_adm_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_set_get_replace() {
        let mut o = Object::new();
        o.set("a", Value::Int(1));
        o.set("b", Value::from("x"));
        assert_eq!(o.get("a"), Some(&Value::Int(1)));
        o.set("a", Value::Int(2));
        assert_eq!(o.len(), 2, "replace must not duplicate");
        assert_eq!(o.get("a"), Some(&Value::Int(2)));
        assert_eq!(o.remove("b"), Some(Value::from("x")));
        assert!(o.get("b").is_none());
    }

    #[test]
    fn field_navigation_yields_missing() {
        let v = Value::object(vec![("x".into(), Value::Int(5))]);
        assert_eq!(v.field("x"), &Value::Int(5));
        assert_eq!(v.field("nope"), &Value::Missing);
        assert_eq!(Value::Int(3).field("x"), &Value::Missing);
        assert_eq!(Value::Array(vec![Value::Int(9)]).index(0), &Value::Int(9));
        assert_eq!(Value::Array(vec![]).index(2), &Value::Missing);
        assert_eq!(Value::Null.index(0), &Value::Missing);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Double(4.0).as_i64(), Some(4));
        assert_eq!(Value::Double(4.5).as_i64(), None);
        assert_eq!(Value::from("s").as_f64(), None);
    }

    #[test]
    fn tags_distinguish_missing_null() {
        assert!(TypeTag::Missing < TypeTag::Null);
        assert!(TypeTag::Null < TypeTag::Number);
        assert_eq!(Value::Int(1).tag(), Value::Double(1.0).tag());
        assert_eq!(Value::Int(1).type_name(), "int64");
        assert_eq!(Value::Double(1.0).type_name(), "double");
    }

    #[test]
    fn heap_size_grows_with_content() {
        let small = Value::from("ab");
        let big = Value::from("a".repeat(100));
        assert!(big.heap_size() > small.heap_size());
        let arr = Value::Array(vec![Value::Int(1); 10]);
        assert!(arr.heap_size() >= 10 * std::mem::size_of::<Value>());
    }
}
