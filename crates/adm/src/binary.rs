//! Compact binary serialization of [`Value`]s — the on-page format used by the
//! storage layer (LSM components, WAL records) and by Hyracks when spilling
//! frames to disk.
//!
//! Layout: one tag byte followed by a fixed or length-prefixed payload.
//! Collections are count-prefixed; object fields carry their names inline
//! (this is exactly what makes *undeclared open fields* cost extra space —
//! experiment E10). Composite index keys are encoded with [`encode_key`] /
//! [`compare_keys`], which order byte streams identically to element-wise
//! [`crate::compare::total_cmp`].

use crate::error::{AdmError, Result};
use crate::spatial::{Point, Rectangle};
use crate::temporal::Duration;
use crate::value::{Object, Value};
use std::cmp::Ordering;

// Tag bytes. Distinct per concrete type (Int vs Double), unlike TypeTag.
const T_MISSING: u8 = 0;
const T_NULL: u8 = 1;
const T_BOOL: u8 = 2;
const T_INT: u8 = 3;
const T_DOUBLE: u8 = 4;
const T_STRING: u8 = 5;
const T_DATE: u8 = 6;
const T_TIME: u8 = 7;
const T_DATETIME: u8 = 8;
const T_DURATION: u8 = 9;
const T_POINT: u8 = 10;
const T_RECTANGLE: u8 = 11;
const T_UUID: u8 = 12;
const T_BINARY: u8 = 13;
const T_ARRAY: u8 = 14;
const T_MULTISET: u8 = 15;
const T_OBJECT: u8 = 16;

/// Serializes a value, appending to `out`.
pub fn encode_into(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Missing => out.push(T_MISSING),
        Value::Null => out.push(T_NULL),
        Value::Bool(b) => {
            out.push(T_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(T_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(T_DOUBLE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::String(s) => {
            out.push(T_STRING);
            put_len(out, s.len());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(T_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Time(t) => {
            out.push(T_TIME);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Value::DateTime(t) => {
            out.push(T_DATETIME);
            out.extend_from_slice(&t.to_le_bytes());
        }
        Value::Duration(d) => {
            out.push(T_DURATION);
            out.extend_from_slice(&d.months.to_le_bytes());
            out.extend_from_slice(&d.millis.to_le_bytes());
        }
        Value::Point(p) => {
            out.push(T_POINT);
            out.extend_from_slice(&p.x.to_le_bytes());
            out.extend_from_slice(&p.y.to_le_bytes());
        }
        Value::Rectangle(r) => {
            out.push(T_RECTANGLE);
            out.extend_from_slice(&r.min.x.to_le_bytes());
            out.extend_from_slice(&r.min.y.to_le_bytes());
            out.extend_from_slice(&r.max.x.to_le_bytes());
            out.extend_from_slice(&r.max.y.to_le_bytes());
        }
        Value::Uuid(u) => {
            out.push(T_UUID);
            out.extend_from_slice(u);
        }
        Value::Binary(b) => {
            out.push(T_BINARY);
            put_len(out, b.len());
            out.extend_from_slice(b);
        }
        Value::Array(items) => {
            out.push(T_ARRAY);
            put_len(out, items.len());
            for i in items {
                encode_into(i, out);
            }
        }
        Value::Multiset(items) => {
            out.push(T_MULTISET);
            put_len(out, items.len());
            for i in items {
                encode_into(i, out);
            }
        }
        Value::Object(o) => {
            out.push(T_OBJECT);
            put_len(out, o.len());
            for (k, val) in o.iter() {
                put_len(out, k.len());
                out.extend_from_slice(k.as_bytes());
                encode_into(val, out);
            }
        }
    }
}

/// Serializes a value to a fresh buffer.
pub fn encode(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_into(v, &mut out);
    out
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

/// Streaming decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when all bytes are consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(AdmError::Serde(format!(
                "truncated input: need {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn len(&mut self) -> Result<usize> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()) as usize)
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Skips `n` raw bytes (schema-encoded record headers).
    pub fn skip_raw(&mut self, n: usize) -> Result<()> {
        self.take(n)?;
        Ok(())
    }

    /// Decodes one value.
    pub fn value(&mut self) -> Result<Value> {
        let tag = self.u8()?;
        Ok(match tag {
            T_MISSING => Value::Missing,
            T_NULL => Value::Null,
            T_BOOL => Value::Bool(self.u8()? != 0),
            T_INT => Value::Int(self.i64()?),
            T_DOUBLE => Value::Double(self.f64()?),
            T_STRING => {
                let n = self.len()?;
                let bytes = self.take(n)?;
                Value::String(
                    std::str::from_utf8(bytes)
                        .map_err(|_| AdmError::Serde("invalid UTF-8 in string".into()))?
                        .to_owned(),
                )
            }
            T_DATE => Value::Date(self.i32()?),
            T_TIME => Value::Time(self.i32()?),
            T_DATETIME => Value::DateTime(self.i64()?),
            T_DURATION => Value::Duration(Duration { months: self.i32()?, millis: self.i64()? }),
            T_POINT => Value::Point(Point::new(self.f64()?, self.f64()?)),
            T_RECTANGLE => Value::Rectangle(Rectangle {
                min: Point::new(self.f64()?, self.f64()?),
                max: Point::new(self.f64()?, self.f64()?),
            }),
            T_UUID => {
                let b = self.take(16)?;
                let mut u = [0u8; 16];
                u.copy_from_slice(b);
                Value::Uuid(u)
            }
            T_BINARY => {
                let n = self.len()?;
                Value::Binary(self.take(n)?.to_vec())
            }
            T_ARRAY | T_MULTISET => {
                let n = self.len()?;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                if tag == T_ARRAY {
                    Value::Array(items)
                } else {
                    Value::Multiset(items)
                }
            }
            T_OBJECT => {
                let n = self.len()?;
                let mut o = Object::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let klen = self.len()?;
                    let kbytes = self.take(klen)?;
                    let key = std::str::from_utf8(kbytes)
                        .map_err(|_| AdmError::Serde("invalid UTF-8 in field name".into()))?
                        .to_owned();
                    o.set(key, self.value()?);
                }
                Value::Object(o)
            }
            other => return Err(AdmError::Serde(format!("unknown tag byte {other}"))),
        })
    }
}

/// Deserializes a single value, requiring all bytes be consumed.
pub fn decode(buf: &[u8]) -> Result<Value> {
    let mut d = Decoder::new(buf);
    let v = d.value()?;
    if !d.is_done() {
        return Err(AdmError::Serde(format!(
            "{} trailing bytes after value",
            buf.len() - d.position()
        )));
    }
    Ok(v)
}

/// Encodes a composite index key (one or more values) to bytes.
///
/// The encoding is *not* memcmp-ordered; ordering is provided by
/// [`compare_keys`], which decodes lazily and applies the ADM total order
/// element-wise. Keys are small, so decode-compare is cheap and — unlike a
/// memcomparable double encoding — exact for 64-bit integers.
///
/// Numeric parts are *normalized* (integral doubles encode as ints) so that
/// ADM-equal keys — `Int(2)` and `Double(2.0)` — produce byte-identical
/// encodings; bloom filters and hash tables over raw key bytes then agree
/// with ADM equality.
pub fn encode_key(parts: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_len(&mut out, parts.len());
    for p in parts {
        match normalize_key_part(p) {
            Some(n) => encode_into(&n, &mut out),
            None => encode_into(p, &mut out),
        }
    }
    out
}

/// Returns the normalized form of a key part if it differs from the input.
fn normalize_key_part(v: &Value) -> Option<Value> {
    match v {
        Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.0e18 && !d.is_nan() => {
            Some(Value::Int(*d as i64))
        }
        Value::Array(items) => {
            if items.iter().any(|i| normalize_key_part(i).is_some()) {
                Some(Value::Array(
                    items
                        .iter()
                        .map(|i| normalize_key_part(i).unwrap_or_else(|| i.clone()))
                        .collect(),
                ))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Decodes a composite key produced by [`encode_key`].
pub fn decode_key(buf: &[u8]) -> Result<Vec<Value>> {
    let mut d = Decoder::new(buf);
    let n = d.len()?;
    let mut out = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        out.push(d.value()?);
    }
    if !d.is_done() {
        return Err(AdmError::Serde("trailing bytes after key".into()));
    }
    Ok(out)
}

/// Compares two encoded composite keys under the element-wise ADM total
/// order; shorter keys that are a prefix of longer ones compare less (so a
/// partial search key matches the left edge of its range).
pub fn compare_keys(a: &[u8], b: &[u8]) -> Ordering {
    let mut da = Decoder::new(a);
    let mut db = Decoder::new(b);
    let na = match da.len() {
        Ok(n) => n,
        Err(_) => return a.cmp(b),
    };
    let nb = match db.len() {
        Ok(n) => n,
        Err(_) => return a.cmp(b),
    };
    for _ in 0..na.min(nb) {
        let va = match da.value() {
            Ok(v) => v,
            Err(_) => return a.cmp(b),
        };
        let vb = match db.value() {
            Ok(v) => v,
            Err(_) => return a.cmp(b),
        };
        let c = crate::compare::total_cmp(&va, &vb);
        if c != Ordering::Equal {
            return c;
        }
    }
    na.cmp(&nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::total_cmp;

    fn roundtrip(v: &Value) {
        let bytes = encode(v);
        let back = decode(&bytes).unwrap();
        assert_eq!(v, &back, "binary roundtrip");
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Missing,
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Double(-0.0),
            Value::Double(f64::MAX),
            Value::from(""),
            Value::from("héllo"),
            Value::Date(-1),
            Value::Time(86_399_999),
            Value::DateTime(1_500_000_000_000),
            Value::Duration(Duration { months: -3, millis: 12345 }),
            Value::Point(Point::new(1.5, -2.5)),
            Value::Uuid([0xab; 16]),
            Value::Binary(vec![0, 255, 127]),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_roundtrips() {
        roundtrip(&Value::Array(vec![
            Value::Int(1),
            Value::Array(vec![Value::from("deep")]),
            Value::object(vec![("k".into(), Value::Multiset(vec![Value::Null]))]),
        ]));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[200]).is_err());
        assert!(decode(&[T_STRING, 10, 0, 0, 0, b'a']).is_err(), "truncated string");
        let mut ok = encode(&Value::Int(1));
        ok.push(0);
        assert!(decode(&ok).is_err(), "trailing bytes");
    }

    #[test]
    fn key_compare_matches_value_compare() {
        let cases = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Double(1.5)],
            vec![Value::from("a")],
            vec![Value::from("ab")],
            vec![Value::Int(1), Value::from("x")],
            vec![Value::Int(1), Value::from("y")],
            vec![Value::Int(1)], // prefix of the two above
        ];
        for a in &cases {
            for b in &cases {
                let ka = encode_key(a);
                let kb = encode_key(b);
                let mut expected = Ordering::Equal;
                for (x, y) in a.iter().zip(b.iter()) {
                    expected = total_cmp(x, y);
                    if expected != Ordering::Equal {
                        break;
                    }
                }
                if expected == Ordering::Equal {
                    expected = a.len().cmp(&b.len());
                }
                assert_eq!(compare_keys(&ka, &kb), expected, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn key_roundtrip() {
        let parts = vec![Value::Int(42), Value::from("user"), Value::DateTime(1000)];
        let k = encode_key(&parts);
        assert_eq!(decode_key(&k).unwrap(), parts);
    }

    #[test]
    fn object_encoding_carries_field_names() {
        // The E10 effect: undeclared fields pay for their names inline.
        let o = Value::object(vec![("aVeryLongFieldNameIndeed".into(), Value::Int(1))]);
        let short = Value::object(vec![("a".into(), Value::Int(1))]);
        assert!(encode(&o).len() > encode(&short).len());
    }
}
