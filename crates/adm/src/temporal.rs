//! ADM temporal types: `date`, `time`, `datetime`, `duration`, and the
//! interval-binning support added for the multitasking study (paper §V-D:
//! "They needed to time-bin their data into various sized bins and to deal
//! with the possibility that a given user activity might span bins").
//!
//! Representations follow AsterixDB: `date` = days since the Unix epoch,
//! `time` = milliseconds since midnight, `datetime` = milliseconds since the
//! epoch, `duration` = a calendar part (months) plus a chronological part
//! (milliseconds). Civil-date math uses the proleptic Gregorian calendar.

use crate::error::{AdmError, Result};
use std::fmt;

pub const MILLIS_PER_SECOND: i64 = 1_000;
pub const MILLIS_PER_MINUTE: i64 = 60 * MILLIS_PER_SECOND;
pub const MILLIS_PER_HOUR: i64 = 60 * MILLIS_PER_MINUTE;
pub const MILLIS_PER_DAY: i64 = 24 * MILLIS_PER_HOUR;

/// ADM `duration`: ISO-8601 style, split into a calendar component (months,
/// whose length in days varies) and an exact chronological component (ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Duration {
    /// Years*12 + months.
    pub months: i32,
    /// Days/hours/minutes/seconds collapsed to milliseconds.
    pub millis: i64,
}

impl Duration {
    /// A duration of exactly `ms` milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        Duration { months: 0, millis: ms }
    }

    /// A duration of `d` days.
    pub const fn from_days(d: i64) -> Self {
        Duration { months: 0, millis: d * MILLIS_PER_DAY }
    }

    /// A calendar duration of `m` months.
    pub const fn from_months(m: i32) -> Self {
        Duration { months: m, millis: 0 }
    }

    /// Parses an ISO-8601 duration literal such as `P30D`, `PT1H30M`,
    /// `P1Y2M3DT4H5M6.789S`, or a negative `-P1D`.
    ///
    /// Extension: because ADM durations carry independent calendar and
    /// chronological components, a sign (`+`/`-`) directly before the `T`
    /// separator gives the time section its own sign — e.g. `-P1M+T0.001S`
    /// is one millisecond short of minus-one-month. Plain ISO strings behave
    /// exactly as ISO specifies.
    pub fn parse(s: &str) -> Result<Duration> {
        let err = |m: &str| AdmError::Temporal(format!("bad duration {s:?}: {m}"));
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let body = body.strip_prefix('P').ok_or_else(|| err("must start with P"))?;
        let mut months: i64 = 0;
        let mut millis: i64 = 0; // calendar-section days/weeks, in ms
        let mut tmillis: i64 = 0; // time-section (after T), in ms
        let mut in_time = false;
        // Absolute sign of the time section when the mixed-sign extension's
        // explicit `+T`/`-T` is used; otherwise the section inherits the
        // literal's overall sign.
        let mut time_sign: Option<i64> = None;
        let mut chars = body.char_indices().peekable();
        let bytes = body.as_bytes();
        let mut saw_component = false;
        while let Some((i, c)) = chars.next() {
            if c == 'T' {
                in_time = true;
                continue;
            }
            if (c == '+' || c == '-') && !in_time {
                // mixed-sign extension: the sign applies to the T section
                match chars.next() {
                    Some((_, 'T')) => {
                        in_time = true;
                        time_sign = Some(if c == '-' { -1 } else { 1 });
                        continue;
                    }
                    _ => return Err(err("sign must directly precede 'T'")),
                }
            }
            if !c.is_ascii_digit() {
                return Err(err("expected digit"));
            }
            // scan the number (possibly fractional for seconds)
            let mut j = i;
            let mut saw_dot = false;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                if bytes[j] == b'.' {
                    saw_dot = true;
                }
                j += 1;
            }
            let num_str = &body[i..j];
            // advance the char iterator past the number
            while matches!(chars.peek(), Some(&(k, _)) if k < j) {
                chars.next();
            }
            let unit = chars.next().ok_or_else(|| err("missing unit"))?.1;
            saw_component = true;
            if saw_dot && unit != 'S' {
                return Err(err("fraction only allowed on seconds"));
            }
            let whole: f64 = num_str.parse().map_err(|_| err("bad number"))?;
            match (in_time, unit) {
                (false, 'Y') => months += (whole as i64) * 12,
                (false, 'M') => months += whole as i64,
                (false, 'W') => millis += (whole as i64) * 7 * MILLIS_PER_DAY,
                (false, 'D') => millis += (whole as i64) * MILLIS_PER_DAY,
                (true, 'H') => tmillis += (whole as i64) * MILLIS_PER_HOUR,
                (true, 'M') => tmillis += (whole as i64) * MILLIS_PER_MINUTE,
                (true, 'S') => tmillis += (whole * MILLIS_PER_SECOND as f64).round() as i64,
                _ => return Err(err("unit in wrong section")),
            }
        }
        if !saw_component {
            return Err(err("empty duration"));
        }
        let sign: i64 = if neg { -1 } else { 1 };
        Ok(Duration {
            months: (months * sign) as i32,
            millis: millis * sign + tmillis * time_sign.unwrap_or(sign),
        })
    }

    /// True when both components are zero.
    pub fn is_zero(&self) -> bool {
        self.months == 0 && self.millis == 0
    }

    /// Negation.
    pub fn neg(&self) -> Duration {
        Duration { months: -self.months, millis: -self.millis }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "PT0S");
        }
        // Mixed-sign durations (calendar and time parts disagree) use the
        // documented `±P...±T...` extension so printing round-trips exactly.
        let mixed = self.months != 0 && self.millis != 0 && (self.months < 0) != (self.millis < 0);
        let neg = if self.months != 0 { self.months < 0 } else { self.millis < 0 };
        let months = self.months.unsigned_abs();
        let mut ms = self.millis.unsigned_abs();
        if neg {
            write!(f, "-")?;
        }
        write!(f, "P")?;
        let (y, m) = (months / 12, months % 12);
        if y > 0 {
            write!(f, "{y}Y")?;
        }
        if m > 0 {
            write!(f, "{m}M")?;
        }
        let days = ms / MILLIS_PER_DAY as u64;
        ms %= MILLIS_PER_DAY as u64;
        // In the mixed case everything chronological goes after ±T (days are
        // exact multiples of hours, so this is lossless).
        if days > 0 && !mixed {
            write!(f, "{days}D")?;
        }
        if mixed {
            ms += days * MILLIS_PER_DAY as u64;
            write!(f, "{}T", if self.millis < 0 { '-' } else { '+' })?;
        }
        if ms > 0 {
            if !mixed {
                write!(f, "T")?;
            }
            let h = ms / MILLIS_PER_HOUR as u64;
            ms %= MILLIS_PER_HOUR as u64;
            let min = ms / MILLIS_PER_MINUTE as u64;
            ms %= MILLIS_PER_MINUTE as u64;
            let s = ms / MILLIS_PER_SECOND as u64;
            let frac = ms % MILLIS_PER_SECOND as u64;
            if h > 0 {
                write!(f, "{h}H")?;
            }
            if min > 0 {
                write!(f, "{min}M")?;
            }
            if s > 0 || frac > 0 {
                if frac > 0 {
                    write!(f, "{s}.{frac:03}S")?;
                } else {
                    write!(f, "{s}S")?;
                }
            }
        }
        Ok(())
    }
}

/// Converts a civil date to days since the Unix epoch
/// (Howard Hinnant's `days_from_civil` algorithm).
pub fn civil_to_days(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) as i32
}

/// Converts days since the Unix epoch back to a civil `(year, month, day)`.
pub fn days_to_civil(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Days in a given month of a given year.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn parse_fixed_u32(s: &str, what: &str) -> Result<u32> {
    s.parse::<u32>()
        .map_err(|_| AdmError::Temporal(format!("bad {what} field {s:?}")))
}

/// Parses `YYYY-MM-DD` into epoch days.
pub fn parse_date(s: &str) -> Result<i32> {
    let err = || AdmError::Temporal(format!("bad date literal {s:?}"));
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let mut it = body.splitn(3, '-');
    let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
    let m = parse_fixed_u32(it.next().ok_or_else(err)?, "month")?;
    let d = parse_fixed_u32(it.next().ok_or_else(err)?, "day")?;
    if m == 0 || m > 12 || d == 0 || d > days_in_month(y, m) {
        return Err(err());
    }
    Ok(civil_to_days(if neg { -y } else { y }, m, d))
}

/// Parses `HH:MM:SS[.mmm]` into milliseconds since midnight.
pub fn parse_time(s: &str) -> Result<i32> {
    let err = || AdmError::Temporal(format!("bad time literal {s:?}"));
    let mut it = s.splitn(3, ':');
    let h = parse_fixed_u32(it.next().ok_or_else(err)?, "hour")?;
    let m = parse_fixed_u32(it.next().ok_or_else(err)?, "minute")?;
    let sec_part = it.next().ok_or_else(err)?;
    let (sec_str, ms) = match sec_part.split_once('.') {
        Some((sec, frac)) => {
            let mut frac = frac.to_string();
            while frac.len() < 3 {
                frac.push('0');
            }
            (sec, parse_fixed_u32(&frac[..3], "millis")?)
        }
        None => (sec_part, 0),
    };
    let sec = parse_fixed_u32(sec_str, "second")?;
    if h > 23 || m > 59 || sec > 59 {
        return Err(err());
    }
    Ok((h as i64 * MILLIS_PER_HOUR
        + m as i64 * MILLIS_PER_MINUTE
        + sec as i64 * MILLIS_PER_SECOND
        + ms as i64) as i32)
}

/// Parses `YYYY-MM-DDTHH:MM:SS[.mmm][Z]` into epoch milliseconds.
pub fn parse_datetime(s: &str) -> Result<i64> {
    let body = s.strip_suffix('Z').unwrap_or(s);
    let (date_part, time_part) = body
        .split_once('T')
        .ok_or_else(|| AdmError::Temporal(format!("bad datetime literal {s:?} (missing 'T')")))?;
    let days = parse_date(date_part)?;
    let ms = parse_time(time_part)?;
    Ok(days as i64 * MILLIS_PER_DAY + ms as i64)
}

/// Formats epoch days as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_civil(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Formats millis-since-midnight as `HH:MM:SS[.mmm]`.
pub fn format_time(mut ms: i32) -> String {
    let h = ms / MILLIS_PER_HOUR as i32;
    ms %= MILLIS_PER_HOUR as i32;
    let m = ms / MILLIS_PER_MINUTE as i32;
    ms %= MILLIS_PER_MINUTE as i32;
    let s = ms / MILLIS_PER_SECOND as i32;
    let frac = ms % MILLIS_PER_SECOND as i32;
    if frac > 0 {
        format!("{h:02}:{m:02}:{s:02}.{frac:03}")
    } else {
        format!("{h:02}:{m:02}:{s:02}")
    }
}

/// Formats epoch milliseconds as an ISO datetime.
pub fn format_datetime(ms: i64) -> String {
    let days = ms.div_euclid(MILLIS_PER_DAY) as i32;
    let tod = ms.rem_euclid(MILLIS_PER_DAY) as i32;
    format!("{}T{}", format_date(days), format_time(tod))
}

/// Adds a duration to an epoch-millisecond datetime, handling the calendar
/// component correctly (month-end clamping, as in `2020-01-31 + P1M`).
pub fn datetime_add(ms: i64, dur: &Duration) -> i64 {
    let mut out = ms;
    if dur.months != 0 {
        let days = out.div_euclid(MILLIS_PER_DAY) as i32;
        let tod = out.rem_euclid(MILLIS_PER_DAY);
        let (y, m, d) = days_to_civil(days);
        let total = y as i64 * 12 + (m as i64 - 1) + dur.months as i64;
        let ny = total.div_euclid(12) as i32;
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        out = civil_to_days(ny, nm, nd) as i64 * MILLIS_PER_DAY + tod;
    }
    out + dur.millis
}

/// Subtracts a duration from a datetime.
pub fn datetime_sub(ms: i64, dur: &Duration) -> i64 {
    datetime_add(ms, &dur.neg())
}

/// One time bin `[start, end)` produced by [`interval_bin`] / [`overlap_bins`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bin {
    pub start: i64,
    pub end: i64,
}

impl Bin {
    /// Length of the overlap between this bin and the activity `[s, e)`, in ms.
    pub fn overlap_with(&self, s: i64, e: i64) -> i64 {
        (self.end.min(e) - self.start.max(s)).max(0)
    }
}

/// `interval_bin(t, anchor, bin_size)`: the bin containing instant `t`, where
/// bins are `bin_size`-long and aligned to `anchor`. This is AsterixDB's
/// `interval-bin` function, the temporal feature the §V-D user study needed.
/// Calendar bin sizes (months) produce calendar-aligned bins.
pub fn interval_bin(t: i64, anchor: i64, bin: &Duration) -> Result<Bin> {
    if bin.months != 0 && bin.millis != 0 {
        return Err(AdmError::Temporal(
            "bin duration must be either calendar-only or time-only".into(),
        ));
    }
    if bin.months != 0 {
        let months = bin.months as i64;
        let (ay, am, _) = days_to_civil(anchor.div_euclid(MILLIS_PER_DAY) as i32);
        let (ty, tm, _) = days_to_civil(t.div_euclid(MILLIS_PER_DAY) as i32);
        let anchor_m = ay as i64 * 12 + am as i64 - 1;
        let t_m = ty as i64 * 12 + tm as i64 - 1;
        let idx = (t_m - anchor_m).div_euclid(months);
        let start_m = anchor_m + idx * months;
        let end_m = start_m + months;
        let to_ms = |total: i64| {
            let y = total.div_euclid(12) as i32;
            let m = (total.rem_euclid(12) + 1) as u32;
            civil_to_days(y, m, 1) as i64 * MILLIS_PER_DAY
        };
        // Month bins start at month boundaries; refine start so t >= start.
        let mut start = to_ms(start_m);
        let mut end = to_ms(end_m);
        if t < start {
            let prev = start_m - months;
            end = start;
            start = to_ms(prev);
        }
        Ok(Bin { start, end })
    } else {
        let size = bin.millis;
        if size <= 0 {
            return Err(AdmError::Temporal("bin duration must be positive".into()));
        }
        let idx = (t - anchor).div_euclid(size);
        let start = anchor + idx * size;
        Ok(Bin { start, end: start + size })
    }
}

/// All bins overlapped by the activity interval `[start, end)` — the §V-D
/// requirement that "a given user activity might span bins (so they needed to
/// allocate portions of such an activity to the relevant bins)".
pub fn overlap_bins(start: i64, end: i64, anchor: i64, bin: &Duration) -> Result<Vec<Bin>> {
    if end < start {
        return Err(AdmError::Temporal("interval end before start".into()));
    }
    let mut out = Vec::new();
    let mut b = interval_bin(start, anchor, bin)?;
    loop {
        out.push(b);
        if b.end >= end {
            break;
        }
        b = interval_bin(b.end, anchor, bin)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_epoch() {
        assert_eq!(civil_to_days(1970, 1, 1), 0);
        assert_eq!(days_to_civil(0), (1970, 1, 1));
        assert_eq!(civil_to_days(2017, 1, 1), 17167);
        for days in [-1000, -1, 0, 1, 365, 17167, 20000] {
            let (y, m, d) = days_to_civil(days);
            assert_eq!(civil_to_days(y, m, d), days);
        }
    }

    #[test]
    fn date_time_datetime_parse_format_roundtrip() {
        let d = parse_date("2017-01-20").unwrap();
        assert_eq!(format_date(d), "2017-01-20");
        let t = parse_time("13:45:30.250").unwrap();
        assert_eq!(format_time(t), "13:45:30.250");
        let dt = parse_datetime("2017-01-01T00:00:00").unwrap();
        assert_eq!(format_datetime(dt), "2017-01-01T00:00:00");
        assert_eq!(dt, 17167 * MILLIS_PER_DAY);
        assert!(parse_date("2017-02-30").is_err());
        assert!(parse_time("25:00:00").is_err());
        assert!(parse_datetime("2017-01-01 00:00:00").is_err());
    }

    #[test]
    fn duration_parse_and_display() {
        assert_eq!(Duration::parse("P30D").unwrap(), Duration::from_days(30));
        assert_eq!(
            Duration::parse("PT1H30M").unwrap(),
            Duration::from_millis(MILLIS_PER_HOUR + 30 * MILLIS_PER_MINUTE)
        );
        let d = Duration::parse("P1Y2M3DT4H5M6.789S").unwrap();
        assert_eq!(d.months, 14);
        assert_eq!(
            d.millis,
            3 * MILLIS_PER_DAY + 4 * MILLIS_PER_HOUR + 5 * MILLIS_PER_MINUTE + 6789
        );
        assert_eq!(Duration::parse("-P1D").unwrap(), Duration::from_days(-1));
        assert_eq!(format!("{}", Duration::from_days(30)), "P30D");
        // display round-trips
        for s in ["P30D", "PT1H30M", "P1Y2M3DT4H5M6.789S", "-P1D", "PT0S"] {
            let d = Duration::parse(s).unwrap();
            assert_eq!(Duration::parse(&format!("{d}")).unwrap(), d, "{s}");
        }
        assert!(Duration::parse("30D").is_err());
        assert!(Duration::parse("P").is_err());
    }

    #[test]
    fn duration_mixed_sign_extension() {
        let d = Duration { months: -1, millis: 1 };
        let s = format!("{d}");
        assert_eq!(Duration::parse(&s).unwrap(), d, "mixed-sign roundtrip via {s}");
        let e = Duration { months: 2, millis: -MILLIS_PER_HOUR };
        let s2 = format!("{e}");
        assert_eq!(Duration::parse(&s2).unwrap(), e, "{s2}");
        assert_eq!(Duration::parse("-P1M+T0.001S").unwrap(), d);
        assert!(Duration::parse("P1M+1D").is_err(), "sign must precede T");
    }

    #[test]
    fn datetime_arithmetic_month_clamp() {
        let jan31 = parse_datetime("2020-01-31T12:00:00").unwrap();
        let plus1m = datetime_add(jan31, &Duration::from_months(1));
        assert_eq!(format_datetime(plus1m), "2020-02-29T12:00:00");
        let minus30d = datetime_sub(jan31, &Duration::from_days(30));
        assert_eq!(format_datetime(minus30d), "2020-01-01T12:00:00");
    }

    #[test]
    fn interval_bin_fixed_size() {
        let anchor = parse_datetime("2020-01-01T00:00:00").unwrap();
        let hour = Duration::from_millis(MILLIS_PER_HOUR);
        let t = parse_datetime("2020-01-01T05:30:00").unwrap();
        let b = interval_bin(t, anchor, &hour).unwrap();
        assert_eq!(format_datetime(b.start), "2020-01-01T05:00:00");
        assert_eq!(format_datetime(b.end), "2020-01-01T06:00:00");
        // before the anchor
        let t2 = parse_datetime("2019-12-31T23:10:00").unwrap();
        let b2 = interval_bin(t2, anchor, &hour).unwrap();
        assert_eq!(format_datetime(b2.start), "2019-12-31T23:00:00");
    }

    #[test]
    fn interval_bin_calendar_months() {
        let anchor = parse_datetime("2020-01-01T00:00:00").unwrap();
        let month = Duration::from_months(1);
        let t = parse_datetime("2020-03-15T08:00:00").unwrap();
        let b = interval_bin(t, anchor, &month).unwrap();
        assert_eq!(format_datetime(b.start), "2020-03-01T00:00:00");
        assert_eq!(format_datetime(b.end), "2020-04-01T00:00:00");
    }

    #[test]
    fn overlap_bins_spanning_activity() {
        // The §V-D scenario: an activity spanning three hourly bins gets a
        // portion allocated to each.
        let anchor = 0;
        let hour = Duration::from_millis(MILLIS_PER_HOUR);
        let s = 30 * MILLIS_PER_MINUTE; // 00:30
        let e = 2 * MILLIS_PER_HOUR + 15 * MILLIS_PER_MINUTE; // 02:15
        let bins = overlap_bins(s, e, anchor, &hour).unwrap();
        assert_eq!(bins.len(), 3);
        assert_eq!(bins[0].overlap_with(s, e), 30 * MILLIS_PER_MINUTE);
        assert_eq!(bins[1].overlap_with(s, e), MILLIS_PER_HOUR);
        assert_eq!(bins[2].overlap_with(s, e), 15 * MILLIS_PER_MINUTE);
        let total: i64 = bins.iter().map(|b| b.overlap_with(s, e)).sum();
        assert_eq!(total, e - s, "portions must sum to the activity length");
    }

    #[test]
    fn bin_errors() {
        assert!(interval_bin(0, 0, &Duration { months: 1, millis: 5 }).is_err());
        assert!(interval_bin(0, 0, &Duration::from_millis(0)).is_err());
        assert!(overlap_bins(10, 5, 0, &Duration::from_days(1)).is_err());
    }
}
