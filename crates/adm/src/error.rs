//! Error type shared by all ADM operations.

use std::fmt;

/// Result alias used throughout the `asterix-adm` crate.
pub type Result<T> = std::result::Result<T, AdmError>;

/// Errors raised by data-model operations: parsing, serialization, typing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmError {
    /// Text parse error with byte offset and message.
    Parse { offset: usize, message: String },
    /// Binary (de)serialization error.
    Serde(String),
    /// A value did not conform to a declared type.
    Type(String),
    /// A cast between values/types is not possible.
    Cast { from: &'static str, to: String },
    /// Temporal literal/arithmetic error.
    Temporal(String),
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for AdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmError::Parse { offset, message } => {
                write!(f, "ADM parse error at byte {offset}: {message}")
            }
            AdmError::Serde(m) => write!(f, "ADM serialization error: {m}"),
            AdmError::Type(m) => write!(f, "ADM type error: {m}"),
            AdmError::Cast { from, to } => write!(f, "cannot cast {from} to {to}"),
            AdmError::Temporal(m) => write!(f, "ADM temporal error: {m}"),
            AdmError::Invalid(m) => write!(f, "invalid ADM operation: {m}"),
        }
    }
}

impl std::error::Error for AdmError {}

impl AdmError {
    /// Convenience constructor for parse errors.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        AdmError::Parse { offset, message: message.into() }
    }
}
