//! Schema-compressed record encoding.
//!
//! AsterixDB's physical record layout splits an object into a *closed part* —
//! the fields declared by the dataset's type, stored positionally without
//! their names — and an *open part* carrying any undeclared fields with
//! self-describing names (paper Section III: open types "carry additional
//! (self-describing) record content"). Declaring schema therefore buys
//! storage compactness; experiment E10 measures exactly that difference.
//!
//! Layout: `[n_declared:u16][presence bitmap][declared values...]`
//! `[n_open:u32][open name+value pairs...]`. Absent optional fields are
//! encoded as a cleared presence bit (zero bytes of payload).

use crate::binary::{encode_into, Decoder};
use crate::error::{AdmError, Result};
use crate::types::ObjectType;
use crate::value::{Object, Value};

/// Encodes an object against `ty`: declared fields positionally (no names),
/// undeclared fields self-describing. The object must already be cast to the
/// type (declared fields first, see `validate::cast_object`).
pub fn encode_with_schema(value: &Value, ty: &ObjectType) -> Result<Vec<u8>> {
    let obj = value
        .as_object()
        .ok_or_else(|| AdmError::Type(format!("expected object, got {}", value.type_name())))?;
    let mut out = Vec::with_capacity(64);
    let n = ty.fields.len();
    out.extend_from_slice(&(n as u16).to_le_bytes());
    // presence bitmap
    let mut bitmap = vec![0u8; n.div_ceil(8)];
    for (i, f) in ty.fields.iter().enumerate() {
        if obj.get(&f.name).is_some_and(|v| !v.is_missing()) {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);
    for f in &ty.fields {
        if let Some(v) = obj.get(&f.name) {
            if !v.is_missing() {
                encode_into(v, &mut out);
            }
        }
    }
    // open part
    let open: Vec<(&str, &Value)> = obj
        .iter()
        .filter(|(k, _)| ty.field(k).is_none())
        .collect();
    out.extend_from_slice(&(open.len() as u32).to_le_bytes());
    for (k, v) in open {
        out.extend_from_slice(&(k.len() as u16).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        encode_into(v, &mut out);
    }
    Ok(out)
}

/// Decodes a record produced by [`encode_with_schema`] with the same type.
pub fn decode_with_schema(buf: &[u8], ty: &ObjectType) -> Result<Value> {
    let mut d = Decoder::new(buf);
    let header = take(&mut d, buf, 2)?;
    let n = u16::from_le_bytes(header.try_into().unwrap()) as usize;
    if n != ty.fields.len() {
        return Err(AdmError::Serde(format!(
            "schema mismatch: record has {n} declared fields, type {} has {}",
            ty.name,
            ty.fields.len()
        )));
    }
    let bitmap = take(&mut d, buf, n.div_ceil(8))?.to_vec();
    let mut obj = Object::with_capacity(n);
    for (i, f) in ty.fields.iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            obj.set(f.name.clone(), d.value()?);
        }
    }
    let n_open_bytes = take(&mut d, buf, 4)?;
    let n_open = u32::from_le_bytes(n_open_bytes.try_into().unwrap()) as usize;
    for _ in 0..n_open {
        let klen_b = take(&mut d, buf, 2)?;
        let klen = u16::from_le_bytes(klen_b.try_into().unwrap()) as usize;
        let kbytes = take(&mut d, buf, klen)?;
        let key = std::str::from_utf8(kbytes)
            .map_err(|_| AdmError::Serde("invalid UTF-8 in open field name".into()))?
            .to_owned();
        obj.set(key, d.value()?);
    }
    if !d.is_done() {
        return Err(AdmError::Serde("trailing bytes after schema-encoded record".into()));
    }
    Ok(Value::Object(obj))
}

fn take<'a>(d: &mut Decoder<'a>, buf: &'a [u8], n: usize) -> Result<&'a [u8]> {
    let pos = d.position();
    if pos + n > buf.len() {
        return Err(AdmError::Serde("truncated schema-encoded record".into()));
    }
    // advance the decoder by decoding raw bytes via a side path
    let slice = &buf[pos..pos + n];
    d.skip_raw(n)?;
    Ok(slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_value;
    use crate::types::{gleambook_types, Field, ObjectType, TypeExpr, TypeRegistry};
    use crate::validate::cast_object;

    fn roundtrip(v: &Value, ty: &ObjectType) -> usize {
        let bytes = encode_with_schema(v, ty).unwrap();
        let back = decode_with_schema(&bytes, ty).unwrap();
        assert!(crate::compare::adm_eq(v, &back), "{v:?} -> {back:?}");
        bytes.len()
    }

    #[test]
    fn declared_fields_drop_names() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open(
            "T",
            vec![
                Field::required("aVeryLongFieldName", TypeExpr::named("int")),
                Field::optional("anotherVeryLongFieldName", TypeExpr::named("string")),
            ],
        ))
        .unwrap();
        let ty = reg.get("T").unwrap();
        let v = parse_value(r#"{"aVeryLongFieldName": 1, "anotherVeryLongFieldName": "x"}"#)
            .unwrap();
        let cast = cast_object(&v, ty, &reg).unwrap();
        let schema_len = roundtrip(&cast, ty);
        let plain_len = crate::binary::encode(&cast).len();
        assert!(
            schema_len < plain_len,
            "schema {schema_len} bytes vs self-describing {plain_len}"
        );
    }

    #[test]
    fn open_fields_still_roundtrip() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let v = parse_value(
            r#"{"id":1, "alias":"a", "name":"n",
                "userSince": datetime("2012-01-01T00:00:00"),
                "friendIds": {{1,2}}, "employment": [],
                "nickname": "nick", "gender": "M"}"#,
        )
        .unwrap();
        let cast = cast_object(&v, ty, &reg).unwrap();
        let n = roundtrip(&cast, ty);
        // undeclared fields cost their names inline
        let v2 = parse_value(
            r#"{"id":1, "alias":"a", "name":"n",
                "userSince": datetime("2012-01-01T00:00:00"),
                "friendIds": {{1,2}}, "employment": []}"#,
        )
        .unwrap();
        let cast2 = cast_object(&v2, ty, &reg).unwrap();
        let n2 = roundtrip(&cast2, ty);
        assert!(n > n2 + "nickname".len() + "gender".len());
    }

    #[test]
    fn absent_optional_fields_cost_one_bit() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open(
            "T",
            vec![
                Field::required("id", TypeExpr::named("int")),
                Field::optional("opt1", TypeExpr::named("string")),
                Field::optional("opt2", TypeExpr::named("string")),
            ],
        ))
        .unwrap();
        let ty = reg.get("T").unwrap();
        let v = cast_object(&parse_value(r#"{"id": 1}"#).unwrap(), ty, &reg).unwrap();
        let len = roundtrip(&v, ty);
        // header 2 + bitmap 1 + int (9) + open count 4 = 16
        assert_eq!(len, 16);
    }

    #[test]
    fn schema_mismatch_is_detected() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open("A", vec![Field::required("x", TypeExpr::named("int"))]))
            .unwrap();
        reg.define(ObjectType::open(
            "B",
            vec![
                Field::required("x", TypeExpr::named("int")),
                Field::required("y", TypeExpr::named("int")),
            ],
        ))
        .unwrap();
        let a = reg.get("A").unwrap();
        let b = reg.get("B").unwrap();
        let v = cast_object(&parse_value(r#"{"x": 1}"#).unwrap(), a, &reg).unwrap();
        let bytes = encode_with_schema(&v, a).unwrap();
        assert!(decode_with_schema(&bytes, b).is_err());
        assert!(decode_with_schema(&bytes[..3], a).is_err(), "truncated");
    }
}
