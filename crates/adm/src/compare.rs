//! Total ordering, equality, and hashing over [`Value`]s.
//!
//! Indexes, sort operators, and hash-partitioning exchanges all need a single
//! consistent comparison/hash contract:
//!
//! * a **total order** across *all* values (cross-type ordering by
//!   [`TypeTag`] ordinal, so heterogeneous keys sort deterministically);
//! * numeric comparison across `Int`/`Double` (`2 < 2.5 < 3`);
//! * a hash that agrees with equality (`hash(Int(2)) == hash(Double(2.0))`),
//!   required for hash joins and hash-partition exchanges to line up with
//!   equality predicates.
//!
//! `MISSING < NULL < everything`, matching AsterixDB's index order.

use crate::value::{TypeTag, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Compares two values under the ADM total order.
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    let (ta, tb) = (a.tag(), b.tag());
    if ta != tb {
        return ta.cmp(&tb);
    }
    match (a, b) {
        (Value::Missing, Value::Missing) | (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ if ta == TypeTag::Number => numeric_cmp(a, b),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Date(x), Value::Date(y)) => x.cmp(y),
        (Value::Time(x), Value::Time(y)) => x.cmp(y),
        (Value::DateTime(x), Value::DateTime(y)) => x.cmp(y),
        (Value::Duration(x), Value::Duration(y)) => {
            // Order by approximate total millis (month ≈ 30 days), then fields.
            let ax = x.months as i64 * 30 * crate::temporal::MILLIS_PER_DAY + x.millis;
            let bx = y.months as i64 * 30 * crate::temporal::MILLIS_PER_DAY + y.millis;
            ax.cmp(&bx).then(x.months.cmp(&y.months)).then(x.millis.cmp(&y.millis))
        }
        (Value::Point(x), Value::Point(y)) => x
            .x
            .total_cmp(&y.x)
            .then(x.y.total_cmp(&y.y)),
        (Value::Rectangle(x), Value::Rectangle(y)) => x
            .min
            .x
            .total_cmp(&y.min.x)
            .then(x.min.y.total_cmp(&y.min.y))
            .then(x.max.x.total_cmp(&y.max.x))
            .then(x.max.y.total_cmp(&y.max.y)),
        (Value::Uuid(x), Value::Uuid(y)) => x.cmp(y),
        (Value::Binary(x), Value::Binary(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) | (Value::Multiset(x), Value::Multiset(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let c = total_cmp(xa, ya);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            // Order objects by sorted (key, value) pairs so equality is
            // field-order-insensitive and the order is still total.
            let mut xs: Vec<_> = x.iter().collect();
            let mut ys: Vec<_> = y.iter().collect();
            xs.sort_by(|a, b| a.0.cmp(b.0));
            ys.sort_by(|a, b| a.0.cmp(b.0));
            for ((kx, vx), (ky, vy)) in xs.iter().zip(ys.iter()) {
                let c = kx.cmp(ky).then_with(|| total_cmp(vx, vy));
                if c != Ordering::Equal {
                    return c;
                }
            }
            xs.len().cmp(&ys.len())
        }
        _ => unreachable!("tags matched but variants did not"),
    }
}

fn numeric_cmp(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Double(x), Value::Double(y)) => x.total_cmp(y),
        (Value::Int(x), Value::Double(y)) => int_double_cmp(*x, *y),
        (Value::Double(x), Value::Int(y)) => int_double_cmp(*y, *x).reverse(),
        _ => unreachable!(),
    }
}

/// Exact Int-vs-Double comparison (no precision loss for |i| > 2^53).
fn int_double_cmp(i: i64, d: f64) -> Ordering {
    if d.is_nan() {
        // NaN sorts above all numbers under total order.
        return Ordering::Less;
    }
    if d == f64::INFINITY {
        return Ordering::Less;
    }
    if d == f64::NEG_INFINITY {
        return Ordering::Greater;
    }
    // Compare integer parts first; fall back to fractional tiebreak.
    let fi = i as f64;
    match fi.partial_cmp(&d).unwrap() {
        Ordering::Equal => {
            // fi == d under float compare; resolve exactly via truncation.
            let di = d.trunc() as i64;
            i.cmp(&di).then_with(|| {
                if d.fract() > 0.0 {
                    Ordering::Less
                } else if d.fract() < 0.0 {
                    Ordering::Greater
                } else {
                    Ordering::Equal
                }
            })
        }
        other => other,
    }
}

/// Equality under the ADM order (ties in [`total_cmp`]); `Int(2) == Double(2.0)`.
pub fn adm_eq(a: &Value, b: &Value) -> bool {
    total_cmp(a, b) == Ordering::Equal
}

/// Hashes a value consistently with [`adm_eq`]. Numbers hash via their
/// mathematical value (integral doubles hash like ints), so hash joins and
/// hash-partition exchanges agree with equality.
pub fn adm_hash<H: Hasher>(v: &Value, state: &mut H) {
    match v {
        Value::Missing => 0u8.hash(state),
        Value::Null => 1u8.hash(state),
        Value::Bool(b) => {
            2u8.hash(state);
            b.hash(state);
        }
        Value::Int(i) => {
            3u8.hash(state);
            i.hash(state);
        }
        Value::Double(d) => {
            3u8.hash(state);
            if d.fract() == 0.0 && d.abs() < 9.2e18 {
                (*d as i64).hash(state);
            } else {
                d.to_bits().hash(state);
            }
        }
        Value::String(s) => {
            4u8.hash(state);
            s.hash(state);
        }
        Value::Date(d) => {
            5u8.hash(state);
            d.hash(state);
        }
        Value::Time(t) => {
            6u8.hash(state);
            t.hash(state);
        }
        Value::DateTime(t) => {
            7u8.hash(state);
            t.hash(state);
        }
        Value::Duration(d) => {
            8u8.hash(state);
            d.hash(state);
        }
        Value::Point(p) => {
            9u8.hash(state);
            p.x.to_bits().hash(state);
            p.y.to_bits().hash(state);
        }
        Value::Rectangle(r) => {
            10u8.hash(state);
            r.min.x.to_bits().hash(state);
            r.min.y.to_bits().hash(state);
            r.max.x.to_bits().hash(state);
            r.max.y.to_bits().hash(state);
        }
        Value::Uuid(u) => {
            11u8.hash(state);
            u.hash(state);
        }
        Value::Binary(b) => {
            12u8.hash(state);
            b.hash(state);
        }
        Value::Array(items) => {
            13u8.hash(state);
            items.len().hash(state);
            for i in items {
                adm_hash(i, state);
            }
        }
        Value::Multiset(items) => {
            // Order-insensitive: XOR of element hashes, so {{1,2}} == {{2,1}}
            // hash identically (multiset equality is handled by total_cmp on
            // sorted views at higher layers; hashing stays conservative).
            14u8.hash(state);
            items.len().hash(state);
            let mut acc: u64 = 0;
            for i in items {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                adm_hash(i, &mut h);
                acc ^= h.finish();
            }
            acc.hash(state);
        }
        Value::Object(o) => {
            15u8.hash(state);
            o.len().hash(state);
            let mut acc: u64 = 0;
            for (k, v) in o.iter() {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                k.hash(&mut h);
                adm_hash(v, &mut h);
                acc ^= h.finish();
            }
            acc.hash(state);
        }
    }
}

/// One-shot 64-bit hash of a value (used for hash partitioning).
pub fn hash64(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    adm_hash(v, &mut h);
    h.finish()
}

/// Hash of a composite key (multiple values) for multi-column partitioning.
pub fn hash64_slice(vs: &[Value]) -> u64 {
    hash64_iter(vs.iter(), vs.len())
}

/// Hash of a composite key given by reference, without materializing it.
/// Produces exactly the same hash as [`hash64_slice`] over the collected
/// values, so partition routing stays consistent across both paths.
pub fn hash64_iter<'a>(vs: impl Iterator<Item = &'a Value>, len: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    len.hash(&mut h);
    for v in vs {
        adm_hash(v, &mut h);
    }
    h.finish()
}

/// A wrapper giving `Value` the `Ord`/`Hash` impls of the ADM contract, so it
/// can key `BTreeMap`/`HashMap` collections directly.
#[derive(Debug, Clone, PartialEq)]
pub struct OrdValue(pub Value);

impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> Ordering {
        total_cmp(&self.0, &other.0)
    }
}
impl Hash for OrdValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        adm_hash(&self.0, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::Point;

    #[test]
    fn hash64_iter_matches_hash64_slice() {
        let row = [
            Value::Int(42),
            Value::from("key"),
            Value::Double(2.0),
            Value::Null,
        ];
        let cols = [0usize, 2, 1];
        let key: Vec<Value> = cols.iter().map(|c| row[*c].clone()).collect();
        assert_eq!(
            hash64_slice(&key),
            hash64_iter(cols.iter().map(|c| &row[*c]), cols.len()),
            "by-reference hashing must route identically to materialized keys"
        );
    }

    #[test]
    fn cross_type_order_follows_tags() {
        let seq = [
            Value::Missing,
            Value::Null,
            Value::Bool(false),
            Value::Int(-5),
            Value::from("a"),
            Value::Date(0),
            Value::Point(Point::new(0.0, 0.0)),
            Value::Array(vec![]),
            Value::object(vec![]),
        ];
        for w in seq.windows(2) {
            assert_eq!(total_cmp(&w[0], &w[1]), Ordering::Less, "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn numeric_cross_type() {
        assert_eq!(total_cmp(&Value::Int(2), &Value::Double(2.5)), Ordering::Less);
        assert_eq!(total_cmp(&Value::Double(2.5), &Value::Int(3)), Ordering::Less);
        assert!(adm_eq(&Value::Int(2), &Value::Double(2.0)));
        assert_eq!(hash64(&Value::Int(2)), hash64(&Value::Double(2.0)));
        // Exactness near 2^53: 2^53 and 2^53+1 both round to the same double.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            total_cmp(&Value::Int(big), &Value::Double((1i64 << 53) as f64)),
            Ordering::Greater
        );
        // NaN sorts above all numbers, infinities at the ends.
        assert_eq!(total_cmp(&Value::Int(i64::MAX), &Value::Double(f64::NAN)), Ordering::Less);
        assert_eq!(
            total_cmp(&Value::Double(f64::NEG_INFINITY), &Value::Int(i64::MIN)),
            Ordering::Less
        );
    }

    #[test]
    fn array_lexicographic() {
        let a = Value::Array(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::Array(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::Array(vec![Value::Int(1)]);
        assert_eq!(total_cmp(&a, &b), Ordering::Less);
        assert_eq!(total_cmp(&c, &a), Ordering::Less, "prefix sorts first");
    }

    #[test]
    fn object_equality_field_order_insensitive() {
        let a = Value::object(vec![("x".into(), Value::Int(1)), ("y".into(), Value::Int(2))]);
        let b = Value::object(vec![("y".into(), Value::Int(2)), ("x".into(), Value::Int(1))]);
        assert!(adm_eq(&a, &b));
        assert_eq!(hash64(&a), hash64(&b));
    }

    #[test]
    fn string_order() {
        assert_eq!(total_cmp(&Value::from("abc"), &Value::from("abd")), Ordering::Less);
        assert_eq!(total_cmp(&Value::from(""), &Value::from("a")), Ordering::Less);
    }

    #[test]
    fn ord_value_in_btreemap() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(OrdValue(Value::Int(5)), "five");
        m.insert(OrdValue(Value::Int(1)), "one");
        m.insert(OrdValue(Value::from("s")), "str");
        let keys: Vec<_> = m.keys().map(|k| k.0.clone()).collect();
        assert_eq!(keys[0], Value::Int(1));
        assert_eq!(keys[1], Value::Int(5));
        assert_eq!(keys[2], Value::from("s"));
        assert_eq!(m.get(&OrdValue(Value::Double(5.0))), Some(&"five"));
    }
}
