//! Schema validation and casting of values against declared ADM types.
//!
//! On ingest (INSERT/UPSERT/LOAD), AsterixDB validates each object against the
//! dataset's declared type and *casts* it into the declared shape: declared
//! numeric fields are coerced (e.g. an integer literal into a `double` field),
//! optional fields may be absent, open types keep undeclared extras, and
//! closed types reject them.

use crate::error::{AdmError, Result};
use crate::types::{ObjectType, TypeExpr, TypeRegistry};
use crate::value::{Object, Value};

/// Validates and casts `value` against the object type `ty`, returning the
/// (possibly coerced) stored form. Declared fields are ordered first in the
/// output object, in declaration order, followed by any undeclared open
/// fields in their input order — mirroring AsterixDB's physical record layout
/// where the closed part precedes the open part.
pub fn cast_object(value: &Value, ty: &ObjectType, reg: &TypeRegistry) -> Result<Value> {
    let obj = value.as_object().ok_or_else(|| {
        AdmError::Type(format!(
            "expected an object of type {:?}, found {}",
            ty.name,
            value.type_name()
        ))
    })?;
    let mut out = Object::with_capacity(obj.len());
    for field in &ty.fields {
        match obj.get(&field.name) {
            None | Some(Value::Missing) => {
                if !field.optional {
                    return Err(AdmError::Type(format!(
                        "missing required field {:?} of type {:?}",
                        field.name, ty.name
                    )));
                }
            }
            Some(Value::Null) => {
                if !field.optional {
                    return Err(AdmError::Type(format!(
                        "null in non-optional field {:?} of type {:?}",
                        field.name, ty.name
                    )));
                }
                out.set(field.name.clone(), Value::Null);
            }
            Some(v) => {
                let cast = cast_expr(v, &field.ty, reg).map_err(|e| {
                    AdmError::Type(format!("field {:?} of {:?}: {e}", field.name, ty.name))
                })?;
                out.set(field.name.clone(), cast);
            }
        }
    }
    // Undeclared fields: kept (open) or rejected (closed).
    for (k, v) in obj.iter() {
        if ty.field(k).is_none() {
            if ty.is_open {
                if !v.is_missing() {
                    out.set(k.to_owned(), v.clone());
                }
            } else {
                return Err(AdmError::Type(format!(
                    "undeclared field {k:?} not allowed in CLOSED type {:?}",
                    ty.name
                )));
            }
        }
    }
    Ok(Value::Object(out))
}

/// Validates and casts a value against an arbitrary type expression.
pub fn cast_expr(value: &Value, ty: &TypeExpr, reg: &TypeRegistry) -> Result<Value> {
    match ty {
        TypeExpr::Named(name) => cast_named(value, name, reg),
        TypeExpr::Array(inner) => match value {
            Value::Array(items) => Ok(Value::Array(
                items
                    .iter()
                    .map(|i| cast_expr(i, inner, reg))
                    .collect::<Result<Vec<_>>>()?,
            )),
            other => Err(AdmError::Type(format!(
                "expected array of {inner}, found {}",
                other.type_name()
            ))),
        },
        TypeExpr::Multiset(inner) => match value {
            // Arrays are accepted where multisets are declared (JSON input
            // has no multiset syntax of its own).
            Value::Multiset(items) | Value::Array(items) => Ok(Value::Multiset(
                items
                    .iter()
                    .map(|i| cast_expr(i, inner, reg))
                    .collect::<Result<Vec<_>>>()?,
            )),
            other => Err(AdmError::Type(format!(
                "expected multiset of {inner}, found {}",
                other.type_name()
            ))),
        },
    }
}

fn cast_named(value: &Value, name: &str, reg: &TypeRegistry) -> Result<Value> {
    if name == "any" {
        return Ok(value.clone());
    }
    if let Some(obj_ty) = reg.get(name) {
        return cast_object(value, obj_ty, reg);
    }
    let mismatch = || AdmError::Type(format!("expected {name}, found {}", value.type_name()));
    match name {
        "boolean" => matches!(value, Value::Bool(_)).then(|| value.clone()).ok_or_else(mismatch),
        "int" | "int8" | "int16" | "int32" | "int64" => match value {
            Value::Int(_) => Ok(value.clone()),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.2e18 => Ok(Value::Int(*d as i64)),
            _ => Err(mismatch()),
        },
        "double" | "float" => match value {
            Value::Double(_) => Ok(value.clone()),
            Value::Int(i) => Ok(Value::Double(*i as f64)),
            _ => Err(mismatch()),
        },
        "string" => matches!(value, Value::String(_)).then(|| value.clone()).ok_or_else(mismatch),
        "date" => match value {
            Value::Date(_) => Ok(value.clone()),
            Value::String(s) => Ok(Value::Date(crate::temporal::parse_date(s)?)),
            _ => Err(mismatch()),
        },
        "time" => match value {
            Value::Time(_) => Ok(value.clone()),
            Value::String(s) => Ok(Value::Time(crate::temporal::parse_time(s)?)),
            _ => Err(mismatch()),
        },
        "datetime" => match value {
            Value::DateTime(_) => Ok(value.clone()),
            Value::String(s) => Ok(Value::DateTime(crate::temporal::parse_datetime(s)?)),
            _ => Err(mismatch()),
        },
        "duration" => match value {
            Value::Duration(_) => Ok(value.clone()),
            Value::String(s) => Ok(Value::Duration(crate::temporal::Duration::parse(s)?)),
            _ => Err(mismatch()),
        },
        "point" => matches!(value, Value::Point(_)).then(|| value.clone()).ok_or_else(mismatch),
        "rectangle" => {
            matches!(value, Value::Rectangle(_)).then(|| value.clone()).ok_or_else(mismatch)
        }
        "uuid" => matches!(value, Value::Uuid(_)).then(|| value.clone()).ok_or_else(mismatch),
        "binary" => matches!(value, Value::Binary(_)).then(|| value.clone()).ok_or_else(mismatch),
        other => Err(AdmError::Type(format!("unknown type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_value;
    use crate::types::{gleambook_types, Field, ObjectType};

    fn user_value() -> Value {
        parse_value(
            r#"{
                "id": 1,
                "alias": "margarita",
                "name": "Margarita Stoddard",
                "userSince": datetime("2012-08-20T10:10:00"),
                "friendIds": {{ 2, 3, 6 }},
                "employment": [{"organizationName": "Codetechno",
                                "startDate": date("2006-08-06")}]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn cast_valid_gleambook_user() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let cast = cast_object(&user_value(), ty, &reg).unwrap();
        assert_eq!(cast.field("id"), &Value::Int(1));
        assert!(matches!(cast.field("friendIds"), Value::Multiset(_)));
    }

    #[test]
    fn open_type_keeps_extra_fields() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let mut v = user_value();
        v.as_object_mut().unwrap().set("gender", Value::from("M"));
        let cast = cast_object(&v, ty, &reg).unwrap();
        assert_eq!(cast.field("gender"), &Value::from("M"), "open field survives");
    }

    #[test]
    fn closed_type_rejects_extra_fields() {
        let reg = gleambook_types();
        let ty = reg.get("AccessLogType").unwrap();
        let v = parse_value(
            r#"{"ip":"1.2.3.4","time":"t","user":"u","verb":"GET","path":"/","stat":200,"size":10,"extra":1}"#,
        )
        .unwrap();
        let err = cast_object(&v, ty, &reg).unwrap_err();
        assert!(err.to_string().contains("undeclared field"), "{err}");
    }

    #[test]
    fn missing_required_field_rejected() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let mut v = user_value();
        v.as_object_mut().unwrap().remove("alias");
        assert!(cast_object(&v, ty, &reg).is_err());
    }

    #[test]
    fn optional_field_absent_or_null() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookMessageType").unwrap();
        let v = parse_value(r#"{"messageId":1,"authorId":2,"message":"hi"}"#).unwrap();
        let cast = cast_object(&v, ty, &reg).unwrap();
        assert_eq!(cast.field("inResponseTo"), &Value::Missing);
        let v2 = parse_value(r#"{"messageId":1,"authorId":2,"message":"hi","inResponseTo":null}"#)
            .unwrap();
        let cast2 = cast_object(&v2, ty, &reg).unwrap();
        assert_eq!(cast2.field("inResponseTo"), &Value::Null);
    }

    #[test]
    fn numeric_coercion() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open(
            "T",
            vec![
                Field::required("d", TypeExpr::named("double")),
                Field::required("i", TypeExpr::named("int")),
            ],
        ))
        .unwrap();
        let v = parse_value(r#"{"d": 3, "i": 4.0}"#).unwrap();
        let cast = cast_object(&v, reg.get("T").unwrap(), &reg).unwrap();
        assert_eq!(cast.field("d"), &Value::Double(3.0));
        assert_eq!(cast.field("i"), &Value::Int(4));
        let bad = parse_value(r#"{"d": 3, "i": 4.5}"#).unwrap();
        assert!(cast_object(&bad, reg.get("T").unwrap(), &reg).is_err());
    }

    #[test]
    fn temporal_strings_coerce() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open(
            "T",
            vec![Field::required("when", TypeExpr::named("datetime"))],
        ))
        .unwrap();
        let v = parse_value(r#"{"when": "2020-05-05T12:00:00"}"#).unwrap();
        let cast = cast_object(&v, reg.get("T").unwrap(), &reg).unwrap();
        assert!(matches!(cast.field("when"), Value::DateTime(_)));
    }

    #[test]
    fn array_where_multiset_declared() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let mut v = user_value();
        v.as_object_mut()
            .unwrap()
            .set("friendIds", Value::Array(vec![Value::Int(9)]));
        let cast = cast_object(&v, ty, &reg).unwrap();
        assert_eq!(cast.field("friendIds"), &Value::Multiset(vec![Value::Int(9)]));
    }

    #[test]
    fn declared_fields_ordered_first() {
        let reg = gleambook_types();
        let ty = reg.get("GleambookUserType").unwrap();
        let mut v = user_value();
        // put an open field physically first in the input
        let mut o = Object::new();
        o.set("zzz_open", Value::Int(1));
        for (k, val) in v.as_object().unwrap().iter() {
            o.set(k.to_owned(), val.clone());
        }
        v = Value::Object(o);
        let cast = cast_object(&v, ty, &reg).unwrap();
        let first_key = cast.as_object().unwrap().keys().next().unwrap().to_owned();
        assert_eq!(first_key, "id", "declared (closed-part) fields come first");
    }
}
