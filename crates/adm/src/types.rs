//! The ADM type system: named object types with optional/open fields.
//!
//! Paper Figure 3(a) defines types like:
//!
//! ```text
//! CREATE TYPE GleambookUserType AS {        -- open by default
//!     id: int,
//!     alias: string,
//!     userSince: datetime,
//!     friendIds: {{ int }},
//!     employment: [EmploymentType]
//! };
//! CREATE TYPE AccessLogType AS CLOSED { ... };
//! ```
//!
//! "The provision of schema information is optional, so it is entirely up to
//! the definer of an application to choose what (and how much, if any) to
//! predeclare." Open types admit undeclared (self-describing) extra fields;
//! `CLOSED` types forbid them; `?` marks optional fields.

use crate::error::{AdmError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// Built-in primitive ADM type names.
pub const PRIMITIVES: &[&str] = &[
    "boolean", "int8", "int16", "int32", "int64", "int", "float", "double", "string", "date",
    "time", "datetime", "duration", "point", "rectangle", "uuid", "binary", "any",
];

/// A type expression: a named type (primitive or user-defined) possibly
/// wrapped in array `[T]` or multiset `{{T}}` constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// Reference to a primitive or user-defined named type.
    Named(String),
    /// Ordered list of `T`: `[T]`.
    Array(Box<TypeExpr>),
    /// Multiset of `T`: `{{ T }}`.
    Multiset(Box<TypeExpr>),
}

impl TypeExpr {
    /// Convenience constructor for a named type.
    pub fn named(name: impl Into<String>) -> Self {
        TypeExpr::Named(name.into())
    }

    /// The `any` type, which admits every value.
    pub fn any() -> Self {
        TypeExpr::Named("any".into())
    }
}

impl fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeExpr::Named(n) => write!(f, "{n}"),
            TypeExpr::Array(t) => write!(f, "[{t}]"),
            TypeExpr::Multiset(t) => write!(f, "{{{{{t}}}}}"),
        }
    }
}

/// One declared field of an object type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub ty: TypeExpr,
    /// Declared with `?` — the field may be absent or `null`.
    pub optional: bool,
}

impl Field {
    /// A required field.
    pub fn required(name: impl Into<String>, ty: TypeExpr) -> Self {
        Field { name: name.into(), ty, optional: false }
    }

    /// An optional (`?`) field.
    pub fn optional(name: impl Into<String>, ty: TypeExpr) -> Self {
        Field { name: name.into(), ty, optional: true }
    }
}

/// A named object type (`CREATE TYPE ... AS [CLOSED] { ... }`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectType {
    pub name: String,
    pub fields: Vec<Field>,
    /// Open types admit undeclared extra fields (the ADM default); `CLOSED`
    /// types do not.
    pub is_open: bool,
}

impl ObjectType {
    /// Creates an open object type.
    pub fn open(name: impl Into<String>, fields: Vec<Field>) -> Self {
        ObjectType { name: name.into(), fields, is_open: true }
    }

    /// Creates a closed object type.
    pub fn closed(name: impl Into<String>, fields: Vec<Field>) -> Self {
        ObjectType { name: name.into(), fields, is_open: false }
    }

    /// Looks up a declared field.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A registry of named types — the type portion of the metadata catalog.
#[derive(Debug, Clone, Default)]
pub struct TypeRegistry {
    types: BTreeMap<String, ObjectType>,
}

impl TypeRegistry {
    /// An empty registry (primitives are always implicitly present).
    pub fn new() -> Self {
        TypeRegistry::default()
    }

    /// Registers a named object type; re-registering a name is an error.
    pub fn define(&mut self, ty: ObjectType) -> Result<()> {
        if self.is_primitive(&ty.name) {
            return Err(AdmError::Type(format!(
                "cannot redefine primitive type {:?}",
                ty.name
            )));
        }
        if self.types.contains_key(&ty.name) {
            return Err(AdmError::Type(format!("type {:?} already exists", ty.name)));
        }
        self.types.insert(ty.name.clone(), ty);
        Ok(())
    }

    /// Removes a type definition.
    pub fn drop_type(&mut self, name: &str) -> Result<ObjectType> {
        self.types
            .remove(name)
            .ok_or_else(|| AdmError::Type(format!("unknown type {name:?}")))
    }

    /// Looks up a user-defined object type.
    pub fn get(&self, name: &str) -> Option<&ObjectType> {
        self.types.get(name)
    }

    /// True for the built-in primitive names.
    pub fn is_primitive(&self, name: &str) -> bool {
        PRIMITIVES.contains(&name)
    }

    /// True when `name` resolves to either a primitive or a defined type.
    pub fn resolves(&self, name: &str) -> bool {
        self.is_primitive(name) || self.types.contains_key(name)
    }

    /// Verifies that every named type referenced by `expr` resolves.
    pub fn check_expr(&self, expr: &TypeExpr) -> Result<()> {
        match expr {
            TypeExpr::Named(n) => {
                if self.resolves(n) {
                    Ok(())
                } else {
                    Err(AdmError::Type(format!("unknown type {n:?}")))
                }
            }
            TypeExpr::Array(inner) | TypeExpr::Multiset(inner) => self.check_expr(inner),
        }
    }

    /// Verifies that all field types of `ty` resolve (done at `CREATE TYPE`).
    pub fn check_object_type(&self, ty: &ObjectType) -> Result<()> {
        for f in &ty.fields {
            self.check_expr(&f.ty)?;
        }
        Ok(())
    }

    /// Iterates over defined types in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectType> {
        self.types.values()
    }
}

/// Builds the paper's Figure 3(a) types — used by examples and tests
/// throughout the workspace as the canonical schema.
pub fn gleambook_types() -> TypeRegistry {
    let mut reg = TypeRegistry::new();
    reg.define(ObjectType::open(
        "EmploymentType",
        vec![
            Field::required("organizationName", TypeExpr::named("string")),
            Field::required("startDate", TypeExpr::named("date")),
            Field::optional("endDate", TypeExpr::named("date")),
        ],
    ))
    .unwrap();
    reg.define(ObjectType::open(
        "GleambookUserType",
        vec![
            Field::required("id", TypeExpr::named("int")),
            Field::required("alias", TypeExpr::named("string")),
            Field::required("name", TypeExpr::named("string")),
            Field::required("userSince", TypeExpr::named("datetime")),
            Field::required("friendIds", TypeExpr::Multiset(Box::new(TypeExpr::named("int")))),
            Field::required(
                "employment",
                TypeExpr::Array(Box::new(TypeExpr::named("EmploymentType"))),
            ),
        ],
    ))
    .unwrap();
    reg.define(ObjectType::open(
        "GleambookMessageType",
        vec![
            Field::required("messageId", TypeExpr::named("int")),
            Field::required("authorId", TypeExpr::named("int")),
            Field::optional("inResponseTo", TypeExpr::named("int")),
            Field::optional("senderLocation", TypeExpr::named("point")),
            Field::required("message", TypeExpr::named("string")),
        ],
    ))
    .unwrap();
    reg.define(ObjectType::closed(
        "AccessLogType",
        vec![
            Field::required("ip", TypeExpr::named("string")),
            Field::required("time", TypeExpr::named("string")),
            Field::required("user", TypeExpr::named("string")),
            Field::required("verb", TypeExpr::named("string")),
            Field::required("path", TypeExpr::named("string")),
            Field::required("stat", TypeExpr::named("int32")),
            Field::required("size", TypeExpr::named("int32")),
        ],
    ))
    .unwrap();
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut reg = TypeRegistry::new();
        reg.define(ObjectType::open("T", vec![Field::required("a", TypeExpr::named("int"))]))
            .unwrap();
        assert!(reg.get("T").is_some());
        assert!(reg.resolves("T"));
        assert!(reg.resolves("int"));
        assert!(!reg.resolves("Nope"));
        assert!(reg.define(ObjectType::open("T", vec![])).is_err(), "duplicate");
        assert!(reg.define(ObjectType::open("int", vec![])).is_err(), "primitive");
        reg.drop_type("T").unwrap();
        assert!(reg.get("T").is_none());
        assert!(reg.drop_type("T").is_err());
    }

    #[test]
    fn check_expr_resolution() {
        let reg = gleambook_types();
        assert!(reg
            .check_expr(&TypeExpr::Array(Box::new(TypeExpr::named("EmploymentType"))))
            .is_ok());
        assert!(reg.check_expr(&TypeExpr::named("MysteryType")).is_err());
    }

    #[test]
    fn gleambook_schema_shape() {
        let reg = gleambook_types();
        let user = reg.get("GleambookUserType").unwrap();
        assert!(user.is_open);
        assert_eq!(user.fields.len(), 6);
        assert!(user.field("friendIds").is_some());
        let log = reg.get("AccessLogType").unwrap();
        assert!(!log.is_open, "AccessLogType is CLOSED in Figure 3(b)");
        let msg = reg.get("GleambookMessageType").unwrap();
        assert!(msg.field("inResponseTo").unwrap().optional);
        assert!(msg.field("senderLocation").unwrap().optional);
    }

    #[test]
    fn type_expr_display() {
        let t = TypeExpr::Array(Box::new(TypeExpr::named("EmploymentType")));
        assert_eq!(t.to_string(), "[EmploymentType]");
        let m = TypeExpr::Multiset(Box::new(TypeExpr::named("int")));
        assert_eq!(m.to_string(), "{{int}}");
    }
}
