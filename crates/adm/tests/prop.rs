//! Property-based tests for the ADM data model: serialization round-trips,
//! comparator laws, and key-encoding order consistency.

use asterix_adm::binary::{compare_keys, decode, encode, encode_key};
use asterix_adm::compare::{adm_eq, hash64, total_cmp, OrdValue};
use asterix_adm::parse::parse_value;
use asterix_adm::print::to_adm_string;
use asterix_adm::temporal::Duration;
use asterix_adm::{Object, Point, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Strategy generating arbitrary ADM values with bounded depth.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Missing),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles keep printing/parsing round-trips exact.
        (-1e15f64..1e15f64).prop_map(Value::Double),
        "[a-zA-Z0-9 _#é]{0,12}".prop_map(Value::String),
        (-100_000i32..100_000).prop_map(Value::Date),
        (0i32..86_400_000).prop_map(Value::Time),
        (-4_000_000_000_000i64..4_000_000_000_000).prop_map(Value::DateTime),
        ((-240i32..240), (-1_000_000i64..1_000_000))
            .prop_map(|(months, millis)| Value::Duration(Duration { months, millis })),
        ((-180.0f64..180.0), (-90.0f64..90.0))
            .prop_map(|(x, y)| Value::Point(Point::new(x, y))),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Value::Binary),
        any::<[u8; 16]>().prop_map(Value::Uuid),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Multiset),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..4)
                .prop_map(|pairs| Value::Object(Object::from_pairs(pairs))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_roundtrip(v in arb_value()) {
        let bytes = encode(&v);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(&v, &back);
    }

    #[test]
    fn text_roundtrip(v in arb_value()) {
        let text = to_adm_string(&v);
        let back = parse_value(&text).unwrap();
        // Text round-trip preserves ADM equality (objects may reorder under eq).
        prop_assert!(adm_eq(&v, &back), "{} -> {:?}", text, back);
    }

    #[test]
    fn total_order_is_antisymmetric_and_reflexive(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(total_cmp(&a, &a), Ordering::Equal);
        prop_assert_eq!(total_cmp(&a, &b), total_cmp(&b, &a).reverse());
    }

    #[test]
    fn total_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut vs = [a, b, c];
        vs.sort_by(total_cmp);
        prop_assert!(total_cmp(&vs[0], &vs[1]) != Ordering::Greater);
        prop_assert!(total_cmp(&vs[1], &vs[2]) != Ordering::Greater);
        prop_assert!(total_cmp(&vs[0], &vs[2]) != Ordering::Greater);
    }

    #[test]
    fn hash_consistent_with_equality(a in arb_value(), b in arb_value()) {
        if adm_eq(&a, &b) {
            prop_assert_eq!(hash64(&a), hash64(&b), "{:?} == {:?} must hash alike", a, b);
        }
    }

    #[test]
    fn encoded_key_order_matches_value_order(a in arb_value(), b in arb_value()) {
        let ka = encode_key(std::slice::from_ref(&a));
        let kb = encode_key(std::slice::from_ref(&b));
        prop_assert_eq!(compare_keys(&ka, &kb), total_cmp(&a, &b));
    }

    #[test]
    fn composite_key_order_is_lexicographic(
        a1 in arb_value(), a2 in arb_value(), b1 in arb_value(), b2 in arb_value()
    ) {
        let ka = encode_key(&[a1.clone(), a2.clone()]);
        let kb = encode_key(&[b1.clone(), b2.clone()]);
        let expected = total_cmp(&a1, &b1).then_with(|| total_cmp(&a2, &b2));
        prop_assert_eq!(compare_keys(&ka, &kb), expected);
    }

    #[test]
    fn ord_value_sorts_like_total_cmp(mut vs in prop::collection::vec(arb_value(), 0..16)) {
        let mut wrapped: Vec<OrdValue> = vs.iter().cloned().map(OrdValue).collect();
        wrapped.sort();
        vs.sort_by(total_cmp);
        for (w, v) in wrapped.iter().zip(vs.iter()) {
            prop_assert!(adm_eq(&w.0, v));
        }
    }
}
