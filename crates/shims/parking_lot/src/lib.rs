//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *small* slice of the parking_lot API it actually
//! uses — `Mutex`, `RwLock`, and `Condvar` with non-poisoning guards — as a
//! thin wrapper over `std::sync`. Poisoning is deliberately swallowed
//! (`PoisonError::into_inner`), matching parking_lot's semantics where a
//! panicking lock holder does not wedge every later user of the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex with the parking_lot `lock() -> guard` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Non-poisoning reader/writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable working on [`MutexGuard`]s by `&mut` reference (the
/// parking_lot calling convention).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        guard.inner = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // timeout path
        {
            let mut g = pair.0.lock();
            let r = pair.1.wait_for(&mut g, Duration::from_millis(20));
            assert!(r.timed_out());
        }
        // wake path
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let mut g = p2.0.lock();
            while !*g {
                let r = p2.1.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        thread::sleep(Duration::from_millis(30));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
