//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the slice of `crossbeam::channel` the workspace uses: MPMC
//! `bounded`/`unbounded` channels with blocking `send`/`recv`, `try_recv`,
//! disconnection semantics, and a blocking `Select` over multiple receivers.
//!
//! Implementation: one `Mutex<VecDeque>` + `Condvar` per channel for the
//! blocking send/recv paths, plus a single process-wide generation counter +
//! condvar that every state change bumps, which is what `Select` blocks on.
//! This is a simple, correct design for the executor's test-scale fan-in
//! (a few dozen channels), not a lock-free port.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    // Global "something happened on some channel" signal for Select.
    struct GlobalSignal {
        generation: Mutex<u64>,
        cv: Condvar,
    }

    fn global() -> &'static GlobalSignal {
        static SIGNAL: OnceLock<GlobalSignal> = OnceLock::new();
        SIGNAL.get_or_init(|| GlobalSignal {
            generation: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn bump_global() {
        let g = global();
        let mut gen = g.generation.lock().unwrap_or_else(PoisonError::into_inner);
        *gen = gen.wrapping_add(1);
        g.cv.notify_all();
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`]; both variants hand the
    /// unsent message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates a channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Blocking send; fails only when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c.max(1));
                if !full {
                    st.queue.push_back(value);
                    self.0.cv.notify_all();
                    drop(st);
                    bump_global();
                    return Ok(());
                }
                st = self.0.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Send that gives up after `timeout`, handing the message back.
        /// Cancellation-aware callers loop on `Timeout`, polling their
        /// token between attempts, so a producer never blocks forever on a
        /// full channel whose consumer died or stalled.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c.max(1));
                if !full {
                    st.queue.push_back(value);
                    self.0.cv.notify_all();
                    drop(st);
                    bump_global();
                    return Ok(());
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (g, _) = self
                    .0
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.cv.notify_all();
                drop(st);
                bump_global();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; fails when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.cv.notify_all(); // free capacity for blocked senders
                    drop(st);
                    bump_global();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive that gives up after `timeout`. Queued messages are
        /// always drained before `Disconnected` is reported, matching
        /// `recv`/`try_recv`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.cv.notify_all();
                    drop(st);
                    bump_global();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .0
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                self.0.cv.notify_all();
                drop(st);
                bump_global();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Non-blocking drain: yields queued messages until the channel is
        /// empty or disconnected, never waiting.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Number of queued messages (diagnostics).
        pub fn len(&self) -> usize {
            self.0.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn ready(&self) -> bool {
            let st = self.0.lock();
            !st.queue.is_empty() || st.senders == 0
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.cv.notify_all();
                drop(st);
                bump_global();
            }
        }
    }

    // -- Select ----------------------------------------------------------

    trait Probe {
        /// True when a `recv` on this receiver would not block (a message is
        /// queued, or the channel is disconnected).
        fn probe_ready(&self) -> bool;
    }

    impl<T> Probe for Receiver<T> {
        fn probe_ready(&self) -> bool {
            self.ready()
        }
    }

    /// Blocking readiness selection over registered receive operations.
    pub struct Select<'a> {
        probes: Vec<&'a dyn Probe>,
    }

    /// A ready operation returned by [`Select::select`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl SelectedOperation {
        /// Index of the ready operation, in registration order.
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the operation on the receiver it was registered with.
        pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
            r.recv()
        }
    }

    impl<'a> Select<'a> {
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Select { probes: Vec::new() }
        }

        /// Registers a receive operation; returns its index.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.probes.push(r);
            self.probes.len() - 1
        }

        /// Blocks until some registered operation is ready.
        pub fn select(&mut self) -> SelectedOperation {
            assert!(!self.probes.is_empty(), "select with no operations");
            let g = global();
            let mut gen = g.generation.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Probe while holding the generation lock: a state change
                // between probe and wait would bump the generation and the
                // timed wait below re-probes anyway.
                for (i, p) in self.probes.iter().enumerate() {
                    if p.probe_ready() {
                        return SelectedOperation { index: i };
                    }
                }
                let seen = *gen;
                while *gen == seen {
                    let (g2, timeout) = g
                        .cv
                        .wait_timeout(gen, Duration::from_millis(5))
                        .unwrap_or_else(PoisonError::into_inner);
                    gen = g2;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
        }

        /// Like [`Select::select`], but gives up after `timeout` so callers
        /// can interleave readiness waits with cancellation polls.
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation, SelectTimeoutError> {
            assert!(!self.probes.is_empty(), "select with no operations");
            let deadline = std::time::Instant::now() + timeout;
            let g = global();
            let mut gen = g.generation.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                for (i, p) in self.probes.iter().enumerate() {
                    if p.probe_ready() {
                        return Ok(SelectedOperation { index: i });
                    }
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(SelectTimeoutError);
                }
                let step = (deadline - now).min(Duration::from_millis(5));
                let (g2, _) = g
                    .cv
                    .wait_timeout(gen, step)
                    .unwrap_or_else(PoisonError::into_inner);
                gen = g2;
            }
        }
    }

    /// Error returned by [`Select::select_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SelectTimeoutError;

    impl fmt::Display for SelectTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "timed out waiting for a ready operation")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn bounded_send_recv_fifo() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn bounded_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

        let (tx2, rx2) = unbounded::<i32>();
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Empty));
        drop(rx2);
        assert!(tx2.send(9).is_err());
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx1, rx1) = bounded::<i32>(2);
        let (tx2, rx2) = bounded::<i32>(2);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx2.send(7).unwrap();
            thread::sleep(Duration::from_millis(30));
            tx1.send(8).unwrap();
        });
        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), 1);
        assert_eq!(op.recv(&rx2).unwrap(), 7);

        let mut sel = Select::new();
        sel.recv(&rx1);
        sel.recv(&rx2);
        let op = sel.select();
        assert_eq!(op.index(), 0);
        assert_eq!(op.recv(&rx1).unwrap(), 8);
        h.join().unwrap();
    }

    #[test]
    fn select_sees_disconnection() {
        let (tx, rx) = bounded::<i32>(1);
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let mut sel = Select::new();
        sel.recv(&rx);
        let op = sel.select();
        assert!(op.recv(&rx).is_err());
        h.join().unwrap();
    }

    #[test]
    fn send_timeout_full_then_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 2, "message handed back"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.send_timeout(2, Duration::from_millis(10)).unwrap();
        drop(rx);
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(10)),
            Err(SendTimeoutError::Disconnected(3))
        ));
    }

    #[test]
    fn recv_timeout_drains_before_disconnect() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_timeout_expires_and_recovers() {
        let (tx, rx) = bounded::<i32>(1);
        let mut sel = Select::new();
        sel.recv(&rx);
        assert!(sel.select_timeout(Duration::from_millis(10)).is_err());
        tx.send(4).unwrap();
        let op = sel.select_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(op.index(), 0);
        assert_eq!(op.recv(&rx).unwrap(), 4);
    }

    #[test]
    fn mpmc_many_producers_consumers() {
        let (tx, rx) = bounded::<usize>(8);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut n = 0usize;
                while rx.recv().is_ok() {
                    n += 1;
                }
                n
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
