//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements a
//! small deterministic property-testing engine with the API subset the
//! workspace's test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `boxed`,
//! * `any::<T>()`, ranges, `Just`, tuples, `&str` character-class patterns,
//! * `prop::collection::{vec, btree_set}`,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Differences from upstream: no shrinking (a failing case reports its test
//! name, case index, and seed — the run is fully deterministic, so that
//! triple reproduces it exactly), and value streams differ from upstream's.
//! Case counts honor `PROPTEST_CASES` (raises explicit `with_cases` values,
//! never lowers them) and `PROPTEST_SEED` reseeds the whole run.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic xoshiro256** RNG driving all generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [splitmix(&mut sm), splitmix(&mut sm), splitmix(&mut sm), splitmix(&mut sm)],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform usize in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a of a test path — the per-test base seed.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the deterministic RNG for one named test, honoring `PROPTEST_SEED`.
pub fn rng_for_test(test_path: &str) -> (TestRng, u64) {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x5eed_0000_0000_0000);
    let seed = base ^ fnv1a64(test_path);
    (TestRng::seed_from_u64(seed), seed)
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Run configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok())
}

impl ProptestConfig {
    /// Explicit case count; `PROPTEST_CASES` can raise (but not lower) it so
    /// nightly jobs can deepen every suite at once.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: env_cases().map_or(cases, |e| e.max(cases)) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(64) }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A reproducible generator of values of one type.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is a pure
/// function of the RNG stream.
pub trait Strategy: Clone + 'static {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| f(s.generate(rng))))
    }

    /// Builds recursive values: `recurse` receives a strategy for the
    /// current level and returns the next level; each level is a coin flip
    /// between recursing and the leaf, to `depth` levels.
    fn prop_recursive<B, F>(self, depth: u32, _desired_size: u32, _expected_branch: u32, recurse: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        B: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> B + 'static,
    {
        let leaf = self.clone().boxed();
        let mut cur = self.boxed();
        for _ in 0..depth.max(1) {
            let expanded = recurse(cur).boxed();
            cur = union(vec![leaf.clone(), expanded]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among equally-weighted boxed alternatives
/// (the engine behind [`prop_oneof!`]).
pub fn union<T: 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let i = rng.below(arms.len());
        arms[i].generate(rng)
    }))
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- string patterns ------------------------------------------------------

/// `&str` strategies support the character-class pattern subset the test
/// suites use: `[class]{lo,hi}` (e.g. `"[a-zA-Z0-9 _#é]{0,12}"`), where the
/// class lists literal characters and `a-z` ranges. A bare literal string
/// with no class generates itself.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    if chars.first() != Some(&'[') {
        return pattern.to_string(); // literal
    }
    let close = chars
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: missing ']'"));
    // expand the class into a choice alphabet
    let mut alphabet: Vec<char> = Vec::new();
    let class = &chars[1..close];
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            assert!(lo <= hi, "bad class range in {pattern:?}");
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    alphabet.push(c);
                }
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty class in {pattern:?}");
    // parse the {lo,hi} repetition (default: exactly one)
    let rest: String = chars[close + 1..].iter().collect();
    let (lo, hi) = parse_repetition(&rest, pattern);
    let n = lo + rng.below(hi - lo + 1);
    (0..n).map(|_| alphabet[rng.below(alphabet.len())]).collect()
}

fn parse_repetition(rest: &str, pattern: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported pattern {pattern:?}: trailing {rest:?}"));
    match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
            hi.trim().parse().unwrap_or_else(|_| panic!("bad repetition in {pattern:?}")),
        ),
        None => {
            let n = inner.trim().parse().unwrap_or_else(|_| panic!("bad repetition in {pattern:?}"));
            (n, n)
        }
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---- any ------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite doubles over a wide range
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.next_u64() % 613) as i32 - 306;
        m * 10f64.powi(e)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

// ---- collections ----------------------------------------------------------

/// Size specifications accepted by the collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let n = size.lo + rng.below(size.hi - size.lo + 1);
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }

    /// `BTreeSet` with a size in `size` (element collisions are retried a
    /// bounded number of times, so the lower bound is best-effort when the
    /// element domain is small).
    pub fn btree_set<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<BTreeSet<S::Value>>
    where
        S::Value: Ord + 'static,
    {
        let size = size.into();
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
            let target = size.lo + rng.below(size.hi - size.lo + 1);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(element.generate(rng));
                attempts += 1;
            }
            out
        }))
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Chooses uniformly among the listed strategies (all must share one value
/// type). Weighted arms (`w => strat`) are accepted and the weight ignored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The test-harness macro: declares `#[test]` functions whose arguments are
/// drawn from strategies, re-running each body `config.cases` times with a
/// deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                let (mut rng, seed) = $crate::rng_for_test(test_path);
                for case in 0..config.cases {
                    // Pre-generate inputs so a panicking body cannot skew
                    // the stream of later cases relative to a passing run.
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (seed {:#x}); \
                             the run is deterministic — rerun to reproduce",
                            test_path, case + 1, config.cases, seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Upstream-style `prop::` namespace.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_name_same_stream() {
        let (mut a, sa) = crate::rng_for_test("x::y");
        let (mut b, sb) = crate::rng_for_test("x::y");
        assert_eq!(sa, sb);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let (mut c, sc) = crate::rng_for_test("x::z");
        assert_ne!(sa, sc);
        let _ = c.next_u64();
    }

    #[test]
    fn ranges_in_bounds() {
        let (mut rng, _) = crate::rng_for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = Strategy::generate(&(3u8..=7), &mut rng);
            assert!((3..=7).contains(&u));
        }
    }

    #[test]
    fn pattern_strategy_obeys_class_and_len() {
        let (mut rng, _) = crate::rng_for_test("pattern");
        for _ in 0..500 {
            let s = Strategy::generate(&"[a-c9é]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '9' | 'é')), "{s:?}");
        }
    }

    #[test]
    fn collections_and_tuples() {
        let (mut rng, _) = crate::rng_for_test("coll");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec((0u8..4, -2i64..2), 1..6), &mut rng);
            assert!((1..=5).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0i64..100, 5..10), &mut rng);
            assert!(s.len() >= 5 && s.len() <= 9);
            let exact = Strategy::generate(&prop::collection::vec(0i32..9, 7), &mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!((0..20).contains(v), "leaf out of strategy range: {v}");
                    1
                }
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = prop_oneof![
            (0i64..10).prop_map(T::Leaf),
            (10i64..20).prop_map(T::Leaf),
        ]
        .prop_recursive(3, 8, 2, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let (mut rng, _) = crate::rng_for_test("rec");
        for _ in 0..300 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(-100i64..100, 0..20),
                            k in 1i64..5) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            let scaled: Vec<i64> = xs.iter().map(|x| x * k).collect();
            prop_assert_eq!(scaled.len(), xs.len(), "k = {}", k);
        }
    }
}
