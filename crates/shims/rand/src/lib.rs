//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! API surface the workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, `RngCore`, and the `StdRng` /
//! `SmallRng` types. Both RNGs are xoshiro256** seeded through SplitMix64 —
//! deterministic, high-quality, and identical across platforms, which is
//! exactly what the fault-injection layer's replayable schedules need.
//! Statistical equivalence with upstream `rand` streams is NOT provided (and
//! nothing in the workspace depends on upstream's exact streams).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64-bit outputs.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named RNG types.
pub mod rngs {
    use super::*;

    /// The "standard" RNG (here: xoshiro256**; upstream uses ChaCha12).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(pub(crate) Xoshiro256);

    /// The "small fast" RNG (identical core in this shim).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Uniform f64 in [0, 1) from the top 53 bits of a u64.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types uniformly samplable from a range. Mirrors upstream's single generic
/// `SampleRange` impl so integer-literal ranges infer their type from the
/// surrounding expression (e.g. `rng.gen_range(0..10) * some_i64`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        // p = 0.5 lands near half
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
