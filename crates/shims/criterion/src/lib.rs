//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! API subset the bench suite uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! It is a wall-clock timer, not a statistical harness: each benchmark runs
//! `sample_size` timed batches after a short warmup and reports the mean and
//! min per-iteration time. Because benchmark binaries are built (and, with
//! `--benches`, run) by CI, the default entry point executes quickly; set
//! `CRITERION_SAMPLES` to raise sampling for a real measurement session.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level handle passed to every registered bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: default_samples(),
            _criterion: self,
        }
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample count; this shim runs that many timed batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // An env override wins so CI can pin every bench to a quick pass.
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warmup batch: lets lazy setup inside the closure settle.
        f(&mut b);

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iters_done: u64 = 0;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            let per_iter = b.elapsed / b.iters.max(1) as u32;
            best = best.min(per_iter);
            total += b.elapsed;
            iters_done += b.iters as u64;
        }
        let mean = if iters_done > 0 {
            total / iters_done as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {}/{:<32} mean {:>12?}  min {:>12?}  ({} samples)",
            self.name, id, mean, best, self.sample_size
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; times the supplied closure.
pub struct Bencher {
    iters: usize,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: `criterion_group!(benches, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = <$crate::Criterion as ::std::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_function(format!("sum_{}", 2), |b| {
            b.iter(|| (0..200u64).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(selftest, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        selftest();
    }
}
