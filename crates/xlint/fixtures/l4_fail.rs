// Fixture: cross-crate caller unwrapping a storage Result API.
pub fn caller(store: &impl Frob) -> u32 {
    store.frobnicate().unwrap()
}

pub trait Frob {
    fn frobnicate(&self) -> Result<u32, String>;
}
