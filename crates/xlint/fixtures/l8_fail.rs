//! L8 failing fixture: a counter registered into a struct field but never
//! incremented anywhere, and a snapshot read of a name nobody registers.

pub fn build(reg: &Registry) -> Metrics {
    Metrics {
        lost: reg.counter("sqlpp.compile.lost"),
    }
}

pub fn report(snapshot: &Snapshot) -> u64 {
    snapshot.counter("sqlpp.compile.misspelled").unwrap_or(0)
}
