// Fixture: clean error propagation — no panic-path tokens outside tests.
pub fn lookup(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}

pub fn chained(v: Option<u32>) -> Result<u32, String> {
    Ok(lookup(v)? + 1)
}
