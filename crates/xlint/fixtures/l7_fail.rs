//! L7 failing fixture: Relaxed in a consumed RMW, a single-line CAS, and a
//! multi-line CAS — all unannotated. The discarded counter bump at the end
//! must NOT be flagged.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn next_id(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn cas_state(s: &AtomicU64) -> bool {
    s.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}

pub fn cas_multiline(s: &AtomicU64) -> bool {
    s.compare_exchange(
        0,
        1,
        Ordering::AcqRel,
        Ordering::Relaxed,
    )
    .is_ok()
}

pub fn bump_stat(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
