//! L7 passing fixture: the consumed RMW carries an ordering annotation, the
//! CAS uses AcqRel/Acquire, and the discarded bump needs nothing.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn next_id(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) // xlint: ordering(fixture: id allocation needs atomicity only)
}

pub fn cas_state(s: &AtomicU64) -> bool {
    s.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
}

pub fn bump_stat(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
