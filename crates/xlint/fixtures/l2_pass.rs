#![forbid(unsafe_code)]
// Fixture: a crate root carrying the mandatory forbid attribute.
pub mod something;

pub fn entry() {}
