//! L6 passing fixture: named guards held for the protected region, a drop
//! after the last protected use, and a suppressed deliberate poison probe.

pub fn named_guard(s: &Shared) {
    let _g = s.m.lock();
    s.bump();
}

pub fn drop_after_last_use(s: &Shared) {
    let g = s.m.lock();
    g.bump();
    drop(g);
    log_done();
}

pub fn poison_probe(s: &Shared) {
    let _ = s.m.lock(); // xlint: allow(guard_drop, "fixture: poison check only, nothing protected")
}
