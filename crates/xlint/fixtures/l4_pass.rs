// Fixture: cross-crate caller propagating a storage Result API.
pub fn caller(store: &impl Frob) -> Result<u32, String> {
    store.frobnicate()
}

pub trait Frob {
    fn frobnicate(&self) -> Result<u32, String>;
}
