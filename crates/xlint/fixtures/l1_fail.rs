// Fixture: every L1 panic-path token in non-test code, plus one suppression
// and one #[cfg(test)] block that must NOT be flagged.
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, String>) -> String {
    m.get(&1).unwrap().clone()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("fixture")
}

pub fn boom() {
    panic!("fixture");
}

pub fn never() -> u32 {
    unreachable!()
}

pub fn allowed(v: Option<u32>) -> u32 {
    v.unwrap() // xlint: allow(panic, "fixture suppression")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let _ = Some(1u32).unwrap();
    }
}
