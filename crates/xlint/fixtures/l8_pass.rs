//! L8 passing fixture: the registered handle is incremented, the read name
//! resolves, and the alias-incremented registration carries a suppression.

pub fn build(reg: &Registry) -> Metrics {
    let compiled = reg.counter("sqlpp.compile.ok");
    compiled.inc();
    Metrics { compiled }
}

pub fn report(snapshot: &Snapshot) -> u64 {
    snapshot.counter("sqlpp.compile.ok").unwrap_or(0)
}

pub fn build_shadow(reg: &Registry) -> Counter {
    reg.counter("sqlpp.compile.shadow") // xlint: allow(metric, "fixture: incremented via a cloned alias")
}
