//! L5 passing fixture: every blocking path carries a reasoned suppression —
//! one at the site, one marking a whole function an audited boundary.

pub fn step(h: &Hub) { // xlint: actor_entry
    route_frames(h);
    audited_io(h);
}

fn route_frames(h: &Hub) {
    let _msg = h.rx.recv(); // xlint: allow(blocking, "fixture: bounded teardown drain")
}

fn audited_io(h: &Hub) { // xlint: allow(blocking, "fixture: audited boundary, body not walked")
    std::thread::sleep(h.pause);
}
