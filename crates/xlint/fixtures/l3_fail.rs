// Fixture: annotated nested acquisition AGAINST the declared order
// (cache_shard is rank 3, catalog is rank 0).
use parking_lot::RwLock;

pub fn inverted(shard: &RwLock<u32>, cat: &RwLock<u32>) -> u32 {
    let s = shard.read(); // xlint: lock(cache_shard)
    let c = cat.read(); // xlint: lock(catalog)
    *s + *c
}
