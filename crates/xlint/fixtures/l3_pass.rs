// Fixture: annotated nested acquisition in declared order
// (catalog rank 0 before wal rank 4).
use parking_lot::{Mutex, RwLock};

pub fn ordered(cat: &RwLock<u32>, wal: &Mutex<u32>) -> u32 {
    let c = cat.read(); // xlint: lock(catalog)
    let w = wal.lock(); // xlint: lock(wal)
    *c + *w
}
