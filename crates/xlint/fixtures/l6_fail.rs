//! L6 failing fixture: all three guard-drop shapes.

pub fn hold_nothing(s: &Shared) {
    let _ = s.m.lock();
    s.bump();
}

pub fn bare_statement(s: &Shared) {
    s.m.lock();
    s.bump();
}

pub fn early_drop(s: &Shared) {
    let g = s.m.lock();
    drop(g);
    s.m.set(1);
}

pub fn dropped_ticket(s: &Shared) {
    let _ = s.gate.admit(1);
    s.bump();
}
