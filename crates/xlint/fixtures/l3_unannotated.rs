// Fixture: nested acquisition with no annotations — flagged as such.
use parking_lot::RwLock;

pub fn nested(a: &RwLock<u32>, b: &RwLock<u32>) -> u32 {
    let x = a.read();
    let y = b.read();
    *x + *y
}
