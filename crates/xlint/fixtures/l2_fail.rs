// Fixture: a crate root missing #![forbid(unsafe_code)].
pub mod something;

pub fn entry() {}
