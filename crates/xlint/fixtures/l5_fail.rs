//! L5 failing fixture: the entry point never blocks directly, but a helper
//! two hops down calls `recv()` — the reachability walk must still find it.

pub fn step(h: &Hub) { // xlint: actor_entry
    route_frames(h);
}

fn route_frames(h: &Hub) {
    drain_input(h);
}

fn drain_input(h: &Hub) {
    let _msg = h.rx.recv();
}
