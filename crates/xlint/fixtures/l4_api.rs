// Fixture: a storage-crate pub API returning Result.
pub fn frobnicate() -> Result<u32, String> {
    Ok(7)
}
