#![forbid(unsafe_code)]
//! `xlint` — workspace-wide correctness lints for asterix-rs.
//!
//! A self-contained static-analysis pass (no dependencies, hand-rolled like
//! the `crates/shims/` pattern) enforcing the project rules documented in
//! DESIGN.md "Correctness tooling":
//!
//! * **L1** (`panic`) — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` in non-test code of `storage`/`core`/`hyracks`/
//!   `algebricks`. Suppress per line with `// xlint: allow(panic, "why")`.
//! * **L2** (`unsafe`) — `#![forbid(unsafe_code)]` in every non-shim crate
//!   root.
//! * **L3** (`lock_order`) — static lock-acquisition graph from
//!   `// xlint: lock(<name>)` annotations plus heuristic nested
//!   `.lock()`/`.read()`/`.write()` detection; inversions against the
//!   declared order and cycles fail.
//! * **L4** (`cross_unwrap`) — `Result`-returning `pub fn`s of
//!   `crates/storage` and `crates/core` must not be `.unwrap()`ed from
//!   another crate.
//! * **L5** (`blocking`) — no blocking primitive (channel recv/send,
//!   condvar wait, sleep, join, file I/O) reachable through the call graph
//!   from an `// xlint: actor_entry` function. Suppress with
//!   `// xlint: allow(blocking, "why")` on the site, or on a `fn` line to
//!   mark a whole function an audited boundary.
//! * **L6** (`guard_drop`) — no immediately-dropped (`let _ =` / bare
//!   statement) or prematurely-`drop()`ed lock/admission guards.
//! * **L7** (`atomic_ordering`) — `Ordering::Relaxed` in a CAS or a
//!   consumed RMW needs an `// xlint: ordering(<why>)` annotation.
//! * **L8** (`metric`) — metric names read or documented must be
//!   registered; registered handles must be incremented.
//!
//! Usage: `cargo run -p xlint -- [--root DIR] [--deny-all]
//! [--baseline FILE] [--update-baseline] [--write-baseline FILE]`

mod baseline;
mod callgraph;
#[cfg(test)]
mod fixture_tests;
mod lexer;
mod rules;

use std::path::PathBuf;
use std::process::ExitCode;

/// Documents cross-checked by the L8 metric pass when present under the
/// root.
const DOC_FILES: [&str; 2] = ["DESIGN.md", "README.md"];

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| ".".into())),
            "--deny-all" => deny_all = true,
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--update-baseline" => update_baseline = true,
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "xlint: asterix-rs workspace lints (L1 panic-path, L2 unsafe, \
                     L3 lock-order, L4 cross-crate unwrap, L5 blocking-in-actor, \
                     L6 guard-drop, L7 atomic-ordering, L8 metric hygiene)\n\n\
                     options:\n  --root DIR             workspace root (default .)\n  \
                     --deny-all             exit nonzero on any violation\n  \
                     --baseline FILE        fail on suppressions not fingerprinted in FILE\n  \
                     --update-baseline      rewrite the baseline (default xlint-baseline.json)\n  \
                     --write-baseline FILE  record current suppression fingerprints to FILE"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let files = match rules::discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("xlint: no .rs files under {}", root.display());
        return ExitCode::from(2);
    }
    let docs: Vec<(PathBuf, String)> = DOC_FILES
        .iter()
        .filter_map(|d| {
            std::fs::read_to_string(root.join(d)).ok().map(|t| (PathBuf::from(d), t))
        })
        .collect();
    let rep = rules::check_with_docs(&files, &docs);

    println!("xlint: checked {} files, {} lines", rep.files_checked, rep.lines_checked);

    if !rep.lock_edges.is_empty() {
        println!("\nstatic lock-acquisition edges (held -> acquired):");
        for ((h, n), (p, l)) in &rep.lock_edges {
            println!("  {h} -> {n}    [{}:{l}]", p.display());
        }
    }

    if !rep.suppressions.is_empty() {
        println!("\nsuppressions: {} total", rep.suppressions.len());
        for (rule, n) in &rep.suppression_counts() {
            println!("  allow({rule}): {n}");
        }
        for s in &rep.suppressions {
            println!("  {}:{}: allow({}) — \"{}\"", s.path.display(), s.line, s.rule_name, s.reason);
        }
    }

    if !rep.violations.is_empty() {
        println!("\nviolations: {}", rep.violations.len());
        for v in &rep.violations {
            println!("  [{}] {}:{}: {}", v.rule.name(), v.path.display(), v.line, v.message);
        }
    }

    let live = baseline::Baseline::from_suppressions(&rep.suppressions);

    if update_baseline || write_baseline.is_some() {
        let p = write_baseline
            .unwrap_or_else(|| baseline_path.clone().unwrap_or_else(|| root.join("xlint-baseline.json")));
        if let Err(e) = live.write(&p) {
            eprintln!("xlint: cannot write baseline {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!("\nbaseline written to {} ({} suppressions)", p.display(), live.entries.len());
    }

    let mut failed = false;
    if let Some(p) = baseline_path {
        match baseline::Baseline::read(&p) {
            Ok(base) => {
                let (unbaselined, stale) = base.diff(&live.entries);
                if !unbaselined.is_empty() {
                    println!(
                        "\nbaseline: {} suppression(s) not fingerprinted in {} \
                         (update deliberately with --update-baseline if intended):",
                        unbaselined.len(),
                        p.display()
                    );
                    for e in &unbaselined {
                        println!("  allow({}) in {} [{}]", e.rule, e.file, e.hash);
                    }
                    failed = true;
                }
                if !stale.is_empty() {
                    println!("\nbaseline: {} stale entr(ies) no longer live:", stale.len());
                    for e in &stale {
                        println!("  allow({}) in {} [{}]", e.rule, e.file, e.hash);
                    }
                }
            }
            Err(e) => {
                eprintln!("xlint: cannot read baseline {}: {e}", p.display());
                failed = true;
            }
        }
    }

    if deny_all && !rep.violations.is_empty() {
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("\nxlint: OK");
        ExitCode::SUCCESS
    }
}
