#![forbid(unsafe_code)]
//! `xlint` — workspace-wide correctness lints for asterix-rs.
//!
//! A self-contained static-analysis pass (no dependencies, hand-rolled like
//! the `crates/shims/` pattern) enforcing the project rules documented in
//! DESIGN.md "Correctness tooling":
//!
//! * **L1** (`panic`) — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` in non-test code of `storage`/`core`/`hyracks`/
//!   `algebricks`. Suppress per line with `// xlint: allow(panic, "why")`.
//! * **L2** (`unsafe`) — `#![forbid(unsafe_code)]` in every non-shim crate
//!   root.
//! * **L3** (`lock_order`) — static lock-acquisition graph from
//!   `// xlint: lock(<name>)` annotations plus heuristic nested
//!   `.lock()`/`.read()`/`.write()` detection; inversions against the
//!   declared order and cycles fail.
//! * **L4** (`cross_unwrap`) — `Result`-returning `pub fn`s of
//!   `crates/storage` and `crates/core` must not be `.unwrap()`ed from
//!   another crate.
//!
//! Usage: `cargo run -p xlint -- [--root DIR] [--deny-all]
//! [--baseline FILE] [--write-baseline FILE]`

mod baseline;
#[cfg(test)]
mod fixture_tests;
mod lexer;
mod rules;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().unwrap_or_else(|| ".".into())),
            "--deny-all" => deny_all = true,
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "xlint: asterix-rs workspace lints (L1 panic-path, L2 unsafe, \
                     L3 lock-order, L4 cross-crate unwrap)\n\n\
                     options:\n  --root DIR             workspace root (default .)\n  \
                     --deny-all             exit nonzero on any violation\n  \
                     --baseline FILE        fail if suppression counts grew vs FILE\n  \
                     --write-baseline FILE  record current suppression counts"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let files = match rules::discover(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!("xlint: no .rs files under {}", root.display());
        return ExitCode::from(2);
    }
    let rep = rules::check(&files);

    println!("xlint: checked {} files, {} lines", rep.files_checked, rep.lines_checked);

    if !rep.lock_edges.is_empty() {
        println!("\nstatic lock-acquisition edges (held -> acquired):");
        for ((h, n), (p, l)) in &rep.lock_edges {
            println!("  {h} -> {n}    [{}:{l}]", p.display());
        }
    }

    let counts = rep.suppression_counts();
    if !rep.suppressions.is_empty() {
        println!("\nsuppressions: {} total", rep.suppressions.len());
        for (rule, n) in &counts {
            println!("  allow({rule}): {n}");
        }
        for s in &rep.suppressions {
            println!("  {}:{}: allow({}) — \"{}\"", s.path.display(), s.line, s.rule_name, s.reason);
        }
    }

    if !rep.violations.is_empty() {
        println!("\nviolations: {}", rep.violations.len());
        for v in &rep.violations {
            println!("  [{}] {}:{}: {}", v.rule.name(), v.path.display(), v.line, v.message);
        }
    }

    if let Some(p) = write_baseline {
        let b = baseline::Baseline { suppressions: counts.clone() };
        if let Err(e) = b.write(&p) {
            eprintln!("xlint: cannot write baseline {}: {e}", p.display());
            return ExitCode::from(2);
        }
        println!("\nbaseline written to {}", p.display());
    }

    let mut failed = false;
    if let Some(p) = baseline_path {
        match baseline::Baseline::read(&p) {
            Ok(base) => {
                for (rule, n) in &counts {
                    let allowed = base.suppressions.get(rule).copied().unwrap_or(0);
                    if *n > allowed {
                        println!(
                            "\nbaseline: allow({rule}) count grew: {n} > {allowed} \
                             (update {} deliberately if this is intended)",
                            p.display()
                        );
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("xlint: cannot read baseline {}: {e}", p.display());
                failed = true;
            }
        }
    }

    if deny_all && !rep.violations.is_empty() {
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("\nxlint: OK");
        ExitCode::SUCCESS
    }
}
