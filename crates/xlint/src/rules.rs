//! The four lint rules (L1–L4), the suppression/annotation directives, and
//! the declared lock order.
//!
//! Rules operate on [`crate::lexer::MaskedFile`]s, so substring matches
//! cannot be fooled by comments or string literals. See DESIGN.md
//! "Correctness tooling" for the rule catalogue and suppression syntax.

use crate::lexer::{mask, MaskedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// The canonical lock order. Acquiring left-to-right is legal; any edge that
/// goes right-to-left is an inversion. Must match
/// `asterix_storage::lock_order::LEVELS`.
pub const LOCK_ORDER: [&str; 7] = [
    "scheduler",
    "catalog",
    "lock_manager",
    "lsm_component",
    "cache_inflight",
    "cache_shard",
    "wal",
];

/// Crates whose non-test code falls under the L1 panic-path rule.
pub const L1_CRATES: [&str; 5] = ["storage", "core", "hyracks", "algebricks", "obs"];

/// Crates exempt from the L4 caller scan: dev harnesses where abort-on-error
/// is the desired behavior.
pub const L4_EXEMPT_CALLERS: [&str; 2] = ["bench", "xlint"];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in non-test code.
    PanicPath,
    /// Missing `#![forbid(unsafe_code)]` in a non-shim crate root.
    UnsafeForbid,
    /// Lock-order inversion, cycle, or un-annotated nested lock.
    LockOrder,
    /// Cross-crate bare `.unwrap()` on a `Result`-returning storage/core API.
    CrossUnwrap,
}

impl Rule {
    pub fn name(&self) -> &'static str {
        match self {
            Rule::PanicPath => "panic",
            Rule::UnsafeForbid => "unsafe",
            Rule::LockOrder => "lock_order",
            Rule::CrossUnwrap => "cross_unwrap",
        }
    }
}

#[derive(Debug)]
pub struct Violation {
    pub rule: Rule,
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

#[derive(Debug)]
pub struct Suppression {
    pub rule_name: String,
    pub path: PathBuf,
    pub line: usize,
    pub reason: String,
}

/// Result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    /// Observed static lock edges `held -> acquired` with one witness site.
    pub lock_edges: BTreeMap<(String, String), (PathBuf, usize)>,
    pub files_checked: usize,
    pub lines_checked: usize,
}

impl Report {
    /// Suppression counts per rule name, sorted.
    pub fn suppression_counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for s in &self.suppressions {
            *m.entry(s.rule_name.clone()).or_insert(0) += 1;
        }
        m
    }
}

/// A workspace file queued for scanning.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative when possible).
    pub path: PathBuf,
    /// Crate short name (`storage`, `core`, …, `<root>` for the root crate).
    pub crate_name: String,
    /// Whole file is test/dev code (`tests/`, `benches/`, `examples/` dirs).
    pub file_is_test: bool,
    /// This file is a crate root (`lib.rs`, `main.rs`, `bin/*.rs`).
    pub is_crate_root: bool,
    /// The crate lives under `crates/shims/`.
    pub is_shim: bool,
    pub text: String,
}

/// Discovers every `.rs` file under `root` that belongs to the workspace.
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for e in entries {
            let p = e.path();
            let name = e.file_name().to_string_lossy().into_owned();
            if e.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let is_shim = rel_str.starts_with("crates/shims/");
            let crate_name = if let Some(rest) = rel_str.strip_prefix("crates/shims/") {
                rest.split('/').next().unwrap_or("").to_string()
            } else if let Some(rest) = rel_str.strip_prefix("crates/") {
                rest.split('/').next().unwrap_or("").to_string()
            } else {
                "<root>".to_string()
            };
            let comps: Vec<&str> = rel_str.split('/').collect();
            let file_is_test = comps.iter().any(|c| {
                *c == "tests" || *c == "benches" || *c == "examples" || *c == "fixtures"
            });
            let src_pos = comps.iter().position(|c| *c == "src");
            let is_crate_root = match src_pos {
                Some(i) => {
                    let tail = &comps[i + 1..];
                    tail == ["lib.rs"]
                        || tail == ["main.rs"]
                        || (tail.len() == 2 && tail[0] == "bin")
                }
                None => false,
            };
            let text = std::fs::read_to_string(&p)?;
            out.push(SourceFile {
                path: rel,
                crate_name,
                file_is_test,
                is_crate_root,
                is_shim,
                text,
            });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Runs all rules over `files` and returns the combined report.
pub fn check(files: &[SourceFile]) -> Report {
    let mut rep = Report::default();
    let masked: Vec<MaskedFile> = files.iter().map(|f| mask(&f.text)).collect();
    rep.files_checked = files.len();
    rep.lines_checked = masked.iter().map(|m| m.lines.len()).sum();

    // Pass 1: collect pub fns returning Result in storage + core (for L4).
    let mut api: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (f, m) in files.iter().zip(&masked) {
        if f.is_shim || f.file_is_test {
            continue;
        }
        if f.crate_name == "storage" || f.crate_name == "core" {
            for name in result_pub_fns(m) {
                api.entry(name).or_default().insert(f.crate_name.clone());
            }
        }
    }

    for (f, m) in files.iter().zip(&masked) {
        if f.is_shim {
            continue;
        }
        check_l2(f, m, &mut rep);
        if f.file_is_test {
            continue;
        }
        if L1_CRATES.contains(&f.crate_name.as_str()) {
            check_l1(f, m, &mut rep);
        }
        check_l3(f, m, &mut rep);
        check_l4(f, m, &api, &mut rep);
    }
    check_lock_graph(&mut rep);
    rep
}

/// Parses `// xlint: allow(<rule>, "<reason>")` from a line's comments.
fn allow_directive(comments: &[String]) -> Option<(String, String)> {
    comments.iter().find_map(|c| {
        let t = c.trim();
        let rest = t.strip_prefix("xlint:")?.trim_start();
        let rest = rest.strip_prefix("allow(")?;
        let close = rest.rfind(')')?;
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim().trim_matches('"').to_string()),
            None => (inner.trim(), String::new()),
        };
        Some((rule.to_string(), reason))
    })
}

/// Parses `// xlint: lock(<name>)` from a line's comments.
fn lock_annotation(comments: &[String]) -> Option<String> {
    for c in comments {
        let t = c.trim();
        if let Some(rest) = t.strip_prefix("xlint:") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix("lock(") {
                if let Some(close) = rest.find(')') {
                    return Some(rest[..close].trim().to_string());
                }
            }
        }
    }
    None
}

/// Records a violation unless the line carries a matching allow directive;
/// suppressions are recorded either way (they are counted and reported).
fn push_checked(
    rep: &mut Report,
    rule: Rule,
    f: &SourceFile,
    line_idx: usize,
    comments: &[String],
    message: String,
) {
    if let Some((name, reason)) = allow_directive(comments) {
        if name == rule.name() {
            rep.suppressions.push(Suppression {
                rule_name: name,
                path: f.path.clone(),
                line: line_idx + 1,
                reason,
            });
            return;
        }
    }
    rep.violations.push(Violation { rule, path: f.path.clone(), line: line_idx + 1, message });
}

// ---------------------------------------------------------------- L1

const PANIC_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

fn check_l1(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if let Some(pos) = l.code.find(tok) {
                // `panic!`/`unreachable!` must not be the tail of a longer
                // path like `core::panic!` — preceding `:` is still the
                // macro; only ident chars rule it out.
                if tok.ends_with('!') && pos > 0 {
                    let prev = l.code.as_bytes()[pos - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.' {
                        continue;
                    }
                }
                push_checked(
                    rep,
                    Rule::PanicPath,
                    f,
                    i,
                    &l.comments,
                    format!("`{tok}` in non-test code of crate `{}`", f.crate_name),
                );
                break; // one finding per line is enough
            }
        }
    }
}

// ---------------------------------------------------------------- L2

fn check_l2(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    if !f.is_crate_root || f.file_is_test {
        return;
    }
    let found = m.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !found {
        rep.violations.push(Violation {
            rule: Rule::UnsafeForbid,
            path: f.path.clone(),
            line: 1,
            message: format!(
                "crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                f.crate_name
            ),
        });
    }
}

// ---------------------------------------------------------------- L3

/// A lock-acquisition site found in one function.
struct HeldLock {
    depth: i32,
    name: Option<String>,
}

fn check_l3(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    // Functions are tracked as (start_depth, held-locks). Closures are not
    // treated as boundaries: a lock taken in a closure body textually inside
    // a function that holds a lock is still a nested acquisition to a
    // first-order approximation.
    let mut fns: Vec<(i32, Vec<HeldLock>)> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_fn = false;

    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let annotation = lock_annotation(&l.comments);
        // A guard is *held* past this statement only for the plain binding
        // shape `let g = <expr>.lock();` (ditto .read()/.write()). A lock
        // call mid-chain (`let n = m.read().len();`) yields a temporary
        // guard that dies at the statement end, and temporaries are treated
        // as instantaneous acquisitions.
        let trimmed = code.trim();
        let is_let = trimmed.starts_with("let ")
            && (trimmed.ends_with(".lock();")
                || trimmed.ends_with(".read();")
                || trimmed.ends_with(".write();"));
        let sites = lock_sites(code);

        // Process braces, sites, and `fn` keywords in textual order.
        let fn_pos = fn_decl_pos(code);
        let mut site_iter = sites.into_iter().peekable();
        for (ci, ch) in code.char_indices() {
            if Some(ci) == fn_pos {
                pending_fn = true;
            }
            while let Some(&(pos, _)) = site_iter.peek() {
                if pos <= ci {
                    let (_, _kind) = site_iter.next().unwrap_or((0, ""));
                    handle_site(
                        f,
                        i,
                        depth,
                        is_let,
                        annotation.clone(),
                        &l.comments,
                        &mut fns,
                        rep,
                    );
                } else {
                    break;
                }
            }
            match ch {
                '{' => {
                    depth += 1;
                    if pending_fn {
                        fns.push((depth, Vec::new()));
                        pending_fn = false;
                    }
                }
                '}' => {
                    // Release guards bound in the closing block.
                    if let Some((_, held)) = fns.last_mut() {
                        held.retain(|h| h.depth < depth);
                    }
                    if let Some(&(start, _)) = fns.last() {
                        if depth == start {
                            fns.pop();
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // Trailing sites after the last char index processed.
        for _ in site_iter {
            handle_site(f, i, depth, is_let, annotation.clone(), &l.comments, &mut fns, rep);
        }
        // A `fn` whose body brace is on a later line.
        if let Some(p) = fn_pos {
            if !code[p..].contains('{') {
                pending_fn = true;
            }
        }
    }
}

/// Byte positions of `.lock()`, `.read()`, `.write()` (empty-parens only)
/// in a masked line.
fn lock_sites(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut start = 0usize;
        while let Some(p) = code[start..].find(pat) {
            out.push((start + p, pat));
            start += p + pat.len();
        }
    }
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Byte position of a `fn` keyword on the masked line (so the next `{`
/// opens a function body), or `None`.
fn fn_decl_pos(code: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(p) = code[start..].find("fn ") {
        let abs = start + p;
        let before_ok = abs == 0 || {
            let c = code.as_bytes()[abs - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok {
            return Some(abs);
        }
        start = abs + 3;
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn handle_site(
    f: &SourceFile,
    line_idx: usize,
    depth: i32,
    is_let: bool,
    annotation: Option<String>,
    comments: &[String],
    fns: &mut [(i32, Vec<HeldLock>)],
    rep: &mut Report,
) {
    let rank = |n: &str| LOCK_ORDER.iter().position(|l| *l == n);
    let Some((_, held)) = fns.last_mut() else {
        return; // lock outside any fn (const/static init) — ignore
    };

    if let Some(top) = held.last() {
        match (&top.name, &annotation) {
            (Some(h), Some(n)) => {
                match (rank(h), rank(n)) {
                    (Some(rh), Some(rn)) if rn < rh => {
                        push_checked(
                            rep,
                            Rule::LockOrder,
                            f,
                            line_idx,
                            comments,
                            format!(
                                "lock-order inversion: acquiring `{n}` while holding `{h}` \
                                 (declared order: {})",
                                LOCK_ORDER.join(" -> ")
                            ),
                        );
                    }
                    _ => {}
                }
                // Record the edge for the global cycle check (unknown names
                // participate in cycle detection too).
                rep.lock_edges
                    .entry((h.clone(), n.clone()))
                    .or_insert_with(|| (f.path.clone(), line_idx + 1));
            }
            _ => {
                // A nested acquisition where either side is unnamed cannot be
                // checked — require an annotation or an explicit suppression.
                push_checked(
                    rep,
                    Rule::LockOrder,
                    f,
                    line_idx,
                    comments,
                    "nested lock acquisition without `// xlint: lock(<name>)` annotations \
                     on both sites"
                        .to_string(),
                );
            }
        }
    }
    if is_let {
        held.push(HeldLock { depth, name: annotation });
    }
}

/// DFS over observed edges plus the declared-order chain; any cycle among
/// named levels is a violation.
fn check_lock_graph(rep: &mut Report) {
    let mut nodes: BTreeSet<String> = LOCK_ORDER.iter().map(|s| s.to_string()).collect();
    for (h, n) in rep.lock_edges.keys() {
        nodes.insert(h.clone());
        nodes.insert(n.clone());
    }
    let mut edges: BTreeSet<(String, String)> =
        rep.lock_edges.keys().cloned().collect();
    for w in LOCK_ORDER.windows(2) {
        edges.insert((w[0].to_string(), w[1].to_string()));
    }
    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    let idx: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut color = vec![0u8; nodes.len()];
    let node_list: Vec<&String> = nodes.iter().collect();
    let adj: Vec<Vec<usize>> = node_list
        .iter()
        .map(|n| {
            edges
                .iter()
                .filter(|(a, _)| a == *n)
                .filter_map(|(_, b)| idx.get(b.as_str()).copied())
                .collect()
        })
        .collect();
    for start in 0..node_list.len() {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                if color[v] == 1 {
                    let cycle: Vec<&str> =
                        stack.iter().map(|&(n, _)| node_list[n].as_str()).collect();
                    rep.violations.push(Violation {
                        rule: Rule::LockOrder,
                        path: PathBuf::from("<workspace>"),
                        line: 0,
                        message: format!(
                            "cycle in the lock-acquisition graph: {} -> {}",
                            cycle.join(" -> "),
                            node_list[v]
                        ),
                    });
                    return;
                }
                if color[v] == 0 {
                    color[v] = 1;
                    stack.push((v, 0));
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
}

// ---------------------------------------------------------------- L4

/// Names of `pub fn`s returning `Result` in a masked file. Signatures may
/// span lines; scanning stops at the body `{` or a `;`.
fn result_pub_fns(m: &MaskedFile) -> Vec<String> {
    let mut joined = String::new();
    for l in &m.lines {
        if l.in_test {
            joined.push('\n');
            continue;
        }
        joined.push_str(&l.code);
        joined.push('\n');
    }
    let mut out = Vec::new();
    let b = joined.as_bytes();
    let mut start = 0usize;
    while let Some(p) = joined[start..].find("pub fn ") {
        let abs = start + p;
        let name_start = abs + "pub fn ".len();
        let name_end = joined[name_start..]
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|e| name_start + e)
            .unwrap_or(b.len());
        let name = joined[name_start..name_end].to_string();
        // Signature runs until the body brace or a trait-decl semicolon.
        let sig_end = joined[name_end..]
            .find(['{', ';'])
            .map(|e| name_end + e)
            .unwrap_or(b.len());
        let sig = &joined[name_end..sig_end];
        if let Some(arrow) = sig.find("->") {
            let returns_result =
                sig[arrow..].contains("Result<") || sig[arrow..].trim_end().ends_with("Result");
            if returns_result && !name.is_empty() {
                out.push(name);
            }
        }
        start = sig_end.max(abs + 1);
    }
    out
}

fn check_l4(
    f: &SourceFile,
    m: &MaskedFile,
    api: &BTreeMap<String, BTreeSet<String>>,
    rep: &mut Report,
) {
    if L4_EXEMPT_CALLERS.contains(&f.crate_name.as_str()) {
        return;
    }
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test || !l.code.contains(".unwrap()") {
            continue;
        }
        for (name, defined_in) in api {
            // Cross-crate only: calls inside a defining crate are that
            // crate's own business (and covered by L1 there anyway).
            if defined_in.contains(&f.crate_name) {
                continue;
            }
            let pat = format!(".{name}(");
            if let Some(pos) = l.code.find(&pat) {
                if l.code[pos..].contains(".unwrap()") {
                    push_checked(
                        rep,
                        Rule::CrossUnwrap,
                        f,
                        i,
                        &l.comments,
                        format!(
                            "bare `.unwrap()` on `{name}(…)` — a Result-returning \
                             pub fn of crate `{}` — called from crate `{}`",
                            defined_in.iter().cloned().collect::<Vec<_>>().join("/"),
                            f.crate_name
                        ),
                    );
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel: &str, text: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from(rel),
            crate_name: crate_name.to_string(),
            file_is_test: false,
            is_crate_root: rel.ends_with("lib.rs") || rel.ends_with("main.rs"),
            is_shim: false,
            text: text.to_string(),
        }
    }

    #[test]
    fn l1_flags_and_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) { x.unwrap(); }\nfn g(x: Option<u8>) { x.unwrap(); } // xlint: allow(panic, \"test\")\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert_eq!(rep.violations.iter().filter(|v| v.rule == Rule::PanicPath).count(), 1);
        assert_eq!(rep.suppressions.len(), 1);
    }

    #[test]
    fn l2_requires_forbid() {
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", "fn f() {}\n")]);
        assert!(rep.violations.iter().any(|v| v.rule == Rule::UnsafeForbid));
    }

    #[test]
    fn l3_detects_inversion() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(cache_shard)\n    let g2 = b.lock(); // xlint: lock(catalog)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            rep.violations
                .iter()
                .any(|v| v.rule == Rule::LockOrder && v.message.contains("inversion")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn l3_ok_in_declared_order() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(catalog)\n    let g2 = b.lock(); // xlint: lock(wal)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            !rep.violations.iter().any(|v| v.rule == Rule::LockOrder),
            "{:?}",
            rep.violations
        );
        assert!(rep
            .lock_edges
            .contains_key(&("catalog".to_string(), "wal".to_string())));
    }

    #[test]
    fn l3_unannotated_nesting_flagged() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(catalog)\n    let g2 = b.lock();\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.rule == Rule::LockOrder && v.message.contains("annotation")));
    }

    #[test]
    fn l3_guard_released_at_block_end() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    {\n        let g1 = a.lock(); // xlint: lock(wal)\n    }\n    let g2 = b.lock(); // xlint: lock(catalog)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            !rep.violations.iter().any(|v| v.rule == Rule::LockOrder),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn l4_cross_crate_unwrap() {
        let def = "#![forbid(unsafe_code)]\npub fn put(x: u8) -> Result<u8, ()> { Ok(x) }\n";
        let call = "#![forbid(unsafe_code)]\nfn f(s: &S) { s.put(1).unwrap(); }\n";
        let rep = check(&[
            file("storage", "crates/storage/src/lib.rs", def),
            file("sqlpp", "crates/sqlpp/src/lib.rs", call),
        ]);
        assert!(rep.violations.iter().any(|v| v.rule == Rule::CrossUnwrap), "{:?}", rep.violations);
    }

    #[test]
    fn l4_same_crate_exempt() {
        let def = "#![forbid(unsafe_code)]\npub fn put(x: u8) -> Result<u8, ()> { Ok(x) }\nfn f(s: &S) { s.put(1).unwrap(); } // xlint: allow(panic, \"demo\")\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", def)]);
        assert!(!rep.violations.iter().any(|v| v.rule == Rule::CrossUnwrap));
    }
}
