//! The lint rules (L1–L8), the suppression/annotation directives, and the
//! declared lock order.
//!
//! Rules operate on [`crate::lexer::MaskedFile`]s, so substring matches
//! cannot be fooled by comments or string literals. See DESIGN.md
//! "Correctness tooling" for the rule catalogue and suppression syntax.

use crate::callgraph;
use crate::lexer::{mask, MaskedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// The canonical lock order. Acquiring left-to-right is legal; any edge that
/// goes right-to-left is an inversion. Must match
/// `asterix_storage::lock_order::LEVELS`.
pub const LOCK_ORDER: [&str; 7] = [
    "scheduler",
    "catalog",
    "lock_manager",
    "lsm_component",
    "cache_inflight",
    "cache_shard",
    "wal",
];

/// Crates whose non-test code falls under the L1 panic-path rule.
pub const L1_CRATES: [&str; 5] = ["storage", "core", "hyracks", "algebricks", "obs"];

/// Crates exempt from the L4 caller scan: dev harnesses where abort-on-error
/// is the desired behavior.
pub const L4_EXEMPT_CALLERS: [&str; 2] = ["bench", "xlint"];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in non-test code.
    PanicPath,
    /// Missing `#![forbid(unsafe_code)]` in a non-shim crate root.
    UnsafeForbid,
    /// Lock-order inversion, cycle, or un-annotated nested lock.
    LockOrder,
    /// Cross-crate bare `.unwrap()` on a `Result`-returning storage/core API.
    CrossUnwrap,
    /// A blocking primitive reachable from a cooperative actor entry point.
    BlockingInActor,
    /// Immediately-dropped or prematurely-dropped lock/admission guard.
    GuardDrop,
    /// `Ordering::Relaxed` in a CAS or consumed RMW without an
    /// `// xlint: ordering(<why>)` annotation.
    AtomicOrdering,
    /// Metric name referenced but never registered, or registered but never
    /// incremented.
    MetricHygiene,
}

impl Rule {
    pub fn name(&self) -> &'static str {
        match self {
            Rule::PanicPath => "panic",
            Rule::UnsafeForbid => "unsafe",
            Rule::LockOrder => "lock_order",
            Rule::CrossUnwrap => "cross_unwrap",
            Rule::BlockingInActor => "blocking",
            Rule::GuardDrop => "guard_drop",
            Rule::AtomicOrdering => "atomic_ordering",
            Rule::MetricHygiene => "metric",
        }
    }
}

#[derive(Debug)]
pub struct Violation {
    pub rule: Rule,
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

#[derive(Debug)]
pub struct Suppression {
    pub rule_name: String,
    pub path: PathBuf,
    pub line: usize,
    pub reason: String,
    /// Trimmed masked code of the suppressed line — part of the baseline
    /// fingerprint, so a suppression cannot silently migrate to different
    /// code.
    pub code: String,
}

/// Result of a full workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    /// Observed static lock edges `held -> acquired` with one witness site.
    pub lock_edges: BTreeMap<(String, String), (PathBuf, usize)>,
    pub files_checked: usize,
    pub lines_checked: usize,
}

impl Report {
    /// Suppression counts per rule name, sorted.
    pub fn suppression_counts(&self) -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for s in &self.suppressions {
            *m.entry(s.rule_name.clone()).or_insert(0) += 1;
        }
        m
    }
}

/// A workspace file queued for scanning.
pub struct SourceFile {
    /// Path as reported in diagnostics (workspace-relative when possible).
    pub path: PathBuf,
    /// Crate short name (`storage`, `core`, …, `<root>` for the root crate).
    pub crate_name: String,
    /// Whole file is test/dev code (`tests/`, `benches/`, `examples/` dirs).
    pub file_is_test: bool,
    /// This file is a crate root (`lib.rs`, `main.rs`, `bin/*.rs`).
    pub is_crate_root: bool,
    /// The crate lives under `crates/shims/`.
    pub is_shim: bool,
    pub text: String,
}

/// Discovers every `.rs` file under `root` that belongs to the workspace.
pub fn discover(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for e in entries {
            let p = e.path();
            let name = e.file_name().to_string_lossy().into_owned();
            if e.file_type()?.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(p);
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let is_shim = rel_str.starts_with("crates/shims/");
            let crate_name = if let Some(rest) = rel_str.strip_prefix("crates/shims/") {
                rest.split('/').next().unwrap_or("").to_string()
            } else if let Some(rest) = rel_str.strip_prefix("crates/") {
                rest.split('/').next().unwrap_or("").to_string()
            } else {
                "<root>".to_string()
            };
            let comps: Vec<&str> = rel_str.split('/').collect();
            let file_is_test = comps.iter().any(|c| {
                *c == "tests" || *c == "benches" || *c == "examples" || *c == "fixtures"
            });
            let src_pos = comps.iter().position(|c| *c == "src");
            let is_crate_root = match src_pos {
                Some(i) => {
                    let tail = &comps[i + 1..];
                    tail == ["lib.rs"]
                        || tail == ["main.rs"]
                        || (tail.len() == 2 && tail[0] == "bin")
                }
                None => false,
            };
            let text = std::fs::read_to_string(&p)?;
            out.push(SourceFile {
                path: rel,
                crate_name,
                file_is_test,
                is_crate_root,
                is_shim,
                text,
            });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Runs all rules over `files` (no external documents) and returns the
/// combined report.
#[cfg_attr(not(test), allow(dead_code))]
pub fn check(files: &[SourceFile]) -> Report {
    check_with_docs(files, &[])
}

/// Runs all rules over `files`, plus the L8 metric cross-check against
/// `docs` (path, text) pairs — DESIGN.md / README.md metric references.
pub fn check_with_docs(files: &[SourceFile], docs: &[(PathBuf, String)]) -> Report {
    let mut rep = Report::default();
    let masked: Vec<MaskedFile> = files.iter().map(|f| mask(&f.text)).collect();
    rep.files_checked = files.len();
    rep.lines_checked = masked.iter().map(|m| m.lines.len()).sum();

    // Pass 1: collect pub fns returning Result in storage + core (for L4).
    let mut api: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (f, m) in files.iter().zip(&masked) {
        if f.is_shim || f.file_is_test {
            continue;
        }
        if f.crate_name == "storage" || f.crate_name == "core" {
            for name in result_pub_fns(m) {
                api.entry(name).or_default().insert(f.crate_name.clone());
            }
        }
    }

    for (f, m) in files.iter().zip(&masked) {
        if f.is_shim {
            continue;
        }
        check_l2(f, m, &mut rep);
        if f.file_is_test {
            continue;
        }
        if L1_CRATES.contains(&f.crate_name.as_str()) {
            check_l1(f, m, &mut rep);
        }
        check_l3(f, m, &mut rep);
        check_l4(f, m, &api, &mut rep);
        check_l6(f, m, &mut rep);
        check_l7(f, m, &mut rep);
    }
    check_lock_graph(&mut rep);
    check_l5(files, &masked, &mut rep);
    check_l8(files, &masked, docs, &mut rep);
    rep
}

/// Parses `// xlint: allow(<rule>, "<reason>")` from a line's comments.
pub(crate) fn allow_directive(comments: &[String]) -> Option<(String, String)> {
    comments.iter().find_map(|c| {
        let t = c.trim();
        let rest = t.strip_prefix("xlint:")?.trim_start();
        let rest = rest.strip_prefix("allow(")?;
        let close = rest.rfind(')')?;
        let inner = &rest[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim().trim_matches('"').to_string()),
            None => (inner.trim(), String::new()),
        };
        Some((rule.to_string(), reason))
    })
}

/// Parses `// xlint: lock(<name>)` from a line's comments.
fn lock_annotation(comments: &[String]) -> Option<String> {
    for c in comments {
        let t = c.trim();
        if let Some(rest) = t.strip_prefix("xlint:") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix("lock(") {
                if let Some(close) = rest.find(')') {
                    return Some(rest[..close].trim().to_string());
                }
            }
        }
    }
    None
}

/// Records a violation unless the line carries a matching allow directive;
/// suppressions are recorded either way (they are counted and reported).
#[allow(clippy::too_many_arguments)]
fn push_checked(
    rep: &mut Report,
    rule: Rule,
    f: &SourceFile,
    line_idx: usize,
    code: &str,
    comments: &[String],
    message: String,
) {
    if let Some((name, reason)) = allow_directive(comments) {
        if name == rule.name() {
            rep.suppressions.push(Suppression {
                rule_name: name,
                path: f.path.clone(),
                line: line_idx + 1,
                reason,
                code: code.trim().to_string(),
            });
            return;
        }
    }
    rep.violations.push(Violation { rule, path: f.path.clone(), line: line_idx + 1, message });
}

// ---------------------------------------------------------------- L1

const PANIC_TOKENS: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

fn check_l1(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if let Some(pos) = l.code.find(tok) {
                // `panic!`/`unreachable!` must not be the tail of a longer
                // path like `core::panic!` — preceding `:` is still the
                // macro; only ident chars rule it out.
                if tok.ends_with('!') && pos > 0 {
                    let prev = l.code.as_bytes()[pos - 1];
                    if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.' {
                        continue;
                    }
                }
                push_checked(
                    rep,
                    Rule::PanicPath,
                    f,
                    i,
                    &l.code,
                    &l.comments,
                    format!("`{tok}` in non-test code of crate `{}`", f.crate_name),
                );
                break; // one finding per line is enough
            }
        }
    }
}

// ---------------------------------------------------------------- L2

fn check_l2(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    if !f.is_crate_root || f.file_is_test {
        return;
    }
    let found = m.lines.iter().any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !found {
        rep.violations.push(Violation {
            rule: Rule::UnsafeForbid,
            path: f.path.clone(),
            line: 1,
            message: format!(
                "crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                f.crate_name
            ),
        });
    }
}

// ---------------------------------------------------------------- L3

/// A lock-acquisition site found in one function.
struct HeldLock {
    depth: i32,
    name: Option<String>,
}

fn check_l3(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    // Functions are tracked as (start_depth, held-locks). Closures are not
    // treated as boundaries: a lock taken in a closure body textually inside
    // a function that holds a lock is still a nested acquisition to a
    // first-order approximation.
    let mut fns: Vec<(i32, Vec<HeldLock>)> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_fn = false;

    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let annotation = lock_annotation(&l.comments);
        // A guard is *held* past this statement only for the plain binding
        // shape `let g = <expr>.lock();` (ditto .read()/.write()). A lock
        // call mid-chain (`let n = m.read().len();`) yields a temporary
        // guard that dies at the statement end, and temporaries are treated
        // as instantaneous acquisitions.
        let trimmed = code.trim();
        let is_let = trimmed.starts_with("let ")
            && (trimmed.ends_with(".lock();")
                || trimmed.ends_with(".read();")
                || trimmed.ends_with(".write();"));
        let sites = lock_sites(code);

        // Process braces, sites, and `fn` keywords in textual order.
        let fn_pos = fn_decl_pos(code);
        let mut site_iter = sites.into_iter().peekable();
        for (ci, ch) in code.char_indices() {
            if Some(ci) == fn_pos {
                pending_fn = true;
            }
            while let Some(&(pos, _)) = site_iter.peek() {
                if pos <= ci {
                    let (_, _kind) = site_iter.next().unwrap_or((0, ""));
                    handle_site(
                        f,
                        i,
                        depth,
                        is_let,
                        annotation.clone(),
                        code,
                        &l.comments,
                        &mut fns,
                        rep,
                    );
                } else {
                    break;
                }
            }
            match ch {
                '{' => {
                    depth += 1;
                    if pending_fn {
                        fns.push((depth, Vec::new()));
                        pending_fn = false;
                    }
                }
                '}' => {
                    // Release guards bound in the closing block.
                    if let Some((_, held)) = fns.last_mut() {
                        held.retain(|h| h.depth < depth);
                    }
                    if let Some(&(start, _)) = fns.last() {
                        if depth == start {
                            fns.pop();
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // Trailing sites after the last char index processed.
        for _ in site_iter {
            handle_site(f, i, depth, is_let, annotation.clone(), code, &l.comments, &mut fns, rep);
        }
        // A `fn` whose body brace is on a later line.
        if let Some(p) = fn_pos {
            if !code[p..].contains('{') {
                pending_fn = true;
            }
        }
    }
}

/// Byte positions of `.lock()`, `.read()`, `.write()` (empty-parens only)
/// in a masked line.
fn lock_sites(code: &str) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut start = 0usize;
        while let Some(p) = code[start..].find(pat) {
            out.push((start + p, pat));
            start += p + pat.len();
        }
    }
    out.sort_by_key(|&(p, _)| p);
    out
}

/// Byte position of a `fn` keyword on the masked line (so the next `{`
/// opens a function body), or `None`.
fn fn_decl_pos(code: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(p) = code[start..].find("fn ") {
        let abs = start + p;
        let before_ok = abs == 0 || {
            let c = code.as_bytes()[abs - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok {
            return Some(abs);
        }
        start = abs + 3;
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn handle_site(
    f: &SourceFile,
    line_idx: usize,
    depth: i32,
    is_let: bool,
    annotation: Option<String>,
    code: &str,
    comments: &[String],
    fns: &mut [(i32, Vec<HeldLock>)],
    rep: &mut Report,
) {
    let rank = |n: &str| LOCK_ORDER.iter().position(|l| *l == n);
    let Some((_, held)) = fns.last_mut() else {
        return; // lock outside any fn (const/static init) — ignore
    };

    if let Some(top) = held.last() {
        match (&top.name, &annotation) {
            (Some(h), Some(n)) => {
                match (rank(h), rank(n)) {
                    (Some(rh), Some(rn)) if rn < rh => {
                        push_checked(
                            rep,
                            Rule::LockOrder,
                            f,
                            line_idx,
                            code,
                            comments,
                            format!(
                                "lock-order inversion: acquiring `{n}` while holding `{h}` \
                                 (declared order: {})",
                                LOCK_ORDER.join(" -> ")
                            ),
                        );
                    }
                    _ => {}
                }
                // Record the edge for the global cycle check (unknown names
                // participate in cycle detection too).
                rep.lock_edges
                    .entry((h.clone(), n.clone()))
                    .or_insert_with(|| (f.path.clone(), line_idx + 1));
            }
            _ => {
                // A nested acquisition where either side is unnamed cannot be
                // checked — require an annotation or an explicit suppression.
                push_checked(
                    rep,
                    Rule::LockOrder,
                    f,
                    line_idx,
                    code,
                    comments,
                    "nested lock acquisition without `// xlint: lock(<name>)` annotations \
                     on both sites"
                        .to_string(),
                );
            }
        }
    }
    if is_let {
        held.push(HeldLock { depth, name: annotation });
    }
}

/// DFS over observed edges plus the declared-order chain; any cycle among
/// named levels is a violation.
fn check_lock_graph(rep: &mut Report) {
    let mut nodes: BTreeSet<String> = LOCK_ORDER.iter().map(|s| s.to_string()).collect();
    for (h, n) in rep.lock_edges.keys() {
        nodes.insert(h.clone());
        nodes.insert(n.clone());
    }
    let mut edges: BTreeSet<(String, String)> =
        rep.lock_edges.keys().cloned().collect();
    for w in LOCK_ORDER.windows(2) {
        edges.insert((w[0].to_string(), w[1].to_string()));
    }
    // Iterative DFS cycle detection (colors: 0 white, 1 grey, 2 black).
    let idx: BTreeMap<&str, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut color = vec![0u8; nodes.len()];
    let node_list: Vec<&String> = nodes.iter().collect();
    let adj: Vec<Vec<usize>> = node_list
        .iter()
        .map(|n| {
            edges
                .iter()
                .filter(|(a, _)| a == *n)
                .filter_map(|(_, b)| idx.get(b.as_str()).copied())
                .collect()
        })
        .collect();
    for start in 0..node_list.len() {
        if color[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start] = 1;
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                if color[v] == 1 {
                    let cycle: Vec<&str> =
                        stack.iter().map(|&(n, _)| node_list[n].as_str()).collect();
                    rep.violations.push(Violation {
                        rule: Rule::LockOrder,
                        path: PathBuf::from("<workspace>"),
                        line: 0,
                        message: format!(
                            "cycle in the lock-acquisition graph: {} -> {}",
                            cycle.join(" -> "),
                            node_list[v]
                        ),
                    });
                    return;
                }
                if color[v] == 0 {
                    color[v] = 1;
                    stack.push((v, 0));
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
}

// ---------------------------------------------------------------- L4

/// Names of `pub fn`s returning `Result` in a masked file. Signatures may
/// span lines; scanning stops at the body `{` or a `;`.
fn result_pub_fns(m: &MaskedFile) -> Vec<String> {
    let mut joined = String::new();
    for l in &m.lines {
        if l.in_test {
            joined.push('\n');
            continue;
        }
        joined.push_str(&l.code);
        joined.push('\n');
    }
    let mut out = Vec::new();
    let b = joined.as_bytes();
    let mut start = 0usize;
    while let Some(p) = joined[start..].find("pub fn ") {
        let abs = start + p;
        let name_start = abs + "pub fn ".len();
        let name_end = joined[name_start..]
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|e| name_start + e)
            .unwrap_or(b.len());
        let name = joined[name_start..name_end].to_string();
        // Signature runs until the body brace or a trait-decl semicolon.
        let sig_end = joined[name_end..]
            .find(['{', ';'])
            .map(|e| name_end + e)
            .unwrap_or(b.len());
        let sig = &joined[name_end..sig_end];
        if let Some(arrow) = sig.find("->") {
            let returns_result =
                sig[arrow..].contains("Result<") || sig[arrow..].trim_end().ends_with("Result");
            if returns_result && !name.is_empty() {
                out.push(name);
            }
        }
        start = sig_end.max(abs + 1);
    }
    out
}

fn check_l4(
    f: &SourceFile,
    m: &MaskedFile,
    api: &BTreeMap<String, BTreeSet<String>>,
    rep: &mut Report,
) {
    if L4_EXEMPT_CALLERS.contains(&f.crate_name.as_str()) {
        return;
    }
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test || !l.code.contains(".unwrap()") {
            continue;
        }
        for (name, defined_in) in api {
            // Cross-crate only: calls inside a defining crate are that
            // crate's own business (and covered by L1 there anyway).
            if defined_in.contains(&f.crate_name) {
                continue;
            }
            let pat = format!(".{name}(");
            if let Some(pos) = l.code.find(&pat) {
                if l.code[pos..].contains(".unwrap()") {
                    push_checked(
                        rep,
                        Rule::CrossUnwrap,
                        f,
                        i,
                        &l.code,
                        &l.comments,
                        format!(
                            "bare `.unwrap()` on `{name}(…)` — a Result-returning \
                             pub fn of crate `{}` — called from crate `{}`",
                            defined_in.iter().cloned().collect::<Vec<_>>().join("/"),
                            f.crate_name
                        ),
                    );
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L5

/// Crates whose code never runs on the shared worker pool: the lint binary
/// itself and the bench driver (a dedicated OS thread per run).
pub const L5_EXEMPT_CRATES: [&str; 2] = ["xlint", "bench"];

fn check_l5(files: &[SourceFile], masked: &[MaskedFile], rep: &mut Report) {
    let mut defs = Vec::new();
    for (fi, (f, m)) in files.iter().zip(masked).enumerate() {
        if f.is_shim || f.file_is_test || L5_EXEMPT_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        defs.extend(callgraph::extract_fns(fi, m));
    }
    // The actor host must declare its cooperative entry points, otherwise
    // the reachability walk silently checks nothing.
    for (fi, f) in files.iter().enumerate() {
        let p = f.path.to_string_lossy().replace('\\', "/");
        if p.ends_with("hyracks/src/exec.rs") && !defs.iter().any(|d| d.file == fi && d.entry) {
            rep.violations.push(Violation {
                rule: Rule::BlockingInActor,
                path: f.path.clone(),
                line: 1,
                message: "actor host declares no `// xlint: actor_entry` functions — \
                          the L5 reachability walk has no seeds"
                    .to_string(),
            });
        }
    }
    let (reached, opaque) = callgraph::walk(&defs);
    for di in opaque {
        let d = &defs[di];
        rep.suppressions.push(Suppression {
            rule_name: "blocking".to_string(),
            path: files[d.file].path.clone(),
            line: d.decl_line + 1,
            reason: d.opaque_reason.clone(),
            code: masked[d.file].lines[d.decl_line].code.trim().to_string(),
        });
    }
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for r in &reached {
        let d = &defs[r.def];
        let site = &d.blocking[r.site];
        if !seen.insert((d.file, site.line)) {
            continue;
        }
        let code = masked[d.file].lines[site.line].code.trim().to_string();
        if let Some(reason) = &site.allowed {
            rep.suppressions.push(Suppression {
                rule_name: "blocking".to_string(),
                path: files[d.file].path.clone(),
                line: site.line + 1,
                reason: reason.clone(),
                code,
            });
        } else {
            rep.violations.push(Violation {
                rule: Rule::BlockingInActor,
                path: files[d.file].path.clone(),
                line: site.line + 1,
                message: format!(
                    "{} can park a pool worker; reachable from actor entry via {}",
                    site.what,
                    r.chain.join(" -> ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L6

/// RAII guard type names covered by the guard-drop rule in addition to the
/// plain `.lock()/.read()/.write()` results.
pub const GUARD_TYPES: [&str; 3] = ["AdmissionGuard", "WorkerGuard", "Ticket"];

const GUARD_CALLS: [&str; 3] = [".lock()", ".read()", ".write()"];

fn check_l6(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    // Shapes (a) and (b): the guard dies at the end of the statement that
    // created it, so it protects nothing.
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let t = l.code.trim();
        let guard_expr = GUARD_CALLS.iter().any(|p| t.contains(p))
            || GUARD_TYPES.iter().any(|p| t.contains(p))
            || t.contains(".admit(");
        if t.starts_with("let _ =") && guard_expr {
            push_checked(
                rep,
                Rule::GuardDrop,
                f,
                i,
                &l.code,
                &l.comments,
                "guard bound to `_` is dropped at the end of this statement — it \
                 protects nothing (bind to a named `_g` to hold it)"
                    .to_string(),
            );
            continue;
        }
        let bare_guard = GUARD_CALLS.iter().any(|p| t.ends_with(&format!("{p};")));
        if bare_guard && !t.starts_with("let ") && !t.contains('=') {
            push_checked(
                rep,
                Rule::GuardDrop,
                f,
                i,
                &l.code,
                &l.comments,
                "lock acquired as a bare statement — the guard is dropped \
                 immediately"
                    .to_string(),
            );
        }
    }
    // Shape (c): `drop(g)` before the last use of the data `g` protected.
    for d in callgraph::extract_fns(0, m) {
        let hi = d.body_end.min(m.lines.len().saturating_sub(1));
        let mut guards: Vec<(String, String, usize)> = Vec::new(); // ident, receiver, bind line
        for i in d.decl_line..=hi {
            let l = &m.lines[i];
            if l.in_test {
                continue;
            }
            let t = l.code.trim();
            if let Some(rest) = t.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                if let Some((ident, init)) = rest.split_once('=') {
                    let ident = ident.trim();
                    let init = init.trim();
                    if !ident.is_empty()
                        && ident.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        for p in GUARD_CALLS {
                            if let Some(recv) = init.strip_suffix(&format!("{p};")) {
                                guards.push((ident.to_string(), recv.to_string(), i));
                            }
                        }
                    }
                }
            }
        }
        for i in d.decl_line..=hi {
            let l = &m.lines[i];
            if l.in_test {
                continue;
            }
            let t = l.code.trim();
            for (ident, recv, bind_line) in &guards {
                if i <= *bind_line || t != format!("drop({ident});") {
                    continue;
                }
                let used_after = (i + 1..=hi).any(|j| {
                    !m.lines[j].in_test && m.lines[j].code.contains(recv.as_str())
                });
                if used_after {
                    push_checked(
                        rep,
                        Rule::GuardDrop,
                        f,
                        i,
                        &l.code,
                        &l.comments,
                        format!(
                            "guard `{ident}` dropped early but its protected data \
                             `{recv}` is used again later in the same function"
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- L7

const CAS_TOKENS: [&str; 3] = ["compare_exchange(", "compare_exchange_weak(", "fetch_update("];
const RMW_TOKENS: [&str; 6] =
    [".fetch_add(", ".fetch_sub(", ".fetch_and(", ".fetch_or(", ".fetch_xor(", ".swap("];

/// Parses `// xlint: ordering(<why>)` from a line's comments.
fn ordering_directive(comments: &[String]) -> Option<String> {
    comments.iter().find_map(|c| {
        let rest = c.trim().strip_prefix("xlint:")?.trim_start().strip_prefix("ordering(")?;
        let close = rest.rfind(')')?;
        Some(rest[..close].trim().to_string())
    })
}

/// From the `(` at (`line`, `open_pos`), collects the argument text up to
/// the matching `)`; returns (end line, byte offset just past the close,
/// args). Masked code only, so parens in strings don't confuse it.
fn span_args(m: &MaskedFile, line: usize, open_pos: usize) -> (usize, usize, String) {
    let mut depth = 0i32;
    let mut args = String::new();
    let mut i = line;
    let mut ci = open_pos;
    loop {
        let b = m.lines[i].code.as_bytes();
        while ci < b.len() {
            match b[ci] {
                b'(' => {
                    depth += 1;
                    if depth > 1 {
                        args.push('(');
                    }
                }
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        return (i, ci + 1, args);
                    }
                    args.push(')');
                }
                c => {
                    if depth >= 1 {
                        args.push(c as char);
                    }
                }
            }
            ci += 1;
        }
        args.push(' ');
        i += 1;
        ci = 0;
        if i >= m.lines.len() {
            return (i - 1, 0, args);
        }
    }
}

fn check_l7(f: &SourceFile, m: &MaskedFile, rep: &mut Report) {
    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let mut finding: Option<(&str, usize)> = None; // token, open-paren pos
        for tok in CAS_TOKENS {
            if let Some(p) = find_unprefixed(code, tok) {
                finding = Some((tok, p + tok.len() - 1));
                break;
            }
        }
        let is_cas = finding.is_some();
        if finding.is_none() {
            for tok in RMW_TOKENS {
                if let Some(p) = code.find(tok) {
                    finding = Some((tok, p + tok.len() - 1));
                    break;
                }
            }
        }
        let Some((tok, open)) = finding else { continue };
        let (end_line, after, args) = span_args(m, i, open);
        if !args.contains("Relaxed") {
            continue;
        }
        if !is_cas {
            // A Relaxed RMW whose result is *discarded* is a plain counter
            // bump — no protocol to audit. Consumed results (return values,
            // bindings, conditions) participate in cross-thread protocols.
            // Receiver-only prefix: a bare `recv.path(...).fetch_add(…);`
            // statement. Whitespace or `=` before the call means the result
            // feeds a binding, condition, or match arm.
            let prefix = code[..open + 1 - tok.len()].trim();
            let receiver_only = !prefix.is_empty()
                && !prefix.contains(|c: char| c.is_whitespace() || c == '=');
            let next_is_semi =
                m.lines[end_line].code[after..].trim_start().starts_with(';');
            if receiver_only && next_is_semi {
                continue;
            }
        }
        if let Some(reason) = (i..=end_line).find_map(|k| ordering_directive(&m.lines[k].comments))
        {
            rep.suppressions.push(Suppression {
                rule_name: "atomic_ordering".to_string(),
                path: f.path.clone(),
                line: i + 1,
                reason,
                code: code.trim().to_string(),
            });
        } else {
            let kind = if is_cas { "CAS" } else { "consumed RMW" };
            push_checked(
                rep,
                Rule::AtomicOrdering,
                f,
                i,
                code,
                &l.comments,
                format!(
                    "`Ordering::Relaxed` in a {kind} (`{}…)`) without an \
                     `// xlint: ordering(<why>)` annotation",
                    tok
                ),
            );
        }
    }
}

/// First occurrence of `tok` in `code` not preceded by an identifier char
/// (so `counter(` does not match inside `observed_counter(`).
fn find_unprefixed(code: &str, tok: &str) -> Option<usize> {
    let mut start = 0usize;
    while let Some(p) = code[start..].find(tok) {
        let abs = start + p;
        if abs == 0 || {
            let c = code.as_bytes()[abs - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        } {
            return Some(abs);
        }
        start = abs + 1;
    }
    None
}

// ---------------------------------------------------------------- L8

const METRIC_CALLS: [&str; 4] = ["observed_counter(\"", "counter(\"", "gauge(\"", "histogram(\""];
const METRIC_USE: [&str; 5] = [".inc(", ".add(", ".set(", ".sub(", ".observe("];

#[derive(PartialEq)]
enum MetricKind {
    Register,
    Read,
    Other,
}

struct MetricSite {
    file: usize,
    line: usize,
    name: String,
    kind: MetricKind,
    observed: bool,
    binding: Option<String>,
    inline_use: bool,
}

/// `seg.seg2` shape: lowercase/digit/underscore dot-separated segments.
fn is_metric_name(s: &str) -> bool {
    let mut segs = 0;
    for seg in s.split('.') {
        if seg.is_empty()
            || !seg.bytes().next().is_some_and(|b| b.is_ascii_lowercase())
            || !seg.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return false;
        }
        segs += 1;
    }
    segs >= 2
}

fn check_l8(
    files: &[SourceFile],
    masked: &[MaskedFile],
    docs: &[(PathBuf, String)],
    rep: &mut Report,
) {
    let mut sites: Vec<MetricSite> = Vec::new();
    let mut witnesses: BTreeSet<String> = BTreeSet::new();
    for (fi, (f, m)) in files.iter().zip(masked).enumerate() {
        if f.is_shim || f.file_is_test {
            continue;
        }
        let orig: Vec<&str> = f.text.lines().collect();
        for (i, l) in m.lines.iter().enumerate() {
            if l.in_test {
                continue;
            }
            let code = &l.code;
            let Some(orig_line) = orig.get(i) else { continue };
            // Metric-call sites: `counter("name")` & friends; the literal
            // text comes from the original line at the masked quote offsets.
            for pat in METRIC_CALLS {
                let Some(abs) = find_unprefixed(code, pat) else { continue };
                let open = abs + pat.len() - 1;
                let Some(close_rel) = code[open + 1..].find('"') else { continue };
                let close = open + 1 + close_rel;
                let Some(name) = orig_line.get(open + 1..close) else { continue };
                if !is_metric_name(name) {
                    continue;
                }
                let prefix = &code[..abs];
                let observed = pat.starts_with("observed_counter");
                let kind = if observed
                    || (prefix.contains("registry") && !prefix.contains("snapshot"))
                    || prefix.trim_end().ends_with("reg.")
                {
                    MetricKind::Register
                } else if prefix.contains("snapshot") || f.crate_name == "bench" {
                    MetricKind::Read
                } else {
                    MetricKind::Other
                };
                let t = code.trim_start();
                let binding = if let Some(rest) = t.strip_prefix("let ") {
                    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                    let id: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    (!id.is_empty() && id != "_").then_some(id)
                } else {
                    // Struct-field init: `admitted: registry.counter("…"),`.
                    t.split_once(':').and_then(|(id, rest)| {
                        let id = id.trim();
                        (!rest.starts_with(':')
                            && !id.is_empty()
                            && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'))
                        .then(|| id.to_string())
                    })
                };
                let inline_use = METRIC_USE.iter().any(|u| code[close..].contains(u));
                if kind != MetricKind::Read {
                    witnesses.insert(name.to_string());
                }
                sites.push(MetricSite {
                    file: fi,
                    line: i,
                    name: name.to_string(),
                    kind,
                    observed,
                    binding,
                    inline_use,
                });
            }
            // Bare metric-shaped string literals (dynamic-name match arms
            // like `"hyracks.lifecycle.cancelled"`) witness registration too
            // — but not in `bench`, which only consumes metrics.
            if f.crate_name != "bench" {
                let bytes = code.as_bytes();
                let mut qs: Vec<usize> = Vec::new();
                for (bi, b) in bytes.iter().enumerate() {
                    if *b == b'"' {
                        qs.push(bi);
                    }
                }
                for pair in qs.chunks(2) {
                    let [a, z] = pair else { continue };
                    if METRIC_CALLS.iter().any(|p| code[..a + 1].ends_with(p)) {
                        continue; // already classified above
                    }
                    if let Some(lit) = orig_line.get(a + 1..*z) {
                        if is_metric_name(lit) {
                            witnesses.insert(lit.to_string());
                        }
                    }
                }
            }
        }
    }

    // Per-crate whitespace-condensed non-test code: method chains split
    // across lines (`.park_ns\n.add(…)`) must still count as increments.
    let mut condensed: BTreeMap<&str, String> = BTreeMap::new();
    for (f, m) in files.iter().zip(masked) {
        if f.is_shim || f.file_is_test {
            continue;
        }
        let buf = condensed.entry(f.crate_name.as_str()).or_default();
        for l in &m.lines {
            if !l.in_test {
                buf.extend(l.code.chars().filter(|c| !c.is_whitespace()));
            }
        }
    }

    for s in &sites {
        let f = &files[s.file];
        let l = &masked[s.file].lines[s.line];
        match s.kind {
            MetricKind::Read => {
                if !witnesses.contains(&s.name) {
                    push_checked(
                        rep,
                        Rule::MetricHygiene,
                        f,
                        s.line,
                        &l.code,
                        &l.comments,
                        format!(
                            "metric `{}` is read here but never registered or \
                             incremented anywhere in the workspace",
                            s.name
                        ),
                    );
                }
            }
            MetricKind::Register => {
                if s.observed || s.inline_use {
                    continue; // weak-reader pattern / same-statement use
                }
                let crate_code =
                    condensed.get(f.crate_name.as_str()).map(String::as_str).unwrap_or("");
                let used = s.binding.as_ref().is_some_and(|id| {
                    METRIC_USE
                        .iter()
                        .any(|u| find_unprefixed(crate_code, &format!("{id}{u}")).is_some())
                });
                if !used {
                    push_checked(
                        rep,
                        Rule::MetricHygiene,
                        f,
                        s.line,
                        &l.code,
                        &l.comments,
                        format!(
                            "metric `{}` is registered here but never incremented \
                             (no `.inc()/.add()/.set()/.observe()` on its handle in \
                             crate `{}`)",
                            s.name, f.crate_name
                        ),
                    );
                }
            }
            MetricKind::Other => {}
        }
    }

    // Doc cross-check: backticked metric-shaped names in DESIGN.md/README.md
    // whose family (first segment) is one we actually emit must resolve to a
    // registered name — catches stale docs after a metric rename.
    let families: BTreeSet<&str> =
        witnesses.iter().filter_map(|w| w.split('.').next()).collect();
    const DOC_EXTS: [&str; 6] = [".rs", ".md", ".json", ".yml", ".toml", ".lock"];
    for (path, text) in docs {
        for (j, line) in text.lines().enumerate() {
            let mut parts = line.split('`');
            parts.next(); // before the first backtick
            while let (Some(tok), next) = (parts.next(), parts.next()) {
                if next.is_none() {
                    break; // unbalanced backticks
                }
                if !is_metric_name(tok) || DOC_EXTS.iter().any(|e| tok.ends_with(e)) {
                    continue;
                }
                let family = tok.split('.').next().unwrap_or("");
                if families.contains(family) && !witnesses.contains(tok) {
                    rep.violations.push(Violation {
                        rule: Rule::MetricHygiene,
                        path: path.clone(),
                        line: j + 1,
                        message: format!(
                            "doc references metric `{tok}` but no such metric is \
                             registered (family `{family}` exists — stale name?)"
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel: &str, text: &str) -> SourceFile {
        SourceFile {
            path: PathBuf::from(rel),
            crate_name: crate_name.to_string(),
            file_is_test: false,
            is_crate_root: rel.ends_with("lib.rs") || rel.ends_with("main.rs"),
            is_shim: false,
            text: text.to_string(),
        }
    }

    #[test]
    fn l1_flags_and_suppresses() {
        let src = "#![forbid(unsafe_code)]\nfn f(x: Option<u8>) { x.unwrap(); }\nfn g(x: Option<u8>) { x.unwrap(); } // xlint: allow(panic, \"test\")\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert_eq!(rep.violations.iter().filter(|v| v.rule == Rule::PanicPath).count(), 1);
        assert_eq!(rep.suppressions.len(), 1);
    }

    #[test]
    fn l2_requires_forbid() {
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", "fn f() {}\n")]);
        assert!(rep.violations.iter().any(|v| v.rule == Rule::UnsafeForbid));
    }

    #[test]
    fn l3_detects_inversion() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(cache_shard)\n    let g2 = b.lock(); // xlint: lock(catalog)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            rep.violations
                .iter()
                .any(|v| v.rule == Rule::LockOrder && v.message.contains("inversion")),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn l3_ok_in_declared_order() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(catalog)\n    let g2 = b.lock(); // xlint: lock(wal)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            !rep.violations.iter().any(|v| v.rule == Rule::LockOrder),
            "{:?}",
            rep.violations
        );
        assert!(rep
            .lock_edges
            .contains_key(&("catalog".to_string(), "wal".to_string())));
    }

    #[test]
    fn l3_unannotated_nesting_flagged() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    let g1 = a.lock(); // xlint: lock(catalog)\n    let g2 = b.lock();\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(rep
            .violations
            .iter()
            .any(|v| v.rule == Rule::LockOrder && v.message.contains("annotation")));
    }

    #[test]
    fn l3_guard_released_at_block_end() {
        let src = "#![forbid(unsafe_code)]\nfn f(a: &L, b: &L) {\n    {\n        let g1 = a.lock(); // xlint: lock(wal)\n    }\n    let g2 = b.lock(); // xlint: lock(catalog)\n}\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", src)]);
        assert!(
            !rep.violations.iter().any(|v| v.rule == Rule::LockOrder),
            "{:?}",
            rep.violations
        );
    }

    #[test]
    fn l4_cross_crate_unwrap() {
        let def = "#![forbid(unsafe_code)]\npub fn put(x: u8) -> Result<u8, ()> { Ok(x) }\n";
        let call = "#![forbid(unsafe_code)]\nfn f(s: &S) { s.put(1).unwrap(); }\n";
        let rep = check(&[
            file("storage", "crates/storage/src/lib.rs", def),
            file("sqlpp", "crates/sqlpp/src/lib.rs", call),
        ]);
        assert!(rep.violations.iter().any(|v| v.rule == Rule::CrossUnwrap), "{:?}", rep.violations);
    }

    #[test]
    fn l4_same_crate_exempt() {
        let def = "#![forbid(unsafe_code)]\npub fn put(x: u8) -> Result<u8, ()> { Ok(x) }\nfn f(s: &S) { s.put(1).unwrap(); } // xlint: allow(panic, \"demo\")\n";
        let rep = check(&[file("storage", "crates/storage/src/lib.rs", def)]);
        assert!(!rep.violations.iter().any(|v| v.rule == Rule::CrossUnwrap));
    }
}
