//! Function-granularity call-graph extraction for the L5 blocking-in-actor
//! pass (and function-extent tracking reused by L6 guard-drop).
//!
//! The extractor walks masked source (see [`crate::lexer`]) once per file,
//! tracking brace depth to give every `fn` a body extent, and records for
//! each function:
//!
//! * the set of callee *names* (identifiers directly followed by `(`, or by
//!   a `::<…>` turbofish then `(`) — resolution is by bare name against
//!   every workspace `fn` of that name, deliberately path-insensitive: a
//!   lightweight over-approximation in the spirit of "flag anything that
//!   *can* park a pool worker",
//! * direct **blocking primitive** sites ([`BLOCKING_PRIMITIVES`]): channel
//!   `recv`/`send`, condvar waits, `thread::sleep`, thread `join`, and file
//!   I/O,
//! * directives: `// xlint: actor_entry` on the `fn` line marks a
//!   cooperative entry point (seed of the reachability walk);
//!   `// xlint: allow(blocking, "why")` on the `fn` line marks the whole
//!   function an audited non-blocking boundary (its body and callees are
//!   not walked); the same directive on a primitive site suppresses just
//!   that site.
//!
//! Ubiquitous constructor/trait names ([`SKIP_CALL_NAMES`]) are excluded
//! from graph edges: `new`/`clone`/`fmt`/… resolve to half the workspace
//! and none of them run on the per-morsel path, so following them buries
//! real findings in name-collision noise.

use crate::lexer::MaskedFile;
use std::collections::{BTreeMap, BTreeSet};

/// Blocking primitives seeding the L5 walk: anything that can park an OS
/// thread. `(pattern, human label)`; patterns match masked code, so string
/// literals and comments never trip them.
pub const BLOCKING_PRIMITIVES: [(&str, &str); 21] = [
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv_timeout"),
    (".send(", "channel send (blocks when bounded)"),
    (".send_timeout(", "channel send_timeout"),
    (".select_timeout(", "channel select_timeout"),
    (".wait()", "condvar/barrier wait"),
    (".wait(&", "condvar wait"),
    (".wait_for(", "condvar wait_for"),
    (".wait_while(", "condvar wait_while"),
    (".wait_timeout(", "condvar wait_timeout"),
    ("thread::sleep(", "thread::sleep"),
    (".join()", "thread join"),
    ("File::open(", "file open"),
    ("File::create(", "file create"),
    ("OpenOptions::new(", "file open (OpenOptions)"),
    ("fs::", "std::fs call"),
    (".read_exact", "file read"),
    (".write_all", "file write"),
    (".sync_all()", "fsync"),
    (".sync_data()", "fdatasync"),
    (".read_to_string(", "file read_to_string"),
];

/// Call names never followed as graph edges: ubiquitous constructor and
/// trait-method names that resolve to dozens of unrelated workspace `fn`s
/// (none of which run on the morsel path) and would drown the walk in
/// name-collision noise. A blocking call *inside* one of these functions is
/// still caught whenever the function is reached under any other name.
pub const SKIP_CALL_NAMES: [&str; 12] = [
    "new", "default", "clone", "drop", "fmt", "from", "into", "eq", "cmp", "hash", "len",
    "is_empty",
];

/// One direct blocking-primitive site inside a function body.
#[derive(Debug)]
pub struct BlockSite {
    /// 0-based line index.
    pub line: usize,
    /// Human label from [`BLOCKING_PRIMITIVES`].
    pub what: &'static str,
    /// `Some(reason)` when the line carries `// xlint: allow(blocking, …)`.
    pub allowed: Option<String>,
}

/// One extracted function definition.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Index into the scanned file list.
    pub file: usize,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based line of the closing `}` (inclusive body extent).
    pub body_end: usize,
    pub calls: BTreeSet<String>,
    pub blocking: Vec<BlockSite>,
    /// `// xlint: allow(blocking, …)` on the `fn` line: audited boundary,
    /// not walked.
    pub opaque: bool,
    /// Reason attached to the `opaque` directive.
    pub opaque_reason: String,
    /// `// xlint: actor_entry` on the `fn` line.
    pub entry: bool,
}

/// Extracts every non-test function of `m` (file index `file_idx`).
pub fn extract_fns(file_idx: usize, m: &MaskedFile) -> Vec<FnDef> {
    let mut defs: Vec<FnDef> = Vec::new();
    // (def index, depth at which its body opened).
    let mut stack: Vec<(usize, i32)> = Vec::new();
    let mut depth: i32 = 0;
    // A `fn` seen but whose body `{` has not arrived yet:
    // (name, decl line, entry, opaque, opaque reason).
    let mut pending: Option<(String, usize, bool, bool, String)> = None;
    // Paren/bracket nesting inside a pending signature (so `[u8; 4]` and
    // default-free arg lists don't end the signature at an inner `;`).
    let mut sig_nest: i32 = 0;

    for (i, l) in m.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        // Directives for a `fn` declared on this line.
        let entry_here = has_directive(&l.comments, "actor_entry");
        let allow_here = crate::rules::allow_directive(&l.comments)
            .filter(|(rule, _)| rule == "blocking")
            .map(|(_, reason)| reason);

        // Attribute calls and blocking sites to the innermost open fn.
        if let Some(&(di, _)) = stack.last() {
            for name in call_names(code) {
                defs[di].calls.insert(name);
            }
            for (pat, what) in BLOCKING_PRIMITIVES {
                if find_primitive(code, pat) {
                    defs[di].blocking.push(BlockSite {
                        line: i,
                        what,
                        allowed: allow_here.clone(),
                    });
                }
            }
        }

        let bytes = code.as_bytes();
        let mut ci = 0usize;
        while ci < bytes.len() {
            let c = bytes[ci];
            // `fn ` keyword at a word boundary starts a pending definition.
            if c == b'f'
                && code[ci..].starts_with("fn ")
                && (ci == 0 || !is_ident(bytes[ci - 1]))
            {
                let rest = &code[ci + 3..];
                let name: String =
                    rest.trim_start().chars().take_while(|ch| ch.is_alphanumeric() || *ch == '_').collect();
                if !name.is_empty() {
                    pending = Some((
                        name,
                        i,
                        entry_here,
                        allow_here.is_some(),
                        allow_here.clone().unwrap_or_default(),
                    ));
                    sig_nest = 0;
                }
                ci += 3;
                continue;
            }
            match c {
                b'(' | b'[' if pending.is_some() => sig_nest += 1,
                b')' | b']' if pending.is_some() => sig_nest -= 1,
                // Trait/extern declaration without a body.
                b';' if sig_nest == 0 => pending = None,
                b'{' => {
                    depth += 1;
                    if let Some((name, decl, entry, opaque, reason)) = pending.take() {
                        defs.push(FnDef {
                            name,
                            file: file_idx,
                            decl_line: decl,
                            body_end: i,
                            calls: BTreeSet::new(),
                            blocking: Vec::new(),
                            opaque,
                            opaque_reason: reason,
                            entry,
                        });
                        stack.push((defs.len() - 1, depth));
                    }
                }
                b'}' => {
                    if let Some(&(di, d)) = stack.last() {
                        if depth == d {
                            defs[di].body_end = i;
                            stack.pop();
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
            ci += 1;
        }
    }
    // Unterminated fns (truncated file): close at EOF.
    let last = m.lines.len().saturating_sub(1);
    for (di, _) in stack {
        defs[di].body_end = last;
    }
    defs
}

/// True when `comments` carry a bare `// xlint: <name>` directive.
fn has_directive(comments: &[String], name: &str) -> bool {
    comments.iter().any(|c| {
        c.trim()
            .strip_prefix("xlint:")
            .map(|rest| rest.trim() == name)
            .unwrap_or(false)
    })
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `pat` occurs in `code` at a position where it is a real call
/// (for patterns starting with an identifier char, the previous byte must
/// not be part of an identifier).
fn find_primitive(code: &str, pat: &str) -> bool {
    let first_is_ident = pat.as_bytes().first().map(|&b| is_ident(b)).unwrap_or(false);
    let mut start = 0usize;
    while let Some(p) = code[start..].find(pat) {
        let abs = start + p;
        if !first_is_ident || abs == 0 || !is_ident(code.as_bytes()[abs - 1]) {
            return true;
        }
        start = abs + 1;
    }
    false
}

/// Lower-case identifiers directly followed by `(` (or a `::<…>` turbofish
/// then `(`) in one masked line — the callee-name set.
fn call_names(code: &str) -> Vec<String> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if is_ident(b[i]) && (i == 0 || !is_ident(b[i - 1])) {
            let start = i;
            while i < b.len() && is_ident(b[i]) {
                i += 1;
            }
            let name = &code[start..i];
            // Skip keywords, macros (`!` follows), and Uppercase constructors
            // (enum variants / tuple structs / `Type(`).
            let first = name.as_bytes()[0];
            if first.is_ascii_uppercase() || first.is_ascii_digit() || is_keyword(name) {
                continue;
            }
            let mut j = i;
            // Turbofish: `collect::<Vec<_>>(…)`.
            if code[j..].starts_with("::<") {
                let mut angle = 0i32;
                while j < b.len() {
                    match b[j] {
                        b'<' => angle += 1,
                        b'>' => {
                            angle -= 1;
                            if angle == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if j < b.len() && b[j] == b'(' {
                out.push(name.to_string());
            }
            continue;
        }
        i += 1;
    }
    out
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "in"
            | "as"
            | "move"
            | "let"
            | "mut"
            | "ref"
            | "fn"
            | "unsafe"
            | "dyn"
            | "impl"
            | "where"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "break"
            | "continue"
    )
}

/// A blocking finding of the reachability walk.
pub struct Reached {
    /// Index of the [`FnDef`] containing the site.
    pub def: usize,
    /// Index into that def's `blocking` vec.
    pub site: usize,
    /// Entry-to-site function-name chain (entry first).
    pub chain: Vec<String>,
}

/// Walks the call graph from every `entry` def; returns each blocking site
/// of a reached, non-opaque function together with a witness chain, plus
/// the set of opaque defs that were reached (their directives count as
/// suppressions).
pub fn walk(defs: &[FnDef]) -> (Vec<Reached>, Vec<usize>) {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut opaque_hit: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for (i, d) in defs.iter().enumerate() {
        if d.entry && !d.opaque && visited.insert(i) {
            queue.push(i);
        }
    }
    let mut qi = 0usize;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        for callee in &defs[u].calls {
            if SKIP_CALL_NAMES.contains(&callee.as_str()) {
                continue;
            }
            for &v in by_name.get(callee.as_str()).map(|v| v.as_slice()).unwrap_or(&[]) {
                if defs[v].opaque {
                    opaque_hit.insert(v);
                    continue;
                }
                if visited.insert(v) {
                    parent.insert(v, u);
                    queue.push(v);
                }
            }
        }
    }
    let mut out = Vec::new();
    for &u in &visited {
        for (si, _) in defs[u].blocking.iter().enumerate() {
            let mut chain = vec![defs[u].name.clone()];
            let mut cur = u;
            while let Some(&p) = parent.get(&cur) {
                chain.push(defs[p].name.clone());
                cur = p;
            }
            chain.reverse();
            out.push(Reached { def: u, site: si, chain });
        }
    }
    (out, opaque_hit.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::mask;

    fn defs_of(src: &str) -> Vec<FnDef> {
        extract_fns(0, &mask(src))
    }

    #[test]
    fn extracts_fns_with_extents_and_calls() {
        let src = "fn a() {\n    helper(1);\n    x.method();\n}\nfn helper(v: u8) {\n    inner();\n}\n";
        let d = defs_of(src);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].name, "a");
        assert_eq!((d[0].decl_line, d[0].body_end), (0, 3));
        assert!(d[0].calls.contains("helper") && d[0].calls.contains("method"));
        assert_eq!(d[1].name, "helper");
        assert!(d[1].calls.contains("inner"));
    }

    #[test]
    fn nested_fn_attribution() {
        let src = "fn outer() {\n    fn inner() {\n        leaf();\n    }\n    top();\n}\n";
        let d = defs_of(src);
        assert_eq!(d.len(), 2);
        let outer = d.iter().find(|f| f.name == "outer").unwrap();
        let inner = d.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.contains("leaf"));
        assert!(outer.calls.contains("top") && !outer.calls.contains("leaf"));
    }

    #[test]
    fn trait_decl_without_body_is_not_a_def() {
        let src = "trait T {\n    fn sig(x: [u8; 4]) -> u8;\n    fn has_body(&self) {\n        work();\n    }\n}\n";
        let d = defs_of(src);
        // `sig` has no body; the `[u8; 4]` semicolon must not confuse it.
        assert_eq!(d.len(), 1, "{:?}", d.iter().map(|f| &f.name).collect::<Vec<_>>());
        assert_eq!(d[0].name, "has_body");
    }

    #[test]
    fn multiline_signature_binds_to_following_body() {
        let src = "fn long(\n    a: u8,\n    b: u8,\n) -> u8 {\n    calc(a, b)\n}\n";
        let d = defs_of(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].calls.contains("calc"));
    }

    #[test]
    fn blocking_sites_and_suppressions_recorded() {
        let src = "fn f(rx: &R) {\n    rx.recv_timeout(D);\n    rx.recv(); // xlint: allow(blocking, \"drain on teardown\")\n}\n";
        let d = defs_of(src);
        assert_eq!(d[0].blocking.len(), 2);
        assert!(d[0].blocking[0].allowed.is_none());
        assert_eq!(d[0].blocking[1].allowed.as_deref(), Some("drain on teardown"));
    }

    #[test]
    fn indirect_blocking_is_reached_through_the_graph() {
        // actor -> helper -> recv: the classic transitive case the lint is
        // for. The entry itself has no primitive.
        let src = "fn step(h: &H) { // xlint: actor_entry\n    helper(h);\n}\nfn helper(h: &H) {\n    deeper(h);\n}\nfn deeper(h: &H) {\n    h.rx.recv();\n}\n";
        let d = defs_of(src);
        let (reached, _) = walk(&d);
        assert_eq!(reached.len(), 1, "exactly the one recv site");
        let r = &reached[0];
        assert_eq!(d[r.def].name, "deeper");
        assert_eq!(r.chain, vec!["step", "helper", "deeper"]);
    }

    #[test]
    fn opaque_boundary_stops_the_walk() {
        let src = "fn step(h: &H) { // xlint: actor_entry\n    audited(h);\n}\nfn audited(h: &H) { // xlint: allow(blocking, \"bounded 1ms park, measured\")\n    h.rx.recv();\n}\n";
        let d = defs_of(src);
        let (reached, opaque) = walk(&d);
        assert!(reached.is_empty(), "opaque fn body must not be walked");
        assert_eq!(opaque.len(), 1);
        assert_eq!(d[opaque[0]].name, "audited");
    }

    #[test]
    fn skip_names_are_not_followed() {
        let src = "fn step() { // xlint: actor_entry\n    let x = Thing::new();\n}\nfn new() -> u8 {\n    std::fs::read(\"x\");\n    0\n}\n";
        let d = defs_of(src);
        let (reached, _) = walk(&d);
        assert!(reached.is_empty(), "`new` resolves everywhere; excluded by stoplist");
    }

    #[test]
    fn call_name_extraction_shapes() {
        let names = call_names("a.method(x) + helper(y) - NotCalled(z) + mac!(w) + c.collect::<Vec<_>>()");
        assert!(names.contains(&"method".into()));
        assert!(names.contains(&"helper".into()));
        assert!(names.contains(&"collect".into()));
        assert!(!names.iter().any(|n| n == "mac"));
    }
}
