//! The committed suppression baseline (`xlint-baseline.json`), format v2.
//!
//! v1 was a flat per-rule count map (`{"panic": 4}`), which let a brand-new
//! violation hide behind an unrelated fix in the same rule. v2 pins each
//! finding individually:
//!
//! ```json
//! {
//!   "version": 2,
//!   "suppressions": [
//!     {"rule": "panic", "file": "crates/…/lock_order.rs", "hash": "a1b2…"}
//!   ]
//! }
//! ```
//!
//! `hash` is FNV-1a 64 over `rule \0 file \0 reason \0 trimmed-code`, so a
//! suppression is invalidated when it moves to different code or its written
//! reason changes — line numbers are deliberately not part of the
//! fingerprint, so unrelated edits above a suppression don't churn the
//! baseline. Parsed and written by hand; the lint binary stays
//! dependency-free. Reading a v1 file is an error telling the user to
//! regenerate with `--update-baseline`.

use crate::rules::Suppression;
use std::path::Path;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub hash: String,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// FNV-1a 64 of the suppression identity, as 16 lowercase hex chars.
pub fn fingerprint(s: &Suppression) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let path = s.path.to_string_lossy().replace('\\', "/");
    for part in [s.rule_name.as_str(), &path, &s.reason, &s.code] {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator (a byte no field can contain).
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

pub fn entry_for(s: &Suppression) -> Entry {
    Entry {
        rule: s.rule_name.clone(),
        file: s.path.to_string_lossy().replace('\\', "/"),
        hash: fingerprint(s),
    }
}

impl Baseline {
    pub fn from_suppressions(sups: &[Suppression]) -> Baseline {
        let mut entries: Vec<Entry> = sups.iter().map(entry_for).collect();
        entries.sort();
        Baseline { entries }
    }

    pub fn read(path: &Path) -> std::io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        parse(&text).map_err(|why| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{why} in baseline file {}", path.display()),
            )
        })
    }

    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut sorted = self.entries.clone();
        sorted.sort();
        let mut out = String::from("{\n  \"version\": 2,\n  \"suppressions\": [\n");
        let n = sorted.len();
        for (i, e) in sorted.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"hash\": \"{}\"}}{}\n",
                e.rule,
                e.file,
                e.hash,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out)
    }

    /// Live entries with no matching baseline entry (multiset difference) —
    /// these fail CI — and baseline entries no longer live (stale,
    /// informational).
    pub fn diff(&self, live: &[Entry]) -> (Vec<Entry>, Vec<Entry>) {
        let mut pool = self.entries.clone();
        let mut unbaselined = Vec::new();
        for e in live {
            match pool.iter().position(|p| p == e) {
                Some(i) => {
                    pool.swap_remove(i);
                }
                None => unbaselined.push(e.clone()),
            }
        }
        pool.sort();
        (unbaselined, pool)
    }
}

/// Parses the v2 format. A v1 flat count map is recognized and reported as
/// such so the error message can point at `--update-baseline`.
fn parse(text: &str) -> Result<Baseline, String> {
    let t = text.trim();
    let inner = t
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or("malformed JSON object")?;
    if !inner.contains("\"version\"") {
        return Err(
            "v1 per-rule count format is no longer accepted; regenerate with \
             `cargo run -p xlint -- --update-baseline`"
                .to_string(),
        );
    }
    let vpos = inner.find("\"version\"").ok_or("missing version")?;
    let after = inner[vpos..].split_once(':').ok_or("malformed version")?.1;
    let vnum: String =
        after.trim_start().chars().take_while(|c| c.is_ascii_digit()).collect();
    if vnum != "2" {
        return Err(format!("unsupported baseline version {vnum:?}"));
    }
    let spos = inner.find("\"suppressions\"").ok_or("missing suppressions key")?;
    let arr = inner[spos..].split_once('[').ok_or("missing suppressions array")?.1;
    let arr = arr.rsplit_once(']').ok_or("unterminated suppressions array")?.0;
    let mut entries = Vec::new();
    let mut rest = arr;
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or("unterminated entry")? + open;
        let body = &rest[open + 1..close];
        let field = |key: &str| -> Result<String, String> {
            let kpos = body.find(&format!("\"{key}\"")).ok_or(format!("entry missing {key}"))?;
            let after = body[kpos..].split_once(':').ok_or("malformed entry")?.1.trim_start();
            let val = after.strip_prefix('"').ok_or("malformed entry value")?;
            let end = val.find('"').ok_or("unterminated entry value")?;
            Ok(val[..end].to_string())
        };
        entries.push(Entry { rule: field("rule")?, file: field("file")?, hash: field("hash")? });
        rest = &rest[close + 1..];
    }
    Ok(Baseline { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sup(rule: &str, file: &str, reason: &str, code: &str) -> Suppression {
        Suppression {
            rule_name: rule.to_string(),
            path: PathBuf::from(file),
            line: 7,
            reason: reason.to_string(),
            code: code.to_string(),
        }
    }

    #[test]
    fn roundtrip() {
        let sups = vec![
            sup("panic", "crates/a/src/x.rs", "infallible", "x.unwrap();"),
            sup("blocking", "crates/b/src/y.rs", "bounded wait", "cv.wait(g);"),
        ];
        let b = Baseline::from_suppressions(&sups);
        let dir = std::env::temp_dir().join(format!("xlint-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("b.json");
        b.write(&p).unwrap();
        let back = Baseline::read(&p).unwrap();
        assert_eq!(back.entries, b.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_code_and_reason_not_line() {
        let a = sup("panic", "f.rs", "why", "x.unwrap();");
        let mut b = sup("panic", "f.rs", "why", "x.unwrap();");
        b.line = 99;
        assert_eq!(fingerprint(&a), fingerprint(&b), "line is not part of the identity");
        let c = sup("panic", "f.rs", "other why", "x.unwrap();");
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let d = sup("panic", "f.rs", "why", "y.unwrap();");
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn diff_is_a_multiset() {
        let s1 = sup("panic", "f.rs", "w", "a();");
        let s2 = sup("panic", "f.rs", "w", "a();"); // identical twin
        let base = Baseline::from_suppressions(&[s1]);
        let live = vec![entry_for(&s2), entry_for(&s2)];
        let (unbase, stale) = base.diff(&live);
        assert_eq!(unbase.len(), 1, "second identical suppression is NOT covered");
        assert!(stale.is_empty());
    }

    #[test]
    fn v1_is_rejected_with_migration_hint() {
        let err = parse("{\"panic\": 4}").unwrap_err();
        assert!(err.contains("--update-baseline"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"version\": 3, \"suppressions\": []}").is_err());
        assert!(parse("{\"version\": 2, \"suppressions\": []}").is_ok());
    }
}
