//! The committed suppression baseline (`xlint-baseline.json`).
//!
//! A deliberately tiny flat-JSON format — `{"rule": count, …}` — parsed and
//! written by hand so the lint binary stays dependency-free. CI fails when
//! the live suppression count for any rule exceeds the committed one, so new
//! `// xlint: allow(...)` lines require a conscious baseline update.

use std::collections::BTreeMap;
use std::path::Path;

#[derive(Debug, Default)]
pub struct Baseline {
    pub suppressions: BTreeMap<String, usize>,
}

impl Baseline {
    pub fn read(path: &Path) -> std::io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        parse(&text).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed baseline file {}", path.display()),
            )
        })
    }

    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::from("{\n");
        let n = self.suppressions.len();
        for (i, (rule, count)) in self.suppressions.iter().enumerate() {
            out.push_str(&format!(
                "  \"{rule}\": {count}{}\n",
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("}\n");
        std::fs::write(path, out)
    }
}

/// Parses `{"name": 1, "other": 2}`. Whitespace-tolerant; anything else is
/// `None`.
fn parse(text: &str) -> Option<Baseline> {
    let t = text.trim();
    let inner = t.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once(':')?;
        let key = k.trim().strip_prefix('"')?.strip_suffix('"')?.to_string();
        let val: usize = v.trim().parse().ok()?;
        map.insert(key, val);
    }
    Some(Baseline { suppressions: map })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = Baseline::default();
        b.suppressions.insert("panic".into(), 7);
        b.suppressions.insert("lock_order".into(), 2);
        let dir = std::env::temp_dir().join(format!("xlint-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("b.json");
        b.write(&p).unwrap();
        let back = Baseline::read(&p).unwrap();
        assert_eq!(back.suppressions.get("panic"), Some(&7));
        assert_eq!(back.suppressions.get("lock_order"), Some(&2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_none());
        assert!(parse("{\"a\": x}").is_none());
        assert!(parse("{}").is_some());
    }
}
