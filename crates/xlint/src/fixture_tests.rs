//! Self-tests running every rule against the seeded fixture files in
//! `fixtures/`. Each rule has at least one failing and one passing fixture;
//! the workspace scan never reaches them because [`crate::rules::discover`]
//! marks any path with a `fixtures` component as test code.

use crate::rules::{check, Rule, SourceFile};
use std::path::PathBuf;

fn fixture(name: &str, crate_name: &str, is_crate_root: bool) -> SourceFile {
    let disk = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    SourceFile {
        path: PathBuf::from(format!("fixtures/{name}")),
        crate_name: crate_name.to_string(),
        file_is_test: false,
        is_crate_root,
        is_shim: false,
        text: std::fs::read_to_string(&disk)
            .unwrap_or_else(|e| panic!("fixture {disk:?}: {e}")),
    }
}

fn rule_count(rep: &crate::rules::Report, rule: Rule) -> usize {
    rep.violations.iter().filter(|v| v.rule == rule).count()
}

#[test]
fn l1_fixture_flags_every_panic_token() {
    let rep = check(&[fixture("l1_fail.rs", "storage", false)]);
    assert_eq!(rule_count(&rep, Rule::PanicPath), 4, "{:#?}", rep.violations);
    let lines: Vec<usize> =
        rep.violations.iter().filter(|v| v.rule == Rule::PanicPath).map(|v| v.line).collect();
    // one violation per token: unwrap, expect, panic!, unreachable!
    assert_eq!(lines.len(), 4);
    assert_eq!(rep.suppressions.len(), 1, "the allow() line is a suppression");
    assert_eq!(rep.suppressions[0].reason, "fixture suppression");
    // the #[cfg(test)] unwrap near the end of the file must not be flagged
    let max_flagged = lines.iter().max().copied().unwrap_or(0);
    assert!(max_flagged < 25, "cfg(test) unwrap leaked into violations: {lines:?}");
}

#[test]
fn l1_fixture_pass_is_clean() {
    let rep = check(&[fixture("l1_pass.rs", "storage", false)]);
    assert!(rep.violations.is_empty(), "{:#?}", rep.violations);
    assert!(rep.suppressions.is_empty());
}

#[test]
fn l1_only_applies_to_declared_crates() {
    // the same panicky file inside a non-L1 crate (sqlpp) is not flagged
    let rep = check(&[fixture("l1_fail.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::PanicPath), 0, "{:#?}", rep.violations);
}

#[test]
fn l2_fixture_missing_forbid_is_flagged() {
    let rep = check(&[fixture("l2_fail.rs", "storage", true)]);
    assert_eq!(rule_count(&rep, Rule::UnsafeForbid), 1, "{:#?}", rep.violations);
}

#[test]
fn l2_fixture_with_forbid_passes() {
    let rep = check(&[fixture("l2_pass.rs", "storage", true)]);
    assert_eq!(rule_count(&rep, Rule::UnsafeForbid), 0, "{:#?}", rep.violations);
}

#[test]
fn l2_ignores_non_root_files() {
    let rep = check(&[fixture("l2_fail.rs", "storage", false)]);
    assert_eq!(rule_count(&rep, Rule::UnsafeForbid), 0, "{:#?}", rep.violations);
}

#[test]
fn l3_fixture_inversion_creates_cycle() {
    let rep = check(&[fixture("l3_fail.rs", "sqlpp", false)]);
    assert!(
        rule_count(&rep, Rule::LockOrder) >= 1,
        "cache_shard -> catalog contradicts the declared order: {:#?}",
        rep.violations
    );
}

#[test]
fn l3_fixture_declared_order_passes() {
    let rep = check(&[fixture("l3_pass.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::LockOrder), 0, "{:#?}", rep.violations);
    assert!(
        rep.lock_edges.contains_key(&("catalog".to_string(), "wal".to_string())),
        "edge recorded: {:?}",
        rep.lock_edges
    );
}

#[test]
fn l3_fixture_unannotated_nesting_is_flagged() {
    let rep = check(&[fixture("l3_unannotated.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::LockOrder), 1, "{:#?}", rep.violations);
}

#[test]
fn l4_fixture_cross_crate_unwrap_is_flagged() {
    let rep = check(&[
        fixture("l4_api.rs", "storage", false),
        fixture("l4_fail.rs", "sqlpp", false),
    ]);
    assert_eq!(rule_count(&rep, Rule::CrossUnwrap), 1, "{:#?}", rep.violations);
}

#[test]
fn l4_fixture_propagating_caller_passes() {
    let rep = check(&[
        fixture("l4_api.rs", "storage", false),
        fixture("l4_pass.rs", "sqlpp", false),
    ]);
    assert_eq!(rule_count(&rep, Rule::CrossUnwrap), 0, "{:#?}", rep.violations);
}

#[test]
fn l4_same_crate_calls_are_exempt() {
    let rep = check(&[
        fixture("l4_api.rs", "storage", false),
        fixture("l4_fail.rs", "storage", false),
    ]);
    assert_eq!(rule_count(&rep, Rule::CrossUnwrap), 0, "{:#?}", rep.violations);
}

#[test]
fn l5_fixture_transitive_blocking_is_flagged() {
    let rep = check(&[fixture("l5_fail.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::BlockingInActor), 1, "{:#?}", rep.violations);
    let v = rep.violations.iter().find(|v| v.rule == Rule::BlockingInActor).unwrap();
    // the entry never blocks directly: the witness chain must cross two hops
    assert!(
        v.message.contains("step -> route_frames -> drain_input"),
        "witness chain missing: {}",
        v.message
    );
}

#[test]
fn l5_fixture_suppressed_paths_pass() {
    let rep = check(&[fixture("l5_pass.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::BlockingInActor), 0, "{:#?}", rep.violations);
    // one site suppression + one opaque-boundary suppression, both reasoned
    let blocking: Vec<_> =
        rep.suppressions.iter().filter(|s| s.rule_name == "blocking").collect();
    assert_eq!(blocking.len(), 2, "{:#?}", rep.suppressions);
    assert!(blocking.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn l5_actor_host_must_declare_entries() {
    // a stand-in for hyracks/src/exec.rs with no actor_entry seeds
    let f = SourceFile {
        path: PathBuf::from("crates/hyracks/src/exec.rs"),
        crate_name: "hyracks".to_string(),
        file_is_test: false,
        is_crate_root: false,
        is_shim: false,
        text: "pub fn quiet() {}\n".to_string(),
    };
    let rep = check(&[f]);
    assert_eq!(rule_count(&rep, Rule::BlockingInActor), 1, "{:#?}", rep.violations);
}

#[test]
fn l6_fixture_flags_all_three_shapes() {
    let rep = check(&[fixture("l6_fail.rs", "sqlpp", false)]);
    // `let _ =` lock, bare-statement lock, early drop, `let _ =` ticket
    assert_eq!(rule_count(&rep, Rule::GuardDrop), 4, "{:#?}", rep.violations);
}

#[test]
fn l6_fixture_held_guards_pass() {
    let rep = check(&[fixture("l6_pass.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::GuardDrop), 0, "{:#?}", rep.violations);
    assert_eq!(
        rep.suppressions.iter().filter(|s| s.rule_name == "guard_drop").count(),
        1,
        "{:#?}",
        rep.suppressions
    );
}

#[test]
fn l7_fixture_unannotated_relaxed_is_flagged() {
    let rep = check(&[fixture("l7_fail.rs", "sqlpp", false)]);
    // consumed fetch_add, single-line CAS, multi-line CAS; the discarded
    // stat bump on the last line must not count
    assert_eq!(rule_count(&rep, Rule::AtomicOrdering), 3, "{:#?}", rep.violations);
}

#[test]
fn l7_fixture_annotated_relaxed_passes() {
    let rep = check(&[fixture("l7_pass.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::AtomicOrdering), 0, "{:#?}", rep.violations);
    assert_eq!(
        rep.suppressions.iter().filter(|s| s.rule_name == "atomic_ordering").count(),
        1,
        "{:#?}",
        rep.suppressions
    );
}

#[test]
fn l8_fixture_orphan_metrics_are_flagged() {
    let rep = check(&[fixture("l8_fail.rs", "sqlpp", false)]);
    // registered-but-never-incremented + read-but-never-registered
    assert_eq!(rule_count(&rep, Rule::MetricHygiene), 2, "{:#?}", rep.violations);
}

#[test]
fn l8_fixture_live_metrics_pass() {
    let rep = check(&[fixture("l8_pass.rs", "sqlpp", false)]);
    assert_eq!(rule_count(&rep, Rule::MetricHygiene), 0, "{:#?}", rep.violations);
    assert_eq!(
        rep.suppressions.iter().filter(|s| s.rule_name == "metric").count(),
        1,
        "{:#?}",
        rep.suppressions
    );
}

#[test]
fn workspace_discovery_marks_fixtures_as_test_code() {
    // walking the xlint crate itself: fixtures/ must come back test-flagged
    let files = crate::rules::discover(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .expect("discover");
    let fixture_files: Vec<_> =
        files.iter().filter(|f| f.path.to_string_lossy().contains("fixtures")).collect();
    assert!(!fixture_files.is_empty());
    assert!(fixture_files.iter().all(|f| f.file_is_test));
}
