//! A small hand-written Rust surface scanner.
//!
//! This is not a real Rust lexer: it knows exactly enough of the token
//! grammar to answer two questions reliably — *"is this byte inside a
//! comment or a literal?"* and *"is this line inside `#[cfg(test)]`
//! code?"* — so that the rule passes in [`crate::rules`] can do plain
//! substring matching on the remaining code without being fooled by
//! `"call .unwrap() here"` inside a string or a doc comment.
//!
//! Handled: line comments, nested block comments, string literals,
//! raw strings (`r"…"`, `r#"…"#`, any number of hashes), byte strings,
//! char literals vs. lifetimes, and escapes. Comment text is captured
//! per line so `// xlint: …` directives survive masking.

/// One source line after masking.
#[derive(Debug)]
pub struct Line {
    /// Code with comments stripped and literal interiors blanked to spaces.
    /// Byte offsets match the original line (quotes are preserved).
    pub code: String,
    /// Text of every comment that starts on this line (without `//`/`/*`).
    pub comments: Vec<String>,
    /// True if the line is inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// A whole file after masking, split into lines.
#[derive(Debug)]
pub struct MaskedFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    ByteStr,
    Char,
}

/// Masks `src`: comments and literal interiors become spaces in the code
/// channel; comment text is captured separately.
pub fn mask(src: &str) -> MaskedFile {
    let b = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    // (line_index, text) for every comment, in order.
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut cur_comment = String::new();
    let mut comment_start_line = 0usize;
    let mut line = 0usize;
    let mut st = State::Normal;
    let mut i = 0usize;

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
        }
        match st {
            State::Normal => {
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    st = State::LineComment;
                    comment_start_line = line;
                    cur_comment.clear();
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    st = State::BlockComment(1);
                    comment_start_line = line;
                    cur_comment.clear();
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    st = State::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == b'r' && prev_nonident(b, i) {
                    // Possible raw string r"…" or r#"…"#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        for _ in i..=j {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        st = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == b'b' && prev_nonident(b, i) && i + 1 < b.len() {
                    if b[i + 1] == b'r' {
                        // Possible raw byte string br"…" or br#"…"#.
                        let mut j = i + 2;
                        let mut hashes = 0u32;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            for _ in i..j {
                                code.push(' ');
                            }
                            code.push('"');
                            st = State::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if b[i + 1] == b'"' {
                        code.push(' ');
                        code.push('"');
                        st = State::ByteStr;
                        i += 2;
                        continue;
                    }
                    if b[i + 1] == b'\'' {
                        // Byte char literal b'x' / b'\n'.
                        code.push(' ');
                        code.push('\'');
                        st = State::Char;
                        i += 2;
                        continue;
                    }
                }
                if c == b'\'' {
                    // Char literal vs. lifetime. A lifetime is 'ident not
                    // followed by a closing quote; a char literal always
                    // closes within a few bytes.
                    if is_char_literal(b, i) {
                        code.push('\'');
                        st = State::Char;
                        i += 1;
                        continue;
                    }
                    // Lifetime: keep as-is.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c as char);
                i += 1;
            }
            State::LineComment => {
                if c == b'\n' {
                    comments.push((comment_start_line, cur_comment.clone()));
                    st = State::Normal;
                    code.push('\n');
                } else {
                    cur_comment.push(c as char);
                    code.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    st = State::BlockComment(depth + 1);
                    cur_comment.push_str("/*");
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    if depth == 1 {
                        comments.push((comment_start_line, cur_comment.clone()));
                        st = State::Normal;
                    } else {
                        st = State::BlockComment(depth - 1);
                        cur_comment.push_str("*/");
                    }
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == b'\n' {
                    code.push('\n');
                } else {
                    cur_comment.push(c as char);
                    code.push(' ');
                }
                i += 1;
            }
            State::Str | State::ByteStr => {
                if c == b'\\' && i + 1 < b.len() {
                    // A line-continuation escape (`\` before a newline) still
                    // ends a source line: keep the `\n` in the code channel
                    // (and counted) or every later line number shifts.
                    code.push(' ');
                    if b[i + 1] == b'\n' {
                        line += 1;
                        code.push('\n');
                    } else {
                        code.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    code.push('"');
                    st = State::Normal;
                } else if c == b'\n' {
                    code.push('\n');
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == b'"' {
                    // Closing needs `"` followed by `hashes` hash marks.
                    let mut j = i + 1;
                    let mut n = 0u32;
                    while j < b.len() && b[j] == b'#' && n < hashes {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        st = State::Normal;
                        i = j;
                        continue;
                    }
                }
                if c == b'\n' {
                    code.push('\n');
                } else {
                    code.push(' ');
                }
                i += 1;
            }
            State::Char => {
                if c == b'\\' && i + 1 < b.len() {
                    code.push(' ');
                    if b[i + 1] == b'\n' {
                        line += 1;
                        code.push('\n');
                    } else {
                        code.push(' ');
                    }
                    i += 2;
                    continue;
                }
                if c == b'\'' {
                    code.push('\'');
                    st = State::Normal;
                } else if c == b'\n' {
                    code.push('\n');
                    st = State::Normal; // malformed; recover
                } else {
                    code.push(' ');
                }
                i += 1;
            }
        }
    }
    if st == State::LineComment {
        comments.push((comment_start_line, cur_comment.clone()));
    }

    let test_ranges = test_line_ranges(&code);
    let mut lines: Vec<Line> = code
        .lines()
        .enumerate()
        .map(|(idx, l)| Line {
            code: l.to_string(),
            comments: Vec::new(),
            in_test: test_ranges.iter().any(|r| r.contains(&idx)),
        })
        .collect();
    for (li, text) in comments {
        if let Some(l) = lines.get_mut(li) {
            l.comments.push(text);
        }
    }
    MaskedFile { lines }
}

/// True when the byte before `i` cannot be part of an identifier, so an
/// `r`/`b` at `i` starts a literal prefix rather than ending an ident.
fn prev_nonident(b: &[u8], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = b[i - 1];
    !(p.is_ascii_alphanumeric() || p == b'_')
}

/// Distinguishes `'a'` (char literal) from `'a` (lifetime) at position `i`
/// (which holds the opening quote).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    // Escape: definitely a char literal.
    if i + 1 < b.len() && b[i + 1] == b'\\' {
        return true;
    }
    // 'x' — a quote two ahead closes it.
    if i + 2 < b.len() && b[i + 2] == b'\'' {
        // 'a' is a char literal; but '' (empty) can't occur and 'a'b is
        // nonsense, so this is safe.
        return true;
    }
    // Multi-byte UTF-8 char literal: quote within 5 bytes and the first
    // content byte is not an identifier start (lifetimes are ASCII idents).
    if i + 1 < b.len() && !(b[i + 1].is_ascii_alphanumeric() || b[i + 1] == b'_') {
        return true;
    }
    false
}

/// Line ranges (0-based, inclusive of every line the block touches) covered
/// by `#[cfg(test)]`-gated braces in masked code.
fn test_line_ranges(code: &str) -> Vec<std::ops::RangeInclusive<usize>> {
    let b = code.as_bytes();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'#' && i + 1 < b.len() && b[i + 1] == b'[' {
            let (attr_end, attr_text) = scan_attr(b, i + 1);
            if attr_is_test_cfg(&attr_text) {
                // Skip any further attributes, then find the block.
                let mut j = attr_end;
                loop {
                    while j < b.len() && (b[j] as char).is_whitespace() {
                        j += 1;
                    }
                    if j + 1 < b.len() && b[j] == b'#' && b[j + 1] == b'[' {
                        let (e, _) = scan_attr(b, j + 1);
                        j = e;
                        continue;
                    }
                    break;
                }
                // Find the first `{` or `;` — `;` means a declaration like
                // `mod tests;` with no inline body.
                let mut k = j;
                while k < b.len() && b[k] != b'{' && b[k] != b';' {
                    k += 1;
                }
                if k < b.len() && b[k] == b'{' {
                    let close = matching_brace(b, k);
                    let start_line = line_of(b, i);
                    let end_line = line_of(b, close.min(b.len().saturating_sub(1)));
                    ranges.push(start_line..=end_line);
                    i = close + 1;
                    continue;
                }
                i = k + 1;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Scans `#[ … ]` starting with `b[open] == b'['`; returns (index past the
/// closing `]`, attribute text).
fn scan_attr(b: &[u8], open: usize) -> (usize, String) {
    let mut depth = 0i32;
    let mut j = open;
    let mut text = String::new();
    while j < b.len() {
        match b[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, text);
                }
            }
            c => text.push(c as char),
        }
        j += 1;
    }
    (j, text)
}

/// True for `cfg(test)` and `cfg(all(test, …))`-style attributes.
fn attr_is_test_cfg(attr: &str) -> bool {
    let t = attr.trim();
    if !t.starts_with("cfg") {
        return false;
    }
    // Word-boundary search for `test` inside the cfg predicate.
    let bytes = t.as_bytes();
    let mut i = 0usize;
    while let Some(p) = t[i..].find("test") {
        let s = i + p;
        let before_ok = s == 0 || !(bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_');
        let e = s + 4;
        let after_ok = e >= bytes.len() || !(bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_');
        if before_ok && after_ok {
            return true;
        }
        i = s + 1;
    }
    false
}

/// Index just past the brace matching `b[open] == b'{'` (or `b.len()`).
fn matching_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < b.len() {
        match b[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    b.len()
}

fn line_of(b: &[u8], pos: usize) -> usize {
    b[..pos.min(b.len())].iter().filter(|&&c| c == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let x = \"call .unwrap() here\"; // .expect( too\nx.unwrap();\n";
        let m = mask(src);
        assert!(!m.lines[0].code.contains(".unwrap()"));
        assert!(!m.lines[0].code.contains(".expect("));
        assert_eq!(m.lines[0].comments.len(), 1);
        assert!(m.lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let r = r#\"panic!(\"x\")\"#; let c = '\\''; let lt: &'static str = \"\";\n";
        let m = mask(src);
        assert!(!m.lines[0].code.contains("panic!"));
        assert!(m.lines[0].code.contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let y = 1;\n";
        let m = mask(src);
        assert!(m.lines[0].code.contains("let y = 1;"));
        assert!(!m.lines[0].code.contains("outer"));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let m = mask(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[2].in_test);
        assert!(m.lines[3].in_test);
        assert!(!m.lines[5].in_test);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\nfn f() {}\n";
        let m = mask(src);
        assert!(m.lines[1].in_test);
        assert!(!m.lines[2].in_test);
    }

    #[test]
    fn raw_byte_strings_are_masked() {
        let src = "let x = br#\"panic!(\"y\") .recv()\"#; let z = br\"x.unwrap()\"; f();\n";
        let m = mask(src);
        assert!(!m.lines[0].code.contains("panic!"));
        assert!(!m.lines[0].code.contains(".recv()"));
        assert!(!m.lines[0].code.contains(".unwrap()"));
        assert!(m.lines[0].code.contains("f();"));
    }

    #[test]
    fn br_identifier_prefix_is_not_a_raw_string() {
        let src = "let y = branch(1); brick.unwrap();\n";
        let m = mask(src);
        assert!(m.lines[0].code.contains("branch(1)"));
        assert!(m.lines[0].code.contains("brick.unwrap()"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        // The `\` + newline escape inside a string must not swallow the
        // newline, or every subsequent line shifts by one.
        let src = "let s = \"ab\\\n   cd\";\nx.unwrap();\nfn tail() {}\n";
        let m = mask(src);
        assert_eq!(m.lines.len(), 4);
        assert!(m.lines[2].code.contains(".unwrap()"), "{:?}", m.lines[2].code);
        assert!(m.lines[3].code.contains("fn tail"), "{:?}", m.lines[3].code);
    }

    #[test]
    fn lifetime_not_swallowed() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let m = mask(src);
        assert!(m.lines[0].code.contains("fn f<'a>(x: &'a str)"));
    }
}
