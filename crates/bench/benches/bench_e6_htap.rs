//! Criterion bench for E6: shadow-link pump throughput.
use asterix_core::dcp::{create_shadow_dataset, FrontEndStore, ShadowLink};
use asterix_core::instance::Instance;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let db = Instance::temp().unwrap();
    create_shadow_dataset(&db, "Shadow", "id").unwrap();
    let store = FrontEndStore::new();
    let link = ShadowLink::new(store.clone(), db.clone(), "Shadow");
    let mut g = c.benchmark_group("e6_htap");
    g.sample_size(10);
    let mut next = 0i64;
    g.bench_function("pump_256_mutations", |b| {
        b.iter(|| {
            for _ in 0..256 {
                store.set(
                    format!("{}", next % 1000),
                    asterix_adm::parse::parse_value(&format!(
                        r#"{{"id": {}, "v": {next}}}"#,
                        next % 1000
                    ))
                    .unwrap(),
                );
                next += 1;
            }
            link.pump().unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
