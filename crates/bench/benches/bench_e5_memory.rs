//! Criterion bench for E5: external sort across memory budgets.
use asterix_adm::Value;
use asterix_hyracks::ctx::RuntimeCtx;
use asterix_hyracks::job::SortKey;
use asterix_hyracks::ops::sort::external_sort;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_memory");
    g.sample_size(10);
    for (label, budget) in [("in_memory", 256usize << 20), ("tiny_256k", 256 << 10)] {
        g.bench_function(format!("sort_20k_{label}"), |b| {
            b.iter(|| {
                let ctx = RuntimeCtx::temp().unwrap();
                external_sort(
                    (0..20_000i64).map(|i| Ok(vec![Value::Int((i * 7919) % 20_000)])),
                    vec![SortKey::asc(0)],
                    budget,
                    Arc::clone(&ctx),
                )
                .unwrap()
                .count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
