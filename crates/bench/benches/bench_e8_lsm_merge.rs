//! Criterion bench for E8: LSM ingest under different merge policies.
use asterix_adm::binary::encode_key;
use asterix_adm::Value;
use asterix_storage::cache::BufferCache;
use asterix_storage::io::FileManager;
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::stats::IoStats;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_lsm_merge");
    g.sample_size(10);
    for (name, policy) in [
        ("nomerge", MergePolicy::NoMerge),
        ("constant4", MergePolicy::Constant { max_components: 4 }),
    ] {
        g.bench_function(format!("ingest_10k_{name}"), |b| {
            b.iter(|| {
                let dir = std::env::temp_dir()
                    .join(format!("bench-e8-{}-{name}", std::process::id()));
                std::fs::create_dir_all(&dir).unwrap();
                let fm = FileManager::new(&dir, IoStats::new()).unwrap();
                let cache = BufferCache::new(fm, 64);
                let mut t = LsmTree::new(
                    cache,
                    LsmConfig { name: "t".into(), mem_budget: 64 << 10,
                                merge_policy: policy, bloom: true ,
                compress_values: false},
                );
                for i in 0..10_000i64 {
                    t.upsert(encode_key(&[Value::Int(i % 2_000)]), vec![b'v'; 64]).unwrap();
                }
                let n = t.component_count();
                let _ = std::fs::remove_dir_all(dir);
                n
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
