//! Criterion bench for E7: sorted vs random-order PK fetch.
use asterix_adm::binary::encode_key;
use asterix_adm::Value;
use asterix_core::datagen::DataGen;
use asterix_storage::cache::BufferCache;
use asterix_storage::io::FileManager;
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::stats::IoStats;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bench-e7-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fm = FileManager::new(&dir, IoStats::new()).unwrap();
    let cache = BufferCache::new(fm, 256);
    let n = 40_000i64;
    let key = |i: i64| encode_key(&[Value::Int(i)]);
    let mut primary = LsmTree::new(
        Arc::clone(&cache),
        LsmConfig { name: "p".into(), mem_budget: 2 << 20,
                    merge_policy: MergePolicy::Constant { max_components: 2 }, bloom: true, compress_values: false },
    );
    for i in 0..n {
        primary.upsert(key(i), vec![b'x'; 150]).unwrap();
    }
    primary.flush().unwrap();
    let mut gen = DataGen::new(7);
    let candidates: Vec<Vec<u8>> = (0..2_000).map(|_| key(gen.int(0, n))).collect();
    let mut sorted = candidates.clone();
    sorted.sort_by(|a, b| asterix_adm::binary::compare_keys(a, b));
    let mut g = c.benchmark_group("e7_sorted_fetch");
    g.sample_size(10);
    g.bench_function("fetch_random_order", |b| {
        b.iter(|| {
            let mut n = 0;
            for pk in &candidates {
                if primary.get(pk).unwrap().is_some() {
                    n += 1;
                }
            }
            n
        })
    });
    g.bench_function("fetch_sorted_pks", |b| {
        b.iter(|| {
            let mut n = 0;
            for pk in &sorted {
                if primary.get(pk).unwrap().is_some() {
                    n += 1;
                }
            }
            n
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
