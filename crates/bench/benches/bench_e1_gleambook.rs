//! Criterion bench for E1: Figure 3(c)-style query latency on a loaded
//! Gleambook instance.
use asterix_bench::experiments::gleambook_ddl;
use asterix_core::datagen::DataGen;
use asterix_core::instance::Instance;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let db = Instance::temp().unwrap();
    db.execute_sqlpp(gleambook_ddl()).unwrap();
    let mut gen = DataGen::new(1);
    let mut txn = db.begin();
    for i in 1..=300i64 {
        txn.write("GleambookUsers", &gen.user(i), true).unwrap();
    }
    for i in 1..=900i64 {
        txn.write("GleambookMessages", &gen.message(i, 300), true).unwrap();
    }
    txn.commit().unwrap();
    let mut g = c.benchmark_group("e1_gleambook");
    g.sample_size(10);
    g.bench_function("group_by_query", |b| {
        b.iter(|| {
            db.query(
                "SELECT nf AS numFriends, COUNT(u) AS n FROM GleambookUsers u \
                 LET nf = COLL_COUNT(u.friendIds) GROUP BY nf",
            )
            .unwrap()
        })
    });
    g.bench_function("index_point_query", |b| {
        b.iter(|| {
            db.query("SELECT VALUE m.messageId FROM GleambookMessages m WHERE m.authorId = 7")
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
