//! Criterion bench for E9: compile (parse+translate+optimize) cost, SQL++ vs AQL.
use asterix_bench::experiments::gleambook_ddl;
use asterix_core::instance::{Instance, Language};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let db = Instance::temp().unwrap();
    db.execute_sqlpp(gleambook_ddl()).unwrap();
    let sqlpp = "SELECT VALUE m.messageId FROM GleambookMessages m \
                 WHERE m.authorId >= 3 AND m.authorId <= 5";
    let aql = "for $m in dataset GleambookMessages \
               where $m.authorId >= 3 and $m.authorId <= 5 return $m.messageId";
    let mut g = c.benchmark_group("e9_two_languages");
    g.sample_size(30);
    g.bench_function("compile_sqlpp", |b| {
        b.iter(|| db.explain(sqlpp, Language::Sqlpp).unwrap())
    });
    g.bench_function("compile_aql", |b| b.iter(|| db.explain(aql, Language::Aql).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
