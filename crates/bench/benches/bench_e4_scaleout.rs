//! Criterion bench for E4: partition-parallel scan-aggregate, P=1 vs P=4.
use asterix_core::instance::{Instance, InstanceConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn load(p: usize, n: i64) -> Instance {
    let db = Instance::open(InstanceConfig { nodes: p, partitions: p, ..Default::default() })
        .unwrap();
    db.execute_sqlpp(
        "CREATE TYPE T AS { id: int, grp: int };
         CREATE DATASET D(T) PRIMARY KEY id;",
    )
    .unwrap();
    let mut txn = db.begin();
    for i in 0..n {
        txn.write(
            "D",
            &asterix_adm::parse::parse_value(&format!(r#"{{"id":{i},"grp":{}}}"#, i % 16))
                .unwrap(),
            true,
        )
        .unwrap();
    }
    txn.commit().unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_scaleout");
    g.sample_size(10);
    for p in [1usize, 4] {
        let db = load(p, 4_000);
        g.bench_function(format!("scan_agg_p{p}"), |b| {
            b.iter(|| {
                db.query("SELECT d.grp AS g, COUNT(*) AS n FROM D d GROUP BY d.grp")
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
