//! Criterion bench for E2: LSM R-tree vs Hilbert-linearized B-tree probes.
use asterix_adm::binary::encode_key;
use asterix_adm::{Point, Rectangle, Value};
use asterix_core::datagen::DataGen;
use asterix_storage::cache::BufferCache;
use asterix_storage::io::FileManager;
use asterix_storage::lsm::{LsmConfig, LsmTree, MergePolicy};
use asterix_storage::lsm_rtree::{LsmRTree, LsmRTreeConfig};
use asterix_storage::spatial_keys::{curve_ranges, hilbert_d, World};
use asterix_storage::stats::IoStats;
use criterion::{criterion_group, criterion_main, Criterion};
use std::ops::Bound;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bench-e2-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fm = FileManager::new(&dir, IoStats::new()).unwrap();
    let cache = BufferCache::new(fm, 1024);
    let world = World::new(Rectangle::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)));
    let mut rtree = LsmRTree::new(Arc::clone(&cache), LsmRTreeConfig::new("rt"));
    let mut hilbert = LsmTree::new(
        Arc::clone(&cache),
        LsmConfig { name: "h".into(), mem_budget: 1 << 20,
                    merge_policy: MergePolicy::Constant { max_components: 4 }, bloom: false, compress_values: false },
    );
    let mut gen = DataGen::new(2);
    for i in 0..20_000i64 {
        let p = gen.clustered_point(1000.0, 4);
        rtree.insert(p.to_mbr(), encode_key(&[Value::Int(i)])).unwrap();
        hilbert
            .upsert(
                encode_key(&[Value::Int(world.hilbert_key(&p) as i64), Value::Int(i)]),
                asterix_adm::binary::encode(&Value::Point(p)),
            )
            .unwrap();
    }
    rtree.flush().unwrap();
    hilbert.flush().unwrap();
    let q = Rectangle::new(Point::new(300.0, 300.0), Point::new(380.0, 380.0));
    let mut g = c.benchmark_group("e2_spatial");
    g.sample_size(20);
    g.bench_function("lsm_rtree_probe", |b| b.iter(|| rtree.search(&q).unwrap().len()));
    g.bench_function("hilbert_btree_probe", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (lo, hi) in curve_ranges(&world, &q, 7, hilbert_d) {
                let lo_k = encode_key(&[Value::Int(lo as i64)]);
                let hi_k = encode_key(&[Value::Int(hi as i64)]);
                for (_, v) in hilbert
                    .range(Bound::Included(lo_k.as_slice()), Bound::Excluded(hi_k.as_slice()))
                    .unwrap()
                {
                    if let Ok(Value::Point(p)) = asterix_adm::binary::decode(&v) {
                        if q.contains_point(&p) {
                            n += 1;
                        }
                    }
                }
            }
            n
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
