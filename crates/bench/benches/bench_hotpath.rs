//! Criterion microbenches for the query hot path: sharded cache hits under
//! concurrent scanners, sized-path exchange repartitioning, and hash-join
//! build+probe. The `repro hotpath` binary runs the same code paths and
//! persists the numbers to `BENCH_hotpath.json`.

use asterix_adm::Value;
use asterix_bench::hotpath::GlobalLockCache;
use asterix_hyracks::ops::join::{hash_join, HashJoinCfg};
use asterix_hyracks::{Frame, RuntimeCtx, Tuple};
use asterix_storage::cache::{BufferCache, CacheOptions};
use asterix_storage::io::{FileManager, PAGE_SIZE};
use asterix_storage::stats::IoStats;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("asterix-bench-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn cache_hits(c: &mut Criterion) {
    let root = bench_dir("hotpath-cache");
    let fm = FileManager::new(&root, IoStats::new()).unwrap();
    let id = fm.create("hot.pf").unwrap();
    let pages = 64u64;
    for i in 0..pages {
        let mut p = vec![0u8; PAGE_SIZE];
        p[..8].copy_from_slice(&i.to_le_bytes());
        fm.append_page(id, &p).unwrap();
    }
    let sharded = BufferCache::with_options(
        Arc::clone(&fm),
        CacheOptions { capacity: 128, shards: 8, readahead_pages: 0 },
    );
    let global = GlobalLockCache::new(Arc::clone(&fm), 128);
    for p in 0..pages {
        sharded.get(id, p).unwrap();
        global.get(id, p, false);
    }
    let mut g = c.benchmark_group("cache_hits");
    g.sample_size(10);
    g.bench_function("sharded_1_scanner", |b| {
        b.iter(|| {
            for p in 0..pages {
                black_box(sharded.get(id, p).unwrap());
            }
        })
    });
    g.bench_function("global_lock_1_scanner", |b| {
        b.iter(|| {
            for p in 0..pages {
                black_box(global.get(id, p, false));
            }
        })
    });
    g.bench_function("sharded_4_scanners", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for p in 0..pages {
                            black_box(sharded.get(id, p).unwrap());
                        }
                    });
                }
            })
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(root);
}

fn exchange_repartition(c: &mut Criterion) {
    let n = 10_000usize;
    let build = || -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut f = Frame::new();
        for i in 0..n {
            let t: Tuple = vec![
                Value::Int(i as i64),
                Value::from(format!("payload-{i:08}-{}", "x".repeat(24))),
            ];
            if f.push(t).unwrap_or(false) {
                frames.push(f.take());
            }
        }
        if !f.is_empty() {
            frames.push(f.take());
        }
        frames
    };
    let mut g = c.benchmark_group("exchange_repartition");
    g.sample_size(10);
    g.bench_function("sized_path", |b| {
        b.iter(|| {
            let mut dests: Vec<Frame> = (0..4).map(|_| Frame::new()).collect();
            for frame in build() {
                for (i, (t, size)) in frame.into_sized().enumerate() {
                    if dests[i % 4].push_sized(t, size as usize).unwrap_or(false) {
                        black_box(dests[i % 4].take());
                    }
                }
            }
        })
    });
    g.bench_function("resize_path", |b| {
        b.iter(|| {
            let mut dests: Vec<Frame> = (0..4).map(|_| Frame::new()).collect();
            for frame in build() {
                for (i, t) in frame.into_tuples().into_iter().enumerate() {
                    if dests[i % 4].push(t).unwrap_or(false) {
                        black_box(dests[i % 4].take());
                    }
                }
            }
        })
    });
    g.finish();
}

fn join_build_probe(c: &mut Criterion) {
    let build_rows = 5_000usize;
    let probe_rows = build_rows * 5;
    let cfg = HashJoinCfg {
        left_keys: vec![0],
        right_keys: vec![0],
        kind: asterix_hyracks::job::JoinKind::Inner,
        right_arity: 2,
        memory: 256 << 20,
    };
    let ctx = RuntimeCtx::temp().unwrap();
    let mut g = c.benchmark_group("join_build_probe");
    g.sample_size(10);
    g.bench_function("inner_1_to_1", |b| {
        b.iter(|| {
            let build = (0..build_rows)
                .map(|i| Ok(vec![Value::Int(i as i64), Value::from(format!("b{i}"))]));
            let probe = (0..probe_rows)
                .map(|i| Ok(vec![Value::Int((i % build_rows) as i64), Value::from(format!("p{i}"))]));
            let mut n = 0usize;
            hash_join(probe, build, &cfg, &ctx, &mut |t| {
                n += t.len();
                Ok(true)
            })
            .unwrap();
            black_box(n);
        })
    });
    g.finish();
}

criterion_group!(benches, cache_hits, exchange_repartition, join_build_probe);
criterion_main!(benches);
