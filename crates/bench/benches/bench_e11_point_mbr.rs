//! Criterion bench for E11: STR build + query, point-MBR optimization on/off.
use asterix_core::datagen::DataGen;
use asterix_adm::{Point, Rectangle};
use asterix_storage::cache::BufferCache;
use asterix_storage::io::FileManager;
use asterix_storage::rtree::{DiskRTree, RTreeBuilder, SpatialEntry};
use asterix_storage::stats::IoStats;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bench-e11-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let fm = FileManager::new(&dir, IoStats::new()).unwrap();
    let cache = BufferCache::new(fm, 1024);
    let mut gen = DataGen::new(11);
    let entries: Vec<SpatialEntry> = (0..20_000u64)
        .map(|i| SpatialEntry {
            mbr: gen.clustered_point(1000.0, 4).to_mbr(),
            key: i.to_le_bytes().to_vec(),
        })
        .collect();
    let q = Rectangle::new(Point::new(200.0, 200.0), Point::new(320.0, 320.0));
    let mut g = c.benchmark_group("e11_point_mbr");
    g.sample_size(10);
    for optimize in [true, false] {
        let w = cache.manager().bulk_writer(&format!("b-{optimize}.rtree")).unwrap();
        let tree = DiskRTree::from_built(
            Arc::clone(&cache),
            RTreeBuilder::new(w, optimize).build(entries.clone()).unwrap(),
        );
        g.bench_function(format!("query_opt_{optimize}"), |b| {
            b.iter(|| tree.search(&q).unwrap().len())
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
