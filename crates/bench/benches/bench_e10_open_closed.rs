//! Criterion bench for E10: schema-compressed vs self-describing encoding.
use asterix_adm::binary::encode;
use asterix_adm::schema_encode::encode_with_schema;
use asterix_adm::types::gleambook_types;
use asterix_adm::validate::cast_object;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let reg = gleambook_types();
    let ty = reg.get("GleambookMessageType").unwrap();
    let v = asterix_adm::parse::parse_value(
        r#"{"messageId": 1, "authorId": 2, "message": " love the new phone its platform",
            "senderLocation": point("-110.5,33.2")}"#,
    )
    .unwrap();
    let cast = cast_object(&v, ty, &reg).unwrap();
    let mut g = c.benchmark_group("e10_open_closed");
    g.bench_function("encode_schema_compressed", |b| {
        b.iter(|| encode_with_schema(&cast, ty).unwrap().len())
    });
    g.bench_function("encode_self_describing", |b| b.iter(|| encode(&cast).len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
